#!/usr/bin/env python3
"""Quickstart: train, personalize, attack, and defend in ~a minute.

Walks the paper's full story on a small synthetic campus:

1. generate a campus corpus (contributors + personal users);
2. train the general next-location model (cloud phase);
3. personalize it for one user with transfer learning (device phase);
4. mount the time-based model-inversion attack on the personal model;
5. enable Pelican's temperature privacy layer and attack again.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.attacks import (
    AdversaryClass,
    PriorMethod,
    TimeBasedAttack,
    attack_user,
    build_prior,
    prune_locations,
)
from repro.data import CorpusConfig, SpatialLevel, generate_corpus
from repro.models import (
    GeneralModelConfig,
    NextLocationPredictor,
    PersonalizationConfig,
    PersonalizationMethod,
    personalize,
    train_general_model,
)
from repro.pelican import apply_privacy, leakage_reduction


def main() -> None:
    print("=== 1. Generate a synthetic campus corpus ===")
    corpus = generate_corpus(
        CorpusConfig(
            num_buildings=30, num_contributors=10, num_personal_users=2, num_days=42, seed=7
        )
    )
    level = SpatialLevel.BUILDING
    spec = corpus.spec(level)
    print(
        f"campus: {corpus.campus.num_buildings} buildings, {corpus.campus.num_aps} APs; "
        f"{len(corpus.contributor_ids)} contributors, {len(corpus.personal_ids)} personal users"
    )

    print("\n=== 2. Train the general model (cloud phase) ===")
    pooled = corpus.contributor_dataset(level)
    train, test = pooled.split_by_user(0.8)
    general, fit_result = train_general_model(
        train,
        GeneralModelConfig(hidden_size=40, epochs=12, patience=5),
        np.random.default_rng(0),
    )
    general_pred = NextLocationPredictor(general, spec)
    X_test, y_test = test.encode()
    print(
        f"trained {fit_result.epochs_run} epochs; "
        f"general top-1/top-3 test accuracy: "
        f"{general_pred.top_k_accuracy(X_test, y_test, 1):.2%} / "
        f"{general_pred.top_k_accuracy(X_test, y_test, 3):.2%}"
    )

    print("\n=== 3. Personalize for one user (device phase, TL feature extraction) ===")
    uid = corpus.personal_ids[0]
    user_train, user_test = corpus.user_dataset(uid, level).split(0.8)
    personal, _ = personalize(
        general,
        user_train,
        PersonalizationMethod.TL_FE,
        PersonalizationConfig(epochs=15, patience=5),
        np.random.default_rng(1),
    )
    personal_pred = NextLocationPredictor(personal, spec)
    Xu, yu = user_test.encode()
    print(
        f"user {uid}: general top-3 {general_pred.top_k_accuracy(Xu, yu, 3):.2%} -> "
        f"personalized top-3 {personal_pred.top_k_accuracy(Xu, yu, 3):.2%}"
    )
    window = user_test.windows[0]
    print(f"sample top-3 prediction: {personal_pred.top_k(window.history, 3)}")

    print("\n=== 4. Mount the time-based inversion attack (adversary A1) ===")
    prior = build_prior(PriorMethod.TRUE, spec.num_locations, train_dataset=user_train)
    pruned = prune_locations(personal_pred, user_test)
    attack = TimeBasedAttack(candidate_locations=pruned)
    undefended = attack_user(
        attack, personal_pred, user_test, AdversaryClass.A1, prior, max_instances=25
    )
    print(f"pruned search space: {len(pruned)}/{spec.num_locations} locations")
    for k in (1, 3, 5):
        print(f"  attack accuracy top-{k}: {undefended.accuracy(k):.2%}")

    print("\n=== 5. Enable the Pelican privacy layer and attack again ===")
    defended_model = personal.copy(np.random.default_rng(2))
    apply_privacy(defended_model, temperature=1e-3)
    defended_pred = NextLocationPredictor(defended_model, spec)
    print(
        "service top-3 accuracy unchanged: "
        f"{defended_pred.top_k_accuracy(Xu, yu, 3):.2%} "
        f"(undefended {personal_pred.top_k_accuracy(Xu, yu, 3):.2%})"
    )
    defended_attack = TimeBasedAttack(
        candidate_locations=prune_locations(defended_pred, user_test)
    )
    defended = attack_user(
        defended_attack, defended_pred, user_test, AdversaryClass.A1, prior, max_instances=25
    )
    for k in (1, 3, 5):
        reduction = leakage_reduction(undefended.accuracy(k), defended.accuracy(k))
        print(
            f"  top-{k}: attack {undefended.accuracy(k):.2%} -> {defended.accuracy(k):.2%} "
            f"(leakage reduction {reduction:.0f}%)"
        )


if __name__ == "__main__":
    main()
