#!/usr/bin/env python3
"""Privacy tuning: choosing your temperature (paper §V-B, Fig 5b).

Pelican's privacy enhancement is *user-centric*: each user picks a
temperature T that controls how much confidence information their deployed
model reveals.  This example sweeps T for one user and prints the
trade-off surface the user navigates:

* service utility  — top-k accuracy of their recommendations (should be
  flat: the defense is designed to never hurt it);
* privacy leakage — the accuracy of a time-based inversion attack against
  their model (should fall as T shrinks);
* confidence sharpness — what the service provider actually observes.

Run:  python examples/privacy_tuning.py
"""

import numpy as np

from repro.attacks import (
    AdversaryClass,
    PriorMethod,
    TimeBasedAttack,
    attack_user,
    build_prior,
    prune_locations,
)
from repro.data import CorpusConfig, SpatialLevel, generate_corpus
from repro.models import (
    GeneralModelConfig,
    NextLocationPredictor,
    PersonalizationConfig,
    PersonalizationMethod,
    personalize,
    train_general_model,
)
from repro.pelican import confidence_sharpness, leakage_reduction

TEMPERATURES = [1.0, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5]


def main() -> None:
    corpus = generate_corpus(
        CorpusConfig(
            num_buildings=30, num_contributors=10, num_personal_users=1, num_days=42, seed=17
        )
    )
    level = SpatialLevel.BUILDING
    spec = corpus.spec(level)
    train, _ = corpus.contributor_dataset(level).split_by_user(0.8)
    general, _ = train_general_model(
        train, GeneralModelConfig(hidden_size=40, epochs=12, patience=5), np.random.default_rng(0)
    )
    uid = corpus.personal_ids[0]
    user_train, user_test = corpus.user_dataset(uid, level).split(0.8)
    personal, _ = personalize(
        general,
        user_train,
        PersonalizationMethod.TL_FE,
        PersonalizationConfig(epochs=15, patience=5),
        np.random.default_rng(1),
    )
    prior = build_prior(PriorMethod.TRUE, spec.num_locations, train_dataset=user_train)
    X, y = user_test.encode()

    print(f"privacy tuning for user {uid} ({len(user_test)} test windows)\n")
    header = (
        f"{'T':>8}  {'svc top-3':>9}  {'attack top-3':>12}  "
        f"{'reduction':>9}  {'sharpness':>9}"
    )
    print(header)
    print("-" * len(header))

    baseline_attack = None
    for temperature in TEMPERATURES:
        model = personal.copy(np.random.default_rng(2))
        model.set_privacy_temperature(temperature)
        predictor = NextLocationPredictor(model, spec)

        service_top3 = predictor.top_k_accuracy(X, y, 3)
        probes = np.stack([spec.encode_sequence(w.history) for w in user_test.windows[:20]])
        sharpness = confidence_sharpness(predictor.confidences_encoded(probes))

        attack = TimeBasedAttack(candidate_locations=prune_locations(predictor, user_test))
        result = attack_user(
            attack, predictor, user_test, AdversaryClass.A1, prior, max_instances=25
        )
        attack_top3 = result.accuracy(3)
        if baseline_attack is None:
            baseline_attack = attack_top3
        reduction = leakage_reduction(baseline_attack, attack_top3)
        print(
            f"{temperature:>8g}  {service_top3:>9.2%}  {attack_top3:>12.2%}  "
            f"{reduction:>8.1f}%  {sharpness:>9.3f}"
        )

    print(
        "\nReading the table: service accuracy is temperature-invariant (the"
        "\nprivacy layer preserves class ordering), confidences saturate toward"
        "\n1.0 as T shrinks, and the inversion attack loses accuracy — the"
        "\nuser dials privacy without paying utility."
    )


if __name__ == "__main__":
    main()
