#!/usr/bin/env python3
"""Auditing a live Pelican deployment for privacy leakage, at fleet scale.

The paper's headline evaluation (Table II, Figs 2–3, Fig 5) attacks
personalized models one at a time.  This example replays that story
against a *production-shaped* deployment (DESIGN.md §10): the
honest-but-curious provider audits its own fleet by sending inversion
attack probes through the same serving stack that answers benign
traffic — batched by the dispatcher, billed in the fleet books, and
split adversary-vs-benign in the accounting.

The walkthrough:

1. cloud training + device onboarding via the event schedule, with each
   user choosing their own privacy temperature — one user deliberately
   leaves the privacy layer off (T=1.0), the rest defend (T=1e-3);
2. a benign concurrent query burst (what normal serving looks like);
3. the audit: a time-based enumeration adversary (paper §III-B2) attacks
   every live model twice — one candidate probe per service query (the
   slow per-query API adversary) and batched through the fused probe
   dispatch — with bit-identical reconstruction rankings and the wall
   clock printed side by side;
4. the report: leakage per user (the undefended user leaks, the defended
   ones mostly don't) and the adversary-vs-benign accounting split.

Run:  python examples/privacy_audit.py
"""

import time

from repro.attacks import (
    AdversaryClass,
    AuditAdversary,
    AuditTarget,
    TimeBasedAttack,
    run_fleet_audit,
    run_fleet_audit_looped,
    true_prior,
)
from repro.attacks.fleet_adversary import rankings
from repro.data import CorpusConfig, SpatialLevel, generate_corpus
from repro.models import GeneralModelConfig, PersonalizationConfig
from repro.pelican import (
    DeploymentMode,
    Fleet,
    FleetSchedule,
    Pelican,
    PelicanConfig,
    QueryRequest,
)


def main() -> None:
    corpus = generate_corpus(
        CorpusConfig(
            num_buildings=25, num_contributors=8, num_personal_users=3, num_days=42, seed=17
        )
    )
    level = SpatialLevel.BUILDING

    pelican = Pelican(
        corpus.spec(level),
        PelicanConfig(
            general=GeneralModelConfig(hidden_size=32, epochs=8, patience=4),
            personalization=PersonalizationConfig(epochs=10, patience=4),
            seed=5,
        ),
    )
    fleet = Fleet(pelican, registry_capacity=2)

    print("=== Onboard: cloud training + device personalization ===")
    contributor_train, _ = corpus.contributor_dataset(level).split_by_user(0.8)
    fleet.train_cloud(contributor_train)
    schedule = FleetSchedule()
    splits = {}
    temperatures = {}
    for i, uid in enumerate(corpus.personal_ids):
        train, holdout = corpus.user_dataset(uid, level).split(0.8)
        splits[uid] = (train, holdout)
        # The first user skips the privacy layer; everyone else defends.
        temperature = 1.0 if i == 0 else 1e-3
        temperatures[uid] = temperature
        mode = DeploymentMode.CLOUD if i % 2 else DeploymentMode.LOCAL
        schedule.onboard(
            float(i), uid, train, privacy_temperature=temperature, deployment=mode
        )
    fleet.run(schedule)
    for uid, user in pelican.users.items():
        print(
            f"user {uid}: {user.endpoint.mode.value} deployment, "
            f"privacy T={temperatures[uid]:g}"
        )

    print("\n=== Benign serving burst ===")
    requests = [
        QueryRequest(user_id=uid, history=tuple(w.history), k=3)
        for uid in corpus.personal_ids
        for w in splits[uid][1].windows[:6]
    ]
    fleet.serve(requests)
    print(f"served {len(requests)} benign queries in {fleet.report.batches} batches")

    print("\n=== Audit: inversion attack through the serving stack ===")
    targets = [
        AuditTarget(
            user_id=uid,
            attack_windows=splits[uid][1],
            prior=true_prior(splits[uid][0]),
        )
        for uid in corpus.personal_ids
    ]
    adversary = AuditAdversary(
        TimeBasedAttack(), AdversaryClass.A1, max_instances=4
    )
    start = time.perf_counter()
    looped = run_fleet_audit_looped(fleet, adversary, targets)
    looped_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    audited, _ = run_fleet_audit(fleet, adversary, targets)
    batched_ms = (time.perf_counter() - start) * 1e3
    identical = rankings(audited) == rankings(looped)
    print(
        f"{audited.total_queries} candidate probes: per-probe loop {looped_ms:.0f}ms "
        f"-> batched dispatch {batched_ms:.0f}ms ({looped_ms / batched_ms:.1f}x), "
        f"reconstruction rankings identical: {identical}"
    )

    print("\n=== Leakage report (attack hit@k against the live models) ===")
    for uid, accuracy in sorted(audited.per_user_accuracy(1).items()):
        top3 = audited.per_user[uid].accuracy(3)
        print(
            f"user {uid} (T={temperatures[uid]:g}): "
            f"top-1 leakage {accuracy:.0%}, top-3 {top3:.0%}"
        )
    print(f"population top-1 leakage: {audited.accuracy(1):.0%} "
          f"(coverage {audited.coverage:.0%})")

    print("\n=== Adversary-vs-benign accounting (DESIGN.md §10) ===")
    report = fleet.report
    benign_queries = report.queries - report.adversary_queries
    print(
        f"queries : {report.adversary_queries} adversary vs {benign_queries} benign"
    )
    print(
        f"cloud   : {report.adversary_cloud_compute.macs / 1e6:.1f} adversary MMACs "
        f"of {report.cloud_compute.macs / 1e6:.1f} total"
    )
    print(
        f"device  : {report.adversary_device_compute.macs / 1e6:.1f} adversary MMACs "
        f"of {report.device_compute.macs / 1e6:.1f} total"
    )
    print(
        f"network : {report.adversary_network_seconds:.1f}s adversary "
        f"of {report.network_seconds:.1f}s total simulated"
    )


if __name__ == "__main__":
    main()
