#!/usr/bin/env python3
"""Adversary study: who can reconstruct your location history, and how?

Reproduces the paper's §IV analysis on a small corpus: the three attack
methods (brute force, gradient descent, time-based enumeration), the three
adversary classes (A1/A2/A3 of Table I), and the four prior-knowledge modes
(Fig 2c) — printing an attack-accuracy matrix like the paper's figures.

Run:  python examples/adversary_study.py
"""

import time

import numpy as np

from repro.attacks import (
    AdversaryClass,
    BruteForceAttack,
    GradientDescentAttack,
    PriorMethod,
    TimeBasedAttack,
    attack_user,
    build_prior,
    prune_locations,
)
from repro.attacks.runner import AttackEvaluation
from repro.data import CorpusConfig, SpatialLevel, generate_corpus
from repro.models import (
    GeneralModelConfig,
    NextLocationPredictor,
    PersonalizationConfig,
    PersonalizationMethod,
    personalize,
    train_general_model,
)

KS = (1, 3, 5, 7)
INSTANCES = 12


def build_targets():
    corpus = generate_corpus(
        CorpusConfig(
            num_buildings=30, num_contributors=10, num_personal_users=3, num_days=42, seed=29
        )
    )
    level = SpatialLevel.BUILDING
    spec = corpus.spec(level)
    train, _ = corpus.contributor_dataset(level).split_by_user(0.8)
    general, _ = train_general_model(
        train, GeneralModelConfig(hidden_size=40, epochs=12, patience=5), np.random.default_rng(0)
    )
    targets = {}
    for uid in corpus.personal_ids:
        user_train, user_test = corpus.user_dataset(uid, level).split(0.8)
        model, _ = personalize(
            general,
            user_train,
            PersonalizationMethod.TL_FE,
            PersonalizationConfig(epochs=15, patience=5),
            np.random.default_rng(uid),
        )
        predictor = NextLocationPredictor(model, spec)
        targets[uid] = (predictor, user_train, user_test)
    return spec, targets


def evaluate(spec, targets, attack_factory, adversary, prior_method):
    evaluation = AttackEvaluation(attack_name="study", adversary=adversary)
    for uid, (predictor, user_train, user_test) in targets.items():
        prior = build_prior(
            prior_method,
            spec.num_locations,
            train_dataset=user_train,
            predictor=predictor,
            probe_windows=user_test,
        )
        pruned = prune_locations(predictor, user_test)
        evaluation.per_user[uid] = attack_user(
            attack_factory(pruned), predictor, user_test, adversary, prior, INSTANCES
        )
    return evaluation


def row(label, evaluation, seconds):
    accs = "  ".join(f"top-{k} {100 * evaluation.accuracy(k):5.1f}%" for k in KS)
    print(f"  {label:<22} {accs}   [{seconds:5.1f}s, {evaluation.total_queries:>8} queries]")


def main() -> None:
    spec, targets = build_targets()

    print("=== Attack methods (adversary A1, true prior) — paper Fig 2a / Table II ===")
    methods = {
        "brute force": lambda pruned: BruteForceAttack(),
        "gradient descent": lambda pruned: GradientDescentAttack(),
        "time-based": lambda pruned: TimeBasedAttack(candidate_locations=pruned),
    }
    for name, factory in methods.items():
        started = time.perf_counter()
        evaluation = evaluate(spec, targets, factory, AdversaryClass.A1, PriorMethod.TRUE)
        row(name, evaluation, time.perf_counter() - started)

    print("\n=== Adversarial knowledge (time-based, true prior) — paper Fig 2b ===")
    for adversary in AdversaryClass:
        started = time.perf_counter()
        evaluation = evaluate(
            spec,
            targets,
            lambda pruned: TimeBasedAttack(candidate_locations=pruned),
            adversary,
            PriorMethod.TRUE,
        )
        row(f"{adversary.value} ({'+'.join(map(str, adversary.missing_steps))} missing)",
            evaluation, time.perf_counter() - started)

    print("\n=== Prior knowledge (time-based, A1) — paper Fig 2c ===")
    for prior_method in PriorMethod:
        started = time.perf_counter()
        evaluation = evaluate(
            spec,
            targets,
            lambda pruned: TimeBasedAttack(candidate_locations=pruned),
            AdversaryClass.A1,
            prior_method,
        )
        row(prior_method.value, evaluation, time.perf_counter() - started)

    print(
        "\nTakeaway (paper §IV): the time-based attack matches brute force at a"
        "\nfraction of the cost, works for every adversary class, and degrades"
        "\nonly mildly with imprecise priors."
    )


if __name__ == "__main__":
    main()
