#!/usr/bin/env python3
"""A location-aware mobile service running on the full Pelican framework,
served at fleet scale.

Simulates the scenario from the paper's introduction: a restaurant/route
recommendation service that pre-fetches content for the user's *predicted
next location*.  The service provider is honest-but-curious: it serves
recommendations but would love to reconstruct where users have been.

This example exercises every Pelican phase (paper Fig 4) through the
fleet serving layer (DESIGN.md §7):

1. cloud-based initial training over contributor trajectories;
2. device-based personalization for a cohort of users (with the privacy
   tuner set per user), driven by a deterministic event schedule;
3. deployment behind a uniform endpoint — local users keep their model,
   cloud users' models land in the provider's LRU model registry;
4. a burst of concurrent queries served *batched* (one fused dispatch
   per model) and cross-checked against the per-query loop;
5. periodic model updates as new weeks of data arrive;

plus the fleet-level overhead accounting: MACs and simulated seconds
attributed per side, network traffic, and registry cache behaviour —
then, as a finale, the same deployment sharded and hit with a total
blackout under a resilience policy (DESIGN.md §11), printing the
degraded-vs-fresh answer breakdown; and finally the deployment re-run
with the model registry on the tiered blob store (DESIGN.md §14),
gating answer parity against the in-memory run and printing the
resident-memory and cold-load-latency deltas.

Run:  python examples/pelican_service.py
"""

import copy
import time

from repro.data import CorpusConfig, SpatialLevel, generate_corpus
from repro.eval import responses_match
from repro.models import GeneralModelConfig, PersonalizationConfig
from repro.pelican import (
    Cluster,
    DeploymentMode,
    Fleet,
    FleetSchedule,
    Pelican,
    PelicanConfig,
    QueryRequest,
    chaos_policy,
    make_blob_store,
    measure_availability,
    resilience_policy,
)


def main() -> None:
    corpus = generate_corpus(
        CorpusConfig(
            num_buildings=30, num_contributors=10, num_personal_users=3, num_days=56, seed=13
        )
    )
    level = SpatialLevel.BUILDING
    spec = corpus.spec(level)

    pelican = Pelican(
        spec,
        PelicanConfig(
            general=GeneralModelConfig(hidden_size=40, epochs=12, patience=5),
            personalization=PersonalizationConfig(epochs=15, patience=5),
            privacy_temperature=1e-3,
            deployment=DeploymentMode.LOCAL,
            seed=3,
        ),
    )
    # Capacity 1 keeps at most one personal model hot in the provider's
    # cloud, so serving the cohort exercises cold loads and evictions.
    fleet = Fleet(pelican, registry_capacity=1)

    print("=== Phase 1: cloud-based initial training ===")
    contributor_train, _ = corpus.contributor_dataset(level).split_by_user(0.8)
    report = fleet.train_cloud(contributor_train)
    print(
        f"general model trained: {report.estimated_billion_cycles:.1f}B cycle-equivalents, "
        f"{report.wall_seconds:.1f}s wall"
    )
    # Trained-but-userless snapshot: phases 5 and 6 re-run the same
    # deployment under different serving substrates.
    pristine = copy.deepcopy(pelican)

    print("\n=== Phase 2+3: onboard the fleet (device personalization + deployment) ===")
    schedule = FleetSchedule()
    holdouts = {}
    for i, uid in enumerate(corpus.personal_ids):
        full = corpus.user_dataset(uid, level)
        train, holdout = full.split(0.8)
        # First six weeks now; the rest arrives later as an update.
        initial = train.limit_weeks(6)
        holdouts[uid] = (train, holdout)
        mode = DeploymentMode.CLOUD if i % 2 else DeploymentMode.LOCAL
        # Users choose their own privacy tuner.
        temperature = [1e-2, 1e-3, 1e-4][i % 3]
        schedule.onboard(
            float(i), uid, initial, privacy_temperature=temperature, deployment=mode
        )
    fleet.run(schedule)
    for uid, user in pelican.users.items():
        print(
            f"user {uid}: deployed {user.endpoint.mode.value}, "
            f"personalization {user.personalization_report.estimated_billion_cycles:.2f}B cycles "
            f"(~{user.simulated_device_seconds:.1f}s on a low-end phone)"
        )

    print("\n=== Serve a concurrent burst, batched per model ===")
    requests = []
    for uid in corpus.personal_ids:
        _, holdout = holdouts[uid]
        for window in holdout.windows[:8]:
            requests.append(QueryRequest(user_id=uid, history=tuple(window.history), k=3))
    start = time.perf_counter()
    looped = fleet.serve_looped(requests)
    looped_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    batched = fleet.serve(requests)
    batched_ms = (time.perf_counter() - start) * 1e3
    identical = responses_match(batched, looped)
    print(
        f"{len(requests)} concurrent queries in {fleet.report.batches} batches: "
        f"looped {looped_ms:.1f}ms -> batched {batched_ms:.1f}ms "
        f"({looped_ms / batched_ms:.1f}x), outputs identical: {identical}"
    )
    for uid in corpus.personal_ids:
        _, holdout = holdouts[uid]
        window = holdout.windows[0]
        top3 = next(r.top_k for r in batched if r.user_id == uid)
        pretty = ", ".join(f"bldg {loc} ({conf:.0%})" for loc, conf in top3)
        print(f"user {uid} predicted next locations: {pretty} | truth: bldg {window.target}")

    print("\n=== Phase 4: weekly model update ===")
    uid = corpus.personal_ids[0]
    train, holdout = holdouts[uid]
    X, y = holdout.encode()
    before = pelican.users[uid].endpoint.predictor.top_k_accuracy(X, y, 3)
    fleet.update(uid, train)  # re-invoke TL with the full history
    after = pelican.users[uid].endpoint.predictor.top_k_accuracy(X, y, 3)
    print(f"user {uid} holdout top-3 accuracy: {before:.2%} -> {after:.2%} after update")

    print("\n=== Fleet overhead summary (paper §V-C2, per side) ===")
    fr = fleet.report
    ratio = fr.cloud_compute.macs / max(fr.device_compute.macs, 1)
    print(
        f"cloud : {fr.cloud_compute.macs / 1e9:.2f}B MACs "
        f"({fr.cloud_simulated_seconds:.2f}s simulated on a {fr.cloud_profile.name})"
    )
    print(
        f"device: {fr.device_compute.macs / 1e9:.2f}B MACs "
        f"({fr.device_simulated_seconds:.1f}s simulated on a {fr.device_profile.name})"
    )
    print(f"cloud/device MAC ratio: {ratio:.1f}x")
    print(
        f"network: {fr.network_seconds:.1f}s simulated, "
        f"{fr.network_bytes_down / 1e6:.2f} MB down, {fr.network_bytes_up / 1e6:.2f} MB up"
    )
    print(
        f"registry: {fr.registry.hits} hits, {fr.registry.cold_loads} cold loads, "
        f"{fr.registry.evictions} evictions (capacity {fleet.registry.capacity})"
    )

    print("\n=== Phase 5: blackout with graceful degradation (DESIGN.md §11) ===")
    # The same deployment, sharded in two, under a total-outage chaos
    # preset — with the default resilience policy the cluster answers
    # through the degradation ladder instead of waiting out the outage.
    cluster = Cluster.from_trained(
        copy.deepcopy(pelican),
        num_shards=2,
        registry_capacity=1,
        policy=chaos_policy("blackout", seed=0),
        resilience=resilience_policy("default", seed=0),
    )
    chaos_schedule = FleetSchedule()
    targets = {}
    tick = 10.0
    for j in range(6):
        for uid in corpus.personal_ids:
            _, holdout = holdouts[uid]
            window = holdout.windows[j % len(holdout.windows)]
            targets[chaos_schedule.next_seq] = window.target
            chaos_schedule.query(tick, uid, window.history, k=3)
        tick += 10.0
    responses = cluster.run(chaos_schedule)
    stats = cluster.resilience_stats

    def hit_rate(group):
        if not group:
            return 0.0
        hits = sum(1 for r in group if targets[r.seq] in [loc for loc, _ in r.top_k])
        return hits / len(group)

    fresh = [r for r in responses if r.degraded is None]
    degraded = [r for r in responses if r.degraded is not None]
    availability = measure_availability(
        chaos_schedule, responses, deadline=15.0,
        penalized=stats.unprotected_outage_queries,
    )
    print(
        f"fresh    : {len(fresh):3d} answers, top-3 hit rate {hit_rate(fresh):.2%}"
    )
    print(
        f"degraded : {len(degraded):3d} answers, top-3 hit rate {hit_rate(degraded):.2%} "
        f"(stale {stats.degraded_stale}, general {stats.degraded_general}, "
        f"prior {stats.degraded_prior})"
    )
    print(
        f"shed     : {stats.shed_queries} past-deadline, "
        f"availability {availability.availability:.2%}, "
        f"SLO attainment {availability.slo_attainment:.2%}"
    )
    print(
        f"breakers : {stats.breaker_opens} opens, "
        f"{stats.breaker_redirects} redirects, "
        f"{len(stats.breaker_log)} logged transitions; "
        f"retries {stats.retries_spent} spent / {stats.retries_denied} denied, "
        f"{stats.backoff_seconds:.2f}s backoff"
    )

    print("\n=== Phase 6: the registry on the tiered blob store (DESIGN.md §14) ===")
    # The same onboarding schedule and query burst, replayed from the
    # trained snapshot over the in-memory store and over the tiered store.
    # The hot budget is deliberately sized *below* one checkpoint, so
    # every checkpoint demotes to disk immediately — the all-cold worst
    # case for the latency comparison.  Stores are byte-transparent, so
    # the answers must be identical; what changes is what stays resident.

    def replay(kind, hot_bytes):
        store = make_blob_store(kind, hot_bytes=hot_bytes)
        replayed = Fleet(
            copy.deepcopy(pristine), registry_capacity=1, registry_store=store
        )
        replayed.run(schedule)
        return replayed, store, replayed.serve(requests)

    memory_fleet, memory_store, memory_answers = replay("memory", 0)
    blob_bytes = max(len(blob) for blob in memory_store.values())
    tiered_fleet, tiered_store, tiered_answers = replay("tiered", blob_bytes // 2)
    print(f"answers identical across stores: {responses_match(tiered_answers, memory_answers)}")

    def cold_load_ms(replayed, uid):
        best = float("inf")
        for _ in range(10):
            replayed.registry.evict(uid)
            start = time.perf_counter()
            replayed.registry.get(uid)
            best = min(best, time.perf_counter() - start)
        return best * 1e3

    cloud_uid = next(
        uid
        for uid, user in memory_fleet.pelican.users.items()
        if user.endpoint.mode is DeploymentMode.CLOUD
    )
    memory_ms = cold_load_ms(memory_fleet, cloud_uid)
    tiered_ms = cold_load_ms(tiered_fleet, cloud_uid)
    print(
        f"resident blob bytes: {memory_store.resident_bytes() / 1e3:.0f} KB in-memory "
        f"-> {tiered_store.resident_bytes() / 1e3:.0f} KB tiered "
        f"({memory_store.resident_bytes() / tiered_store.resident_bytes():.1f}x less resident, "
        f"{tiered_store.total_bytes / 1e3:.0f} KB durable on disk)"
    )
    print(
        f"registry cold load (evict + reload user {cloud_uid}): "
        f"{memory_ms:.2f}ms in-memory -> {tiered_ms:.2f}ms tiered "
        f"(hot tier: {tiered_store.hot_hits} hits / {tiered_store.hot_misses} misses)"
    )
    tiered_store.close()


if __name__ == "__main__":
    main()
