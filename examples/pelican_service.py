#!/usr/bin/env python3
"""A location-aware mobile service running on the full Pelican framework.

Simulates the scenario from the paper's introduction: a restaurant/route
recommendation service that pre-fetches content for the user's *predicted
next location*.  The service provider is honest-but-curious: it serves
recommendations but would love to reconstruct where users have been.

This example exercises every Pelican phase (paper Fig 4):

1. cloud-based initial training over contributor trajectories;
2. device-based personalization for a cohort of users (with the privacy
   tuner set per user);
3. deployment (one user local, one cloud) behind a uniform endpoint;
4. periodic model updates as new weeks of data arrive;

plus the overhead accounting the paper reports in §V-C2.

Run:  python examples/pelican_service.py
"""

import numpy as np

from repro.data import CorpusConfig, SpatialLevel, generate_corpus
from repro.models import GeneralModelConfig, PersonalizationConfig
from repro.pelican import DeploymentMode, Pelican, PelicanConfig


def main() -> None:
    corpus = generate_corpus(
        CorpusConfig(
            num_buildings=30, num_contributors=10, num_personal_users=3, num_days=56, seed=13
        )
    )
    level = SpatialLevel.BUILDING
    spec = corpus.spec(level)

    pelican = Pelican(
        spec,
        PelicanConfig(
            general=GeneralModelConfig(hidden_size=40, epochs=12, patience=5),
            personalization=PersonalizationConfig(epochs=15, patience=5),
            privacy_temperature=1e-3,
            deployment=DeploymentMode.LOCAL,
            seed=3,
        ),
    )

    print("=== Phase 1: cloud-based initial training ===")
    contributor_train, _ = corpus.contributor_dataset(level).split_by_user(0.8)
    report = pelican.initial_training(contributor_train)
    print(
        f"general model trained: {report.estimated_billion_cycles:.1f}B cycle-equivalents, "
        f"{report.wall_seconds:.1f}s wall"
    )

    print("\n=== Phase 2+3: onboard users (device personalization + deployment) ===")
    holdouts = {}
    for i, uid in enumerate(corpus.personal_ids):
        full = corpus.user_dataset(uid, level)
        train, holdout = full.split(0.8)
        # First six weeks now; the rest arrives later as an update.
        initial = train.limit_weeks(6)
        holdouts[uid] = (train, holdout)
        mode = DeploymentMode.CLOUD if i % 2 else DeploymentMode.LOCAL
        # Users choose their own privacy tuner.
        temperature = [1e-2, 1e-3, 1e-4][i % 3]
        user = pelican.onboard_user(
            uid, initial, privacy_temperature=temperature, deployment=mode
        )
        print(
            f"user {uid}: deployed {mode.value}, T={temperature:g}, "
            f"personalization {user.personalization_report.estimated_billion_cycles:.2f}B cycles "
            f"(~{user.simulated_device_seconds:.1f}s on a low-end phone)"
        )

    print("\n=== Serve recommendations ===")
    for uid in corpus.personal_ids:
        _, holdout = holdouts[uid]
        window = holdout.windows[0]
        top3 = pelican.query(uid, window.history, k=3)
        pretty = ", ".join(f"bldg {loc} ({conf:.0%})" for loc, conf in top3)
        print(f"user {uid} predicted next locations: {pretty} | truth: bldg {window.target}")

    print("\n=== Phase 4: weekly model update ===")
    uid = corpus.personal_ids[0]
    train, holdout = holdouts[uid]
    X, y = holdout.encode()
    before = pelican.users[uid].endpoint.predictor.top_k_accuracy(X, y, 3)
    pelican.update_user(uid, train)  # re-invoke TL with the full history
    after = pelican.users[uid].endpoint.predictor.top_k_accuracy(X, y, 3)
    print(f"user {uid} holdout top-3 accuracy: {before:.2%} -> {after:.2%} after update")

    print("\n=== Overhead summary (paper §V-C2) ===")
    summary = pelican.overhead_summary()
    ratio = summary["cloud_billion_cycles"] / max(summary["device_mean_billion_cycles"], 1e-9)
    print(f"cloud training:        {summary['cloud_billion_cycles']:.1f}B cycles")
    print(f"device personalization: {summary['device_mean_billion_cycles']:.2f}B cycles (mean)")
    print(f"cloud/device ratio:     {ratio:.0f}x")
    print(
        f"channel traffic: {summary['channel_bytes_down'] / 1e6:.2f} MB down, "
        f"{summary['channel_bytes_up'] / 1e6:.2f} MB up"
    )


if __name__ == "__main__":
    main()
