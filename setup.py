"""Legacy setup shim: this offline environment lacks the `wheel` package,
so PEP 517 editable installs fail. `python setup.py develop` (or the .pth
fallback) provides the equivalent of `pip install -e .`."""
from setuptools import setup

setup()
