"""Figure 5c: defense effectiveness across spatial levels.

Paper shapes: the reduction in privacy leakage is higher at the coarser
building level than at AP level for k>1 (mirroring Fig 3a: coarse scales
leak more, so there is more leakage for the defense to remove).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.eval import render_accuracy_grid, run_defense_on_spatial_levels


def test_fig5c_defense_on_spatial_levels(pipeline, benchmark):
    ks = tuple(range(1, 11))
    results = run_once(benchmark, run_defense_on_spatial_levels, pipeline, ks=ks)
    print("\n[Fig 5c] leakage reduction (%) by spatial level, T=1e-3")
    print(render_accuracy_grid(results, "level"))

    assert set(results) == {"building", "ap"}
    for series in results.values():
        assert all(0.0 <= v <= 100.0 for v in series.values())
    # The defense produces real reduction at the coarse (building) level.
    assert float(np.mean(list(results["building"].values()))) > 0.0

    benchmark.extra_info["reduction"] = results
