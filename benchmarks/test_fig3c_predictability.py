"""Figure 3c: impact of mobility predictability on privacy leakage.

Paper shape: mobility predictability (proxied by the personal model's own
accuracy) correlates strongly with attack accuracy at building level
(r = 0.804, p < 0.05): more learnable users leak more.  The relationship
is weak at AP level (r = 0.078).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.eval import render_scatter, run_predictability_study


def test_fig3c_predictability(pipeline, benchmark):
    studies = run_once(benchmark, run_predictability_study, pipeline)
    print("\n[Fig 3c] mobility predictability vs attack accuracy")
    print(render_scatter(studies))

    assert set(studies) == {"building", "ap"}
    building_corr = studies["building"].correlation()
    ap_corr = studies["ap"].correlation()

    # The model-accuracy/attack-accuracy trade-off should lean positive at
    # building level (small populations make this noisy; assert direction).
    if np.isfinite(building_corr.coefficient):
        assert building_corr.coefficient > -0.5

    benchmark.extra_info["building_r"] = building_corr.coefficient
    benchmark.extra_info["building_p"] = building_corr.p_value
    benchmark.extra_info["ap_r"] = ap_corr.coefficient
