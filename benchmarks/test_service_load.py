"""Service-load benchmark: micro-batching vs per-request admission
(DESIGN.md §15).

Compiles one open-loop generated workload — ~1000 simulated devices
multiplexed over the ``small``-scale deployment's users, Poisson
arrivals — and pushes it through the service front door twice:

* **per-request admission** (``window=0, max_batch=1``): every arrival
  flushes alone, so the fleet dispatcher serves batches of one — the
  front-door equivalent of the looped reference path;
* **micro-batching** (a real window + ``max_batch``): arrivals coalesce
  into flush batches that the event clock serves as one dispatch.

Two properties are pinned:

* **parity, before and after timing** — both admission modes answer
  every query with identical rankings (1e-9-relative confidences) in
  the same per-seq order; the timing loop must not diverge them;
* **micro-batching pays** — the batched run beats per-request admission
  by the acceptance bar (relaxed under CI, where runner noise and
  reduced parallelism blunt the win).
"""

from __future__ import annotations

import copy
import os
import time

import pytest

from repro.eval import responses_match
from repro.pelican import Fleet, ServiceConfig, ServiceFrontDoor
from repro.traffic import RegimeTraffic, TrafficConfig, TrafficGenerator

TARGET_DEVICES = 1000
RATE = 0.05
HORIZON = 30.0
MIN_SPEEDUP = 1.2 if os.environ.get("CI") else 1.5
BEST_OF_ROUNDS = 3

MICRO_BATCH = ServiceConfig(window=0.5, max_batch=64, queue_capacity=None)
PER_REQUEST = ServiceConfig(window=0.0, max_batch=1, queue_capacity=None)


@pytest.fixture(scope="module")
def service_workload(trained_deployment):
    """(onboarded pelican, compiled schedule, device count)."""
    pelican, holdouts, _ = trained_deployment(queries_per_user=1)
    devices_per_user = max(1, round(TARGET_DEVICES / len(holdouts)))
    traffic = TrafficConfig(
        seed=29,
        horizon=HORIZON,
        regimes=(RegimeTraffic(rate=RATE),),
        devices_per_user=devices_per_user,
    )
    schedule = TrafficGenerator(traffic).compile(
        {uid: [w.history for w in holdout.windows] for uid, holdout in holdouts.items()}
    )
    return pelican, schedule, devices_per_user * len(holdouts)


@pytest.fixture(scope="module")
def doors(service_workload):
    """Module-lived front doors, one per admission mode (queries are
    pure, so the same door replays the workload across rounds)."""
    pelican, _, _ = service_workload
    return (
        ServiceFrontDoor(Fleet(copy.deepcopy(pelican)), MICRO_BATCH),
        ServiceFrontDoor(Fleet(copy.deepcopy(pelican)), PER_REQUEST),
    )


def by_seq(responses):
    return sorted(responses, key=lambda r: r.seq)


@pytest.mark.parametrize("mode", ["microbatch", "per_request"])
def test_service_load_serve(benchmark, doors, service_workload, mode):
    """One benchmark entry per admission mode."""
    batched, per_request = doors
    _, schedule, _ = service_workload
    front = batched if mode == "microbatch" else per_request
    benchmark(front.run, schedule)


def test_micro_batching_parity_and_speedup(service_workload):
    """Acceptance: identical answers in both admission modes, before and
    after the timing loop, and micro-batching beats per-request by the
    bar at ~1k devices."""
    pelican, schedule, num_devices = service_workload
    assert num_devices >= TARGET_DEVICES * 0.9

    batched = ServiceFrontDoor(Fleet(copy.deepcopy(pelican)), MICRO_BATCH)
    per_request = ServiceFrontDoor(Fleet(copy.deepcopy(pelican)), PER_REQUEST)

    # Parity BEFORE timing (also warms both fleets' registries).
    reference = by_seq(per_request.run(schedule))
    first = by_seq(batched.run(schedule))
    assert [r.seq for r in first] == [r.seq for r in reference]
    assert responses_match(first, reference)
    assert batched.stats.rejected == per_request.stats.rejected == 0
    assert batched.book.answered == per_request.book.answered
    assert batched.stats.flushes < per_request.stats.flushes

    def best_of(front):
        best, result = float("inf"), None
        for _ in range(BEST_OF_ROUNDS):
            start = time.perf_counter()
            result = front.run(schedule)
            best = min(best, time.perf_counter() - start)
        return best, result

    batched_seconds, batched_responses = best_of(batched)
    per_request_seconds, per_request_responses = best_of(per_request)

    # Parity AFTER timing: the loop did not diverge the answers.
    assert responses_match(by_seq(batched_responses), by_seq(per_request_responses))

    speedup = per_request_seconds / batched_seconds
    print(
        f"\nservice load ({num_devices} devices, "
        f"{batched.stats.generated // (BEST_OF_ROUNDS + 1)} queries/run): "
        f"micro-batch {batched_seconds * 1e3:.1f}ms vs per-request "
        f"{per_request_seconds * 1e3:.1f}ms ({speedup:.2f}x)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"micro-batching only {speedup:.2f}x per-request admission "
        f"({batched_seconds * 1e3:.1f}ms vs {per_request_seconds * 1e3:.1f}ms)"
    )
