"""Table II + Figure 2a: attack methods — runtime and accuracy vs top-k.

Paper shapes to reproduce:
* time-based enumeration matches brute force accuracy (Fig 2a);
* gradient descent is far weaker (<16% in the paper);
* brute force costs orders of magnitude more queries/time (Table II:
  82.18h vs 0.68h for 100 users, ~120x).
"""

from benchmarks.conftest import run_once
from repro.eval import render_attack_methods, run_attack_methods


def test_table2_fig2a_attack_methods(pipeline, benchmark):
    results = run_once(benchmark, run_attack_methods, pipeline, ks=(1, 3, 5, 7))
    print("\n[Table II + Fig 2a] attack methods (A1, building level, true prior)")
    print(render_attack_methods(results))

    brute = results["brute force"]
    time_based = results["time-based"]
    gradient = results["gradient descent"]

    # Fig 2a: time-based ~ brute force; both beat gradient descent at top-3+.
    for k in (3, 5, 7):
        assert abs(time_based.accuracy[k] - brute.accuracy[k]) <= 15.0
        assert time_based.accuracy[k] > gradient.accuracy[k]

    # Accuracy grows with k for the enumeration attacks.
    assert time_based.accuracy[7] >= time_based.accuracy[1]

    # Table II: brute force is far more expensive.
    assert brute.queries >= 20 * time_based.queries
    assert brute.runtime_seconds > time_based.runtime_seconds

    benchmark.extra_info["accuracy"] = {m: r.accuracy for m, r in results.items()}
    benchmark.extra_info["queries"] = {m: r.queries for m, r in results.items()}
    benchmark.extra_info["runtime_seconds"] = {
        m: r.runtime_seconds for m, r in results.items()
    }
