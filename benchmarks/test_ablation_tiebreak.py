"""Ablation: score tie-breaking under the Pelican defense.

The defense saturates confidences to {0, 1}, so surviving candidates tie
at exactly ``1.0 x prior``.  The paper's attack resolves ties in
enumeration order ("id"); a stronger adversary that falls back on the
prior ("prior") recovers part of the lost leakage.  This ablation
quantifies how much of the defense's protection depends on the adversary
not exploiting ties — a limitation worth knowing when deploying the
temperature defense.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.attacks import AdversaryClass, TimeBasedAttack
from repro.data import SpatialLevel
from repro.eval import run_attack_over_targets


def _accuracy(pipeline, tie_break, temperature):
    targets = pipeline.attack_targets(SpatialLevel.BUILDING, temperature=temperature)
    evaluation = run_attack_over_targets(
        targets,
        lambda target: TimeBasedAttack(
            candidate_locations=target.pruned_locations, tie_break=tie_break
        ),
        AdversaryClass.A1,
        pipeline.scale.attack_instances_per_user,
    )
    return {k: 100.0 * evaluation.accuracy(k) for k in (1, 3, 5)}


def run_ablation(pipeline):
    return {
        "defended/id": _accuracy(pipeline, "id", 1e-3),
        "defended/prior": _accuracy(pipeline, "prior", 1e-3),
        "undefended/id": _accuracy(pipeline, "id", None),
    }


def test_ablation_tie_break(pipeline, benchmark):
    results = run_once(benchmark, run_ablation, pipeline)
    print("\n[Ablation] tie-breaking under the defense (attack accuracy %)")
    for name, series in results.items():
        print(f"  {name}: {series}")

    # The prior-aware adversary recovers at least as much as the naive one
    # on average under the defense.
    mean_id = float(np.mean(list(results["defended/id"].values())))
    mean_prior = float(np.mean(list(results["defended/prior"].values())))
    assert mean_prior >= mean_id - 5.0

    benchmark.extra_info["accuracy"] = results
