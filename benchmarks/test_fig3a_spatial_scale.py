"""Figure 3a: impact of spatial scale (building vs access point).

Paper shape: the attack leaks *less* at the finer AP scale — the larger
domain makes reconstruction harder — and leakage grows with k at both
scales.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.eval import render_accuracy_grid, run_spatial_comparison


def test_fig3a_spatial_scale(pipeline, benchmark):
    ks = tuple(range(1, 11))
    results = run_once(benchmark, run_spatial_comparison, pipeline, ks=ks)
    print("\n[Fig 3a] spatial scale (time-based, A1)")
    print(render_accuracy_grid(results, "level"))

    building = results["building"]
    ap = results["ap"]

    # Building-level leaks at least as much as AP-level on average.
    assert float(np.mean(list(building.values()))) >= float(np.mean(list(ap.values())))
    # Leakage grows with k at both scales.
    assert building[10] >= building[1]
    assert ap[10] >= ap[1]

    benchmark.extra_info["accuracy"] = results
