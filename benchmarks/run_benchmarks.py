#!/usr/bin/env python
"""Run the pytest-benchmark suite and summarize speedups vs. a baseline.

The committed baseline (``benchmarks/BENCH_baseline.json``) pins the perf
trajectory: it holds the benchmark means recorded when the fused LSTM
backend landed, so future PRs can show their speedup (or catch a
regression) with one command.

Usage::

    # micro-benchmarks only (seconds):
    python benchmarks/run_benchmarks.py

    # the full suite including experiment regeneration (minutes):
    python benchmarks/run_benchmarks.py --full

    # refresh the committed baseline from the current run:
    python benchmarks/run_benchmarks.py --update-baseline

Results are written to ``benchmarks/BENCH_latest.json`` (pytest-benchmark's
JSON format; not committed) and compared against the committed baseline by
test name — every benchmark artifact lives under ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
# The quick suite: nn micro-benchmarks, the fleet serving comparison, the
# cluster shard-scaling comparison, the worker-pool parallel serving
# comparison, the regimes x chaos scenario matrix, the privacy-audit
# comparison, the resilience clean-path overhead gate, the cross-model
# stacked dispatch comparison, the storage tiering gates, and the
# front-door micro-batching gate (all run in seconds; the
# experiment-regeneration targets need --full).
DEFAULT_TARGETS = [
    str(BENCH_DIR / "test_nn_microbench.py"),
    str(BENCH_DIR / "test_fleet_serving.py"),
    str(BENCH_DIR / "test_cluster_scaling.py"),
    str(BENCH_DIR / "test_parallel_cluster.py"),
    str(BENCH_DIR / "test_scenario_matrix.py"),
    str(BENCH_DIR / "test_audit_matrix.py"),
    str(BENCH_DIR / "test_resilience_overhead.py"),
    str(BENCH_DIR / "test_stacked_dispatch.py"),
    str(BENCH_DIR / "test_storage_tiering.py"),
    str(BENCH_DIR / "test_service_load.py"),
]
BASELINE_PATH = BENCH_DIR / "BENCH_baseline.json"
OUTPUT_PATH = BENCH_DIR / "BENCH_latest.json"


def run_pytest(targets: list[str], output: pathlib.Path) -> int:
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *targets,
        "-q",
        f"--benchmark-json={output}",
    ]
    env_src = str(REPO_ROOT / "src")
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = env_src + (
        os.pathsep + env["PYTHONPATH"] if "PYTHONPATH" in env else ""
    )
    print("$", " ".join(cmd))
    return subprocess.call(cmd, cwd=REPO_ROOT, env=env)


def load_means(path: pathlib.Path) -> dict[str, float]:
    data = json.loads(path.read_text())
    return {b["name"]: b["stats"]["mean"] for b in data.get("benchmarks", [])}


def summarize(current: dict[str, float], baseline: dict[str, float]) -> None:
    width = max((len(n) for n in current), default=10)
    header = f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  {'speedup':>8}"
    print()
    print(header)
    print("-" * len(header))
    for name in sorted(current):
        cur = current[name]
        base = baseline.get(name)
        if base is None:
            print(f"{name:<{width}}  {'—':>12}  {cur * 1e3:>10.3f}ms  {'new':>8}")
        else:
            print(
                f"{name:<{width}}  {base * 1e3:>10.3f}ms  {cur * 1e3:>10.3f}ms  "
                f"{base / cur:>7.2f}x"
            )
    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"\nnot run (in baseline only): {', '.join(missing)}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the entire benchmarks/ directory (experiment regeneration; slow)",
    )
    parser.add_argument(
        "--targets",
        nargs="*",
        default=None,
        help="explicit pytest targets (default: nn micro-benchmarks + fleet serving)",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=BASELINE_PATH,
        help=f"baseline JSON to compare against (default: {BASELINE_PATH})",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="overwrite the baseline with this run's results",
    )
    args = parser.parse_args()

    targets = args.targets or ([str(BENCH_DIR)] if args.full else DEFAULT_TARGETS)
    rc = run_pytest(targets, OUTPUT_PATH)
    if rc != 0:
        return rc
    current = load_means(OUTPUT_PATH)
    if not current:
        print("no benchmarks recorded")
        return 1
    if args.baseline.exists():
        summarize(current, load_means(args.baseline))
    else:
        print(f"no baseline at {args.baseline}; current means:")
        for name, mean in sorted(current.items()):
            print(f"  {name}: {mean * 1e3:.3f} ms")
    if args.update_baseline:
        args.baseline.write_text(OUTPUT_PATH.read_text())
        print(f"\nbaseline updated: {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
