"""Ablation: entry-bin slack in the time-based attack.

The continuity arithmetic (``e_{t-1} = e_{t-2} + d_{t-2}``) is computed on
discretized bins, so the derived entry bin can be off by one.  The attack
hedges with a ± slack window; this ablation measures what the hedge buys
over trusting the derived bin exactly (slack 0).
"""

from benchmarks.conftest import run_once
from repro.attacks import AdversaryClass, TimeBasedAttack
from repro.data import SpatialLevel
from repro.eval import run_attack_over_targets


def run_ablation(pipeline):
    targets = pipeline.attack_targets(SpatialLevel.BUILDING)
    n = pipeline.scale.attack_instances_per_user
    results = {}
    for slack in (0, 1, 2):
        evaluation = run_attack_over_targets(
            targets,
            lambda target, s=slack: TimeBasedAttack(
                candidate_locations=target.pruned_locations, entry_slack=s
            ),
            AdversaryClass.A1,
            n,
        )
        results[slack] = {
            "accuracy": {k: 100.0 * evaluation.accuracy(k) for k in (1, 3, 5)},
            "queries": evaluation.total_queries,
        }
    return results


def test_ablation_entry_slack(pipeline, benchmark):
    results = run_once(benchmark, run_ablation, pipeline)
    print("\n[Ablation] entry-bin slack (time-based, A1)")
    for slack, row in results.items():
        print(f"  slack={slack}: {row}")

    # Queries scale linearly with the slack window.
    assert results[1]["queries"] > results[0]["queries"]
    assert results[2]["queries"] > results[1]["queries"]
    # Hedging should not hurt materially.
    assert results[1]["accuracy"][3] >= results[0]["accuracy"][3] - 10.0

    benchmark.extra_info["results"] = {str(k): v for k, v in results.items()}
