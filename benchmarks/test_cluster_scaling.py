"""Cluster scaling benchmark: batched serving throughput across shard counts.

Stands up one trained-and-onboarded Pelican deployment at the ``small``
scale (six personal users, mixed local/cloud deployment, ``fast_setup``
training) and serves the identical concurrent workload through sharded
clusters of 1, 2, and 4 shards (DESIGN.md §9).

Two properties are pinned:

* **per-shard parity** — every shard count returns bit-identical
  responses to the legacy single-``Fleet`` serve on the same requests
  (placement routes whole users; the dispatcher groups per model; nothing
  about sharding may change an answer);
* **throughput holds as shards grow** — batched dispatch stays ≥ the
  acceptance bar over the looped reference at every shard count (the
  routing layer is O(requests) bookkeeping, so adding shards must not eat
  the batching win), and the K-shard serve stays within a small factor of
  the 1-shard serve.
"""

from __future__ import annotations

import copy
import os
import time

import pytest

from repro.eval import responses_match
from repro.pelican import Cluster, Fleet

SHARD_COUNTS = (1, 2, 4)
QUERIES_PER_USER = 32
# Same bar (and CI relaxation) as the fleet serving benchmark.
MIN_SPEEDUP = 1.5 if os.environ.get("CI") else 3.0
# Routing overhead budget: K-shard batched serve vs 1-shard batched serve.
MAX_SHARD_OVERHEAD = 4.0 if os.environ.get("CI") else 2.0


@pytest.fixture(scope="module")
def deployment(trained_deployment):
    """One trained + onboarded Pelican, its request mix, and per-K clusters.

    Training happens once (the session-cached ``trained_deployment``
    fixture); every shard count adopts a deepcopy of the same deployment
    through ``Cluster.from_trained``, so the comparison across shard
    counts isolates the routing/serving layer.
    """
    pelican, _, requests = trained_deployment(queries_per_user=QUERIES_PER_USER)
    fleet = Fleet(copy.deepcopy(pelican))
    clusters = {
        num_shards: Cluster.from_trained(copy.deepcopy(pelican), num_shards=num_shards)
        for num_shards in SHARD_COUNTS
    }
    return fleet, clusters, requests


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_cluster_serve_batched(benchmark, deployment, num_shards):
    """Batched cluster serving, one entry per shard count."""
    _, clusters, requests = deployment
    benchmark(clusters[num_shards].serve, requests)


def test_cluster_scaling_parity_and_throughput(deployment):
    """Acceptance: bit-identical answers at every shard count, batched
    speedup ≥ the bar everywhere, routing overhead bounded."""
    fleet, clusters, requests = deployment

    def best_of(fn, rounds=5):
        best, result = float("inf"), None
        for _ in range(rounds):
            start = time.perf_counter()
            result = fn(requests)
            best = min(best, time.perf_counter() - start)
        return best, result

    _, reference = best_of(fleet.serve)
    batched_seconds = {}
    for num_shards, cluster in clusters.items():
        looped_seconds, looped = best_of(cluster.serve_looped)
        seconds, batched = best_of(cluster.serve)
        batched_seconds[num_shards] = seconds
        assert batched == reference, (
            f"{num_shards}-shard serving diverged from the single fleet"
        )
        assert responses_match(batched, looped)
        speedup = looped_seconds / seconds
        assert speedup >= MIN_SPEEDUP, (
            f"{num_shards}-shard batched serving only {speedup:.2f}x faster "
            f"than the loop ({seconds * 1e3:.2f}ms vs {looped_seconds * 1e3:.2f}ms)"
        )
    for num_shards in SHARD_COUNTS[1:]:
        overhead = batched_seconds[num_shards] / batched_seconds[1]
        assert overhead <= MAX_SHARD_OVERHEAD, (
            f"{num_shards}-shard batched serve is {overhead:.2f}x the "
            f"1-shard serve — routing overhead ate the batching win"
        )
