"""Figure 2b: impact of adversarial knowledge (A1 vs A2 vs A3).

Paper shape: all three adversaries perform effectively and roughly
equivalently — even A3, with no historical features at all, mounts the
attack successfully.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.eval import render_accuracy_grid, run_adversary_comparison


def test_fig2b_adversaries(pipeline, benchmark):
    results = run_once(benchmark, run_adversary_comparison, pipeline, ks=(1, 3, 5, 7))
    print("\n[Fig 2b] adversarial knowledge (time-based, building level)")
    print(render_accuracy_grid(results, "adversary"))

    assert set(results) == {"A1", "A2", "A3"}
    # Every adversary leaks: well above random guessing at top-3.
    random_top3 = 100.0 * 3 / pipeline.corpus.campus.num_buildings
    for name, series in results.items():
        assert series[3] > 2 * random_top3, f"{name} barely beats chance"
        assert series[7] >= series[1]

    # Rough equivalence: A3 within a wide band of A1 (paper: no degradation).
    spread = max(r[3] for r in results.values()) - min(r[3] for r in results.values())
    assert spread <= 35.0

    benchmark.extra_info["accuracy"] = results
