"""Figure 5a: reduction in privacy leakage per personalization method.

Paper shapes: the privacy layer reduces leakage for both TL methods
(46-54% in the paper's data); the reduction profile varies with k (their
curve dips at k=2 then rises).  Our synthetic users are less location
diverse than real students, so the measured magnitude is smaller (see
EXPERIMENTS.md), but the reduction is positive across k for both methods.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.eval import render_accuracy_grid, run_defense_on_personalization


def test_fig5a_defense_on_personalization(pipeline, benchmark):
    ks = tuple(range(1, 10))
    results = run_once(benchmark, run_defense_on_personalization, pipeline, ks=ks)
    print("\n[Fig 5a] leakage reduction (%) by personalization method, T=1e-3")
    print(render_accuracy_grid(results, "method"))

    assert set(results) == {"tl_fe", "tl_ft"}
    for method, series in results.items():
        mean_reduction = float(np.mean(list(series.values())))
        assert mean_reduction > 0.0, f"defense ineffective for {method}"
        assert all(0.0 <= v <= 100.0 for v in series.values())

    benchmark.extra_info["reduction"] = results
