"""Cross-model stacked dispatch benchmark (DESIGN.md §12).

A cloud tick touching N same-shaped personal models pays N Python
dispatches on the per-model path — predictor construction, per-session
encoding, and a handful of small GEMMs per model.  The stacked path
serves the identical tick as one batch-encode plus a few batched GEMMs
over stacked weights.  This benchmark pins that advantage at fleet
scales (100 / 1k / 10k models) over a *warm* weight-stack cache — the
steady serving state, since rows persist across ticks until a lifecycle
transition invalidates them.

Models are synthetic (random same-shaped personal models): serving cost
depends only on shapes, not on how converged the weights are, and
building 10k real personalizations would take minutes for no additional
signal.  Parity is still gated both ways at every scale — exact
rankings AND 1e-9-relative confidences with zero absolute slack —
before any timing is trusted, and the booked MACs must equal the
per-model path's integers.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.data.features import FeatureSpec, SessionFeatures
from repro.models import NextLocationModel
from repro.pelican import WeightStackCache
from repro.pelican.dispatch import dispatch_model_batch, dispatch_stacked_tick

# Same acceptance shape as the fleet serving benchmark: quiet hardware
# must clear 3x; shared CI runners get a jitter-relaxed bar, parity
# stays a hard gate everywhere.
MIN_SPEEDUP = 1.5 if os.environ.get("CI") else 3.0

WINDOW_STEPS = 4
#: (num_models, hidden) — hidden shrinks at 10k to keep the stacked
#: weight blocks (and the 10k per-model python objects) in memory bounds.
SCALES = {100: 16, 1000: 16, 10000: 4}

SPEC = FeatureSpec(num_locations=8)


def _build_groups(num_models: int, hidden: int):
    """One tick's worth of resolved stackable groups, plus a warm cache."""
    rng = np.random.default_rng(17)
    groups = []
    for uid in range(num_models):
        model = NextLocationModel(
            input_width=SPEC.width,
            num_locations=SPEC.num_locations,
            hidden_size=hidden,
            num_layers=1,
            dropout=0.0,
            rng=np.random.default_rng(uid),
        )
        model.set_privacy_temperature(1e-3)
        model.eval()
        # Mostly one query per model (the fleet-scale worst case for the
        # per-model path); a few ragged 2-3 query groups keep the
        # padding path honest.
        size = 1 if uid % 17 else 1 + uid % 3
        histories = [
            tuple(
                SessionFeatures(
                    entry_bin=int(rng.integers(0, SPEC.entry_bins)),
                    duration_bin=int(rng.integers(0, SPEC.duration_bins)),
                    location=int(rng.integers(0, SPEC.num_locations)),
                    day_of_week=int(rng.integers(0, SPEC.days)),
                )
                for _ in range(WINDOW_STEPS)
            )
            for _ in range(max(1, size))
        ]
        groups.append((uid, model, histories, 1 + uid % 4))
    cache = WeightStackCache()
    dispatch_stacked_tick(cache, SPEC, groups)  # warm the stack rows
    return cache, groups


def _serve_per_model(groups):
    return [
        dispatch_model_batch(model, SPEC, histories, k)
        for _, model, histories, k in groups
    ]


def _assert_parity(stacked_served, per_model_served):
    """The double gate: exact rankings, then 1e-9-relative confidences
    (atol=0), plus integer MAC equality group by group."""
    assert len(stacked_served) == len(per_model_served)
    for stacked, per_model in zip(stacked_served, per_model_served):
        assert stacked is not None
        (results, report), (expected, measured) = stacked, per_model
        assert report.macs == measured.macs
        for got, want in zip(results, expected):
            assert [loc for loc, _ in got] == [loc for loc, _ in want]
            np.testing.assert_allclose(
                [conf for _, conf in got],
                [conf for _, conf in want],
                rtol=1e-9,
                atol=0.0,
            )


@pytest.fixture(scope="module")
def tick_100():
    return _build_groups(100, SCALES[100])


@pytest.fixture(scope="module")
def tick_1k():
    return _build_groups(1000, SCALES[1000])


def test_stacked_tick_100_models(benchmark, tick_100):
    cache, groups = tick_100
    benchmark(dispatch_stacked_tick, cache, SPEC, groups)


def test_per_model_tick_100_models(benchmark, tick_100):
    _, groups = tick_100
    benchmark(_serve_per_model, groups)


def test_stacked_tick_1k_models(benchmark, tick_1k):
    cache, groups = tick_1k
    benchmark(dispatch_stacked_tick, cache, SPEC, groups)


def test_per_model_tick_1k_models(benchmark, tick_1k):
    _, groups = tick_1k
    benchmark(_serve_per_model, groups)


@pytest.mark.parametrize("num_models", sorted(SCALES))
def test_stacked_speedup_and_parity(num_models):
    """Acceptance: the stacked tick is ≥ 3x faster than the per-model
    loop (relaxed under CI) at every fleet scale, with parity gated
    before any timing is trusted."""
    cache, groups = _build_groups(num_models, SCALES[num_models])

    _assert_parity(
        dispatch_stacked_tick(cache, SPEC, groups), _serve_per_model(groups)
    )

    rounds = 3 if num_models >= 10000 else 5

    def best_of(fn, *args):
        best, result = float("inf"), None
        for _ in range(rounds):
            start = time.perf_counter()
            result = fn(*args)
            best = min(best, time.perf_counter() - start)
        return best, result

    per_model_seconds, per_model_served = best_of(_serve_per_model, groups)
    stacked_seconds, stacked_served = best_of(
        dispatch_stacked_tick, cache, SPEC, groups
    )
    _assert_parity(stacked_served, per_model_served)  # and after timing
    speedup = per_model_seconds / stacked_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"stacked tick over {num_models} models only {speedup:.2f}x faster "
        f"than per-model dispatch ({stacked_seconds * 1e3:.2f}ms vs "
        f"{per_model_seconds * 1e3:.2f}ms)"
    )
