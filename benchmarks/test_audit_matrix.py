"""Privacy-audit benchmark: batched probe dispatch vs. the per-probe loop.

Stands up a Pelican fleet at the ``tiny`` scale (mixed local/cloud
deployment, fast setup) and attacks every user's live model with the
paper's time-based enumeration attack (§III-B2) two ways:

* ``looped``  — the service-API adversary: one black-box confidence
  query per candidate probe
  (:func:`~repro.attacks.fleet_adversary.run_fleet_audit_looped`);
* ``batched`` — the audit path (DESIGN.md §10): all of a user's candidate
  probes grouped per ``(user, window, k)`` and dispatched through the
  fused probe kernel
  (:func:`~repro.attacks.fleet_adversary.run_fleet_audit`).

``test_audit_batched_speedup_and_parity`` pins the acceptance bar: the
batched audit must be ≥ 3x faster (relaxed to 1.5x under CI) with
**bit-identical reconstruction rankings** — against both the looped
serving path and the historical ``InversionAttack.run`` loop over bare
predictors.

A second timing target pins the full ``run_audit_suite`` matrix cell
cost (adversaries × defenses on one regime), the audit analogue of
``test_scenario_matrix.py``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.attacks import (
    AdversaryClass,
    AuditAdversary,
    AuditTarget,
    TimeBasedAttack,
    evaluate_attack,
    run_fleet_audit,
    run_fleet_audit_looped,
    true_prior,
)
from repro.attacks.fleet_adversary import rankings
from repro.data import SpatialLevel, generate_corpus
from repro.eval import ExperimentScale, run_audit_suite
from repro.eval.fleet import training_configs
from repro.pelican import DeploymentMode, Fleet, Pelican, PelicanConfig

LEVEL = SpatialLevel.BUILDING
MAX_INSTANCES = 4
# Same bar as the fleet/cluster serving benchmarks: wall-clock ratios are
# jittery on shared CI runners, so CI only sanity-checks the direction —
# ranking parity stays a hard gate everywhere.
MIN_SPEEDUP = 1.5 if os.environ.get("CI") else 3.0


@pytest.fixture(scope="module")
def audit_workload():
    """(fleet, adversary, targets) — one deployed fleet under audit."""
    scale = ExperimentScale.tiny()
    general, personalization = training_configs(scale, fast_setup=True)
    corpus = generate_corpus(scale.corpus)
    pelican = Pelican(
        corpus.spec(LEVEL),
        PelicanConfig(
            general=general,
            personalization=personalization,
            seed=scale.corpus.seed,
        ),
    )
    fleet = Fleet(pelican, registry_capacity=64)
    train, _ = corpus.contributor_dataset(LEVEL).split_by_user(0.8)
    fleet.train_cloud(train)
    targets = []
    for i, uid in enumerate(corpus.personal_ids):
        user_train, holdout = corpus.user_dataset(uid, LEVEL).split(0.8)
        mode = DeploymentMode.CLOUD if i % 2 else DeploymentMode.LOCAL
        fleet.onboard(uid, user_train, deployment=mode)
        targets.append(
            AuditTarget(
                user_id=uid, attack_windows=holdout, prior=true_prior(user_train)
            )
        )
    adversary = AuditAdversary(
        TimeBasedAttack(), AdversaryClass.A1, max_instances=MAX_INSTANCES
    )
    return fleet, adversary, targets


def test_audit_probe_looped(benchmark, audit_workload):
    """Service-API adversary: one black-box query per candidate probe."""
    fleet, adversary, targets = audit_workload
    benchmark(run_fleet_audit_looped, fleet, adversary, targets)


def test_audit_probe_batched(benchmark, audit_workload):
    """Audit path: probes grouped per user, fused probe dispatch.

    Runs against the shared fleet — probe dispatch only appends to the
    books (unbounded registry, no eviction churn), so repeated rounds
    time identical work.
    """
    fleet, adversary, targets = audit_workload
    benchmark(run_fleet_audit, fleet, adversary, targets)


def test_audit_batched_speedup_and_parity(audit_workload):
    """Acceptance: batched audit ≥ 3x faster than the per-probe loop
    (relaxed under CI), reconstruction rankings bit-identical — vs. both
    the looped path and the historical bare InversionAttack.run loop."""
    fleet, adversary, targets = audit_workload

    def best_of(fn, rounds=3):
        best, result = float("inf"), None
        for _ in range(rounds):
            start = time.perf_counter()
            result = fn()
            best = min(best, time.perf_counter() - start)
        return best, result

    looped_seconds, looped = best_of(
        lambda: run_fleet_audit_looped(fleet, adversary, targets)
    )
    batched_seconds, batched = best_of(
        lambda: run_fleet_audit(fleet, adversary, targets)[0]
    )
    assert rankings(batched) == rankings(looped), (
        "batched audit rankings diverged from the per-probe loop"
    )

    bare_targets = {
        t.user_id: (
            fleet.pelican.users[t.user_id].endpoint.predictor,
            t.attack_windows,
            t.prior,
        )
        for t in targets
    }
    bare = evaluate_attack(
        TimeBasedAttack(), bare_targets, AdversaryClass.A1,
        max_instances=MAX_INSTANCES,
    )
    assert rankings(batched) == rankings(bare), (
        "fleet-served audit diverged from looping InversionAttack.run"
    )

    speedup = looped_seconds / batched_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"batched audit only {speedup:.2f}x faster than the per-probe loop "
        f"({batched_seconds * 1e3:.2f}ms vs {looped_seconds * 1e3:.2f}ms)"
    )


def test_audit_matrix_tiny(benchmark):
    """Full audit-suite cell cost: 2 defenses x 1 adversary on campus."""
    scale = ExperimentScale.tiny()
    result = benchmark.pedantic(
        lambda: run_audit_suite(
            scale,
            regimes=("campus",),
            defenses=("none", "temperature"),
            adversaries=("A1",),
            queries_per_user=1,
            max_instances=2,
        ),
        rounds=1,
        iterations=1,
    )
    assert len(result.cells) == 2
    assert all(cell.adversary_queries > 0 for cell in result.cells)
