"""Table III: train/test accuracy of the four personalization methods.

Paper shapes: Reuse is worst everywhere; transfer-learning methods beat
the scratch LSTM on test accuracy; TL-FE shows the smallest train/test
gap (least overfitting); AP-level accuracy is lower than building-level.
"""

from benchmarks.conftest import run_once
from repro.data import SpatialLevel
from repro.eval import render_personalization, run_personalization_comparison


def test_table3_personalization(pipeline, benchmark):
    results = run_once(
        benchmark,
        run_personalization_comparison,
        pipeline,
        levels=(SpatialLevel.BUILDING, SpatialLevel.AP),
    )
    print("\n[Table III] personalization methods (100-user aggregate in the paper)")
    print(render_personalization(results))

    for level in ("building", "ap"):
        rows = {row.method: row for row in results[level]}
        # Reuse (the unpersonalized baseline) loses to every TL method.
        assert rows["tl_fe"].test_top3 > rows["reuse"].test_top3
        assert rows["tl_ft"].test_top3 > rows["reuse"].test_top3
        # Top-k accuracy is monotone in k.
        for row in rows.values():
            assert row.test_top1 <= row.test_top2 <= row.test_top3

    building = {row.method: row for row in results["building"]}
    ap = {row.method: row for row in results["ap"]}
    # The AP task (larger domain) is harder.
    assert ap["tl_fe"].test_top1 < building["tl_fe"].test_top1

    # TL-FE overfits least among the trained personalization methods.
    def gap(row):
        return row.train_top1 - row.test_top1

    assert gap(building["tl_fe"]) <= gap(building["tl_ft"]) + 10.0

    benchmark.extra_info["table"] = {
        level: {r.method: [r.train_top1, r.test_top1, r.test_top2, r.test_top3] for r in rows}
        for level, rows in results.items()
    }
