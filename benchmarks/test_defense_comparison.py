"""Extension: Pelican's temperature layer vs Table V output perturbations.

The paper's Table V positions Pelican against other defense families.
This benchmark compares the temperature privacy layer head-to-head with
three output-perturbation defenses on the same users, reporting for each:

* attack accuracy (time-based, A1, true prior) — lower is better;
* service top-3 accuracy — the utility cost;
* expected calibration error — what the defense does to the scores.

The headline property being verified: the temperature layer is the only
defense here with *zero* service-accuracy cost (scaling preserves class
ordering), while still cutting attack accuracy.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.attacks import AdversaryClass, TimeBasedAttack, attack_user, prune_locations
from repro.attacks.runner import AttackEvaluation
from repro.data import SpatialLevel
from repro.eval import expected_calibration_error, format_table
from repro.pelican import GaussianNoiseDefense, RoundingDefense, TopKOnlyDefense


def run_comparison(pipeline):
    level = SpatialLevel.BUILDING
    spec = pipeline.spec(level)
    n = pipeline.scale.attack_instances_per_user

    def defenses_for(predictor):
        return {
            "none": predictor,
            "temperature 1e-3": None,  # handled via the privacy layer below
            "gaussian sigma=0.1": GaussianNoiseDefense(predictor, sigma=0.1, seed=1),
            "rounding 1dp": RoundingDefense(predictor, decimals=1),
            "top-3 only": TopKOnlyDefense(predictor, k=3),
        }

    names = ["none", "temperature 1e-3", "gaussian sigma=0.1", "rounding 1dp", "top-3 only"]
    results = {
        name: {"attack": AttackEvaluation(name, AdversaryClass.A1), "svc": [], "ece": []}
        for name in names
    }
    for uid in pipeline.attack_users():
        base = pipeline.attack_target(uid, level)
        defended = pipeline.attack_target(uid, level, temperature=1e-3)
        artifact = pipeline.personal(uid, level)
        X, y = artifact.test.encode()
        wrappers = defenses_for(base.predictor)
        wrappers["temperature 1e-3"] = defended.predictor
        for name, wrapper in wrappers.items():
            pruned = prune_locations(wrapper, artifact.test)
            result = attack_user(
                TimeBasedAttack(candidate_locations=pruned),
                wrapper,
                artifact.test,
                AdversaryClass.A1,
                base.prior,
                max_instances=n,
            )
            results[name]["attack"].per_user[uid] = result
            results[name]["svc"].append(wrapper.top_k_accuracy(X, y, 3))
            probs = wrapper.confidences_encoded(X)
            results[name]["ece"].append(expected_calibration_error(probs, y).ece)
    table = {}
    for name, data in results.items():
        table[name] = {
            "attack_top3": 100 * data["attack"].accuracy(3),
            "service_top3": 100 * float(np.mean(data["svc"])),
            "ece": float(np.mean(data["ece"])),
        }
    return table


def test_defense_comparison(pipeline, benchmark):
    table = run_once(benchmark, run_comparison, pipeline)
    print("\n[Extension] defense comparison (building level, A1, true prior)")
    print(
        format_table(
            ["defense", "attack top-3 (%)", "service top-3 (%)", "ECE"],
            [
                [name, row["attack_top3"], row["service_top3"], row["ece"]]
                for name, row in table.items()
            ],
        )
    )

    base = table["none"]
    temp = table["temperature 1e-3"]
    # The temperature layer never costs service accuracy.
    assert abs(temp["service_top3"] - base["service_top3"]) < 1e-9
    # It saturates confidences (high ECE is the expected, intended effect).
    assert temp["ece"] > base["ece"]
    # Every defense is evaluated.
    assert set(table) == {
        "none", "temperature 1e-3", "gaussian sigma=0.1", "rounding 1dp", "top-3 only"
    }

    benchmark.extra_info["table"] = table
