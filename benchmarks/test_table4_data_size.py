"""Table IV: personalization accuracy vs training-data size (2-8 weeks).

Paper shapes: transfer-learning methods degrade gracefully with less data
and improve with more; the scratch LSTM is the most overfitting-prone
(large train/test gap at small sizes).
"""

from benchmarks.conftest import run_once
from repro.eval import render_training_sweep, run_training_size_sweep


def test_table4_training_data_size(pipeline, benchmark):
    results = run_once(benchmark, run_training_size_sweep, pipeline, weeks=(2, 4, 6, 8))
    print("\n[Table IV] training-data size sweep (building level)")
    print(render_training_sweep(results))

    assert set(results) == {2, 4, 6, 8}

    def row(weeks, method):
        return next(r for r in results[weeks] if r.method == method)

    # More data helps the TL methods (allowing small-sample noise).
    assert row(8, "tl_fe").test_top3 >= row(2, "tl_fe").test_top3 - 5.0
    assert row(8, "tl_ft").test_top3 >= row(2, "tl_ft").test_top3 - 5.0

    # The scratch LSTM overfits hardest at the smallest size.
    lstm_gap = row(2, "lstm").train_top1 - row(2, "lstm").test_top1
    tl_fe_gap = row(2, "tl_fe").train_top1 - row(2, "tl_fe").test_top1
    assert lstm_gap >= tl_fe_gap - 5.0

    benchmark.extra_info["table"] = {
        weeks: {r.method: [r.train_top1, r.test_top1, r.test_top3] for r in rows}
        for weeks, rows in results.items()
    }
