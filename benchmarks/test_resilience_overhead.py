"""Resilience clean-path overhead benchmark (DESIGN.md §11).

The resilience layer's guard clauses run on every serve even when nothing
fails, so the layer must be close to free when no fault fires.  This
benchmark stands up one trained-and-onboarded deployment at the ``small``
scale and serves the identical concurrent workload through:

* a bare :class:`~repro.pelican.fleet.Fleet` (no resilience argument);
* the same fleet under the ``default`` :class:`ResiliencePolicy` — full
  budgets, breakers, and deadline machinery attached, zero faults to
  handle.

Two properties are pinned:

* **answers are unchanged** — with no chaos there is nothing to retry,
  shed, or degrade, so both paths return bit-identical responses;
* **clean-path overhead ≤ 5%** — the acceptance bar from the resilience
  PR: attaching the policy may not slow fault-free serving by more than
  5% (relaxed on shared CI runners where timer noise dominates).
"""

from __future__ import annotations

import copy
import os
import time

import pytest

from repro.eval import ExperimentScale
from repro.pelican import Fleet, resilience_policy

QUERIES_PER_USER = 32
# The PR's acceptance bar; CI runners are too noisy to pin 5%.
MAX_OVERHEAD = 1.5 if os.environ.get("CI") else 1.05
BEST_OF_ROUNDS = 10


@pytest.fixture(scope="module")
def deployment(trained_deployment):
    """(bare fleet, resilient fleet, requests) over one shared training."""
    pelican, _, requests = trained_deployment(queries_per_user=QUERIES_PER_USER)
    bare = Fleet(copy.deepcopy(pelican))
    resilient = Fleet(
        copy.deepcopy(pelican),
        resilience=resilience_policy(
            "default", seed=ExperimentScale.small().corpus.seed
        ),
    )
    return bare, resilient, requests


def test_fleet_serve_bare(benchmark, deployment):
    bare, _, requests = deployment
    benchmark(bare.serve, requests)


def test_fleet_serve_resilient(benchmark, deployment):
    _, resilient, requests = deployment
    benchmark(resilient.serve, requests)


def test_resilience_clean_path_overhead(deployment):
    """Acceptance: identical answers, ≤5% clean-path slowdown."""
    bare, resilient, requests = deployment

    def timed(fleet):
        start = time.perf_counter()
        result = fleet.serve(requests)
        return time.perf_counter() - start, result

    # Interleave the rounds so machine-load drift hits both paths alike.
    bare_seconds = resilient_seconds = float("inf")
    bare_responses = resilient_responses = None
    for _ in range(BEST_OF_ROUNDS):
        seconds, bare_responses = timed(bare)
        bare_seconds = min(bare_seconds, seconds)
        seconds, resilient_responses = timed(resilient)
        resilient_seconds = min(resilient_seconds, seconds)
    assert resilient_responses == bare_responses
    # No fault fired, so the overlay stayed at rest.
    stats = resilient.resilience_stats
    assert stats.retries_spent == 0
    assert stats.shed_queries == 0
    assert stats.degraded_queries == 0
    overhead = resilient_seconds / bare_seconds
    assert overhead <= MAX_OVERHEAD, (
        f"resilient clean-path serve is {overhead:.3f}x the bare serve "
        f"({resilient_seconds * 1e3:.2f}ms vs {bare_seconds * 1e3:.2f}ms) — "
        f"the guard clauses are no longer near-free"
    )
