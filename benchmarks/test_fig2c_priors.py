"""Figure 2c: impact of the nature of prior knowledge p.

Paper shapes: the attack without a prior ("none") is least effective; the
true prior is best; predict/estimate trail true by a modest margin (5-10%
in the paper), so the attack is not sensitive to prior precision.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.eval import render_accuracy_grid, run_prior_comparison


def test_fig2c_priors(pipeline, benchmark):
    ks = tuple(range(1, 11))
    results = run_once(benchmark, run_prior_comparison, pipeline, ks=ks)
    print("\n[Fig 2c] prior knowledge (time-based, A1, building level)")
    print(render_accuracy_grid(results, "prior"))

    assert set(results) == {"true", "none", "predict", "estimate"}

    def mean_acc(name):
        return float(np.mean(list(results[name].values())))

    # True prior dominates no prior on average.
    assert mean_acc("true") >= mean_acc("none")
    # Observation-derived priors land within a sane band of the true prior.
    assert mean_acc("predict") >= mean_acc("none") - 10.0
    assert abs(mean_acc("true") - mean_acc("predict")) <= 25.0

    benchmark.extra_info["accuracy"] = results
