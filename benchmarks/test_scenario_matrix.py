"""Scenario-matrix benchmark: regimes × chaos policies at tiny scale.

Times one full :func:`~repro.eval.scenarios.run_scenario_suite` pass —
corpus generation per regime, fleet builds (``fast_setup``), and the
schedule replay under each chaos policy — so regressions in the chaos or
regime layers show up in the committed baseline comparison just like the
serving-path ones.  Determinism is asserted alongside: the suite is the
one surface that composes every fault stream, so a flaky mean here is
itself a bug signal.
"""

from __future__ import annotations

import pytest

from repro.eval import ExperimentScale, run_scenario_suite

REGIMES = ("campus", "commuter", "tourist")
POLICIES = ("none", "hostile")


def _run():
    return run_scenario_suite(
        ExperimentScale.tiny(),
        regimes=REGIMES,
        policies=POLICIES,
        queries_per_user=3,
        fast_setup=True,
    )


@pytest.fixture(scope="module")
def reference_suite():
    return _run()


def test_scenario_suite_tiny(benchmark, reference_suite):
    suite = benchmark(_run)
    assert len(suite.results) == len(REGIMES) * len(POLICIES)
    assert all(0.0 <= cell.hit_rate <= 1.0 for cell in suite.results)
    # Bit determinism across repeated runs (benchmark rounds included).
    for cell, reference in zip(suite.results, reference_suite.results):
        assert cell.signature == reference.signature
        assert cell.chaos == reference.chaos
        assert cell.hit_rate == reference.hit_rate
