"""Parallel cluster benchmark: worker-pool serving vs in-process serial.

Stands up one trained-and-onboarded deployment and serves the identical
concurrent workload through a 4-shard cluster twice: ``workers=0`` (the
in-process serial scatter) and ``workers=4`` (the persistent
worker-process pool, DESIGN.md §13).

The workload is shaped so the comparison measures *compute scatter*, not
transfer: models at the paper's hidden width (GEMM-dense queries, while
a request/response pair is a few dozen bytes on the pipe), eight users
balanced exactly two-per-shard by ``least_loaded`` placement, and enough
queries per user that each shard's sub-batch dwarfs the per-session
replica sync (single-digit milliseconds after the delta-shipping
protocol).

Two properties are pinned:

* **bit parity, before and after timing** — the parallel serve returns
  bit-identical responses to the serial serve on every call, and after
  the timed runs both clusters' ``totals_signature()`` still agree, so
  the timing loop itself cannot have diverged the books;
* **the workers actually pay for themselves** — on hardware with real
  parallelism the pooled serve beats serial by the acceptance bar
  (≥2x at 4 workers on a ≥4-core machine, ≥1.2x under CI or on 2–3
  cores).  On a single core there is nothing to win — process scatter
  is pure overhead there — so the run records the ratio without gating
  on it.
"""

from __future__ import annotations

import copy
import os
import time

import pytest

from repro.eval import responses_match
from repro.pelican import Cluster, totals_signature

NUM_SHARDS = 4
NUM_WORKERS = 4
NUM_USERS = 8  # exactly two per shard under least_loaded placement
HIDDEN_SIZE = 128  # the paper scale's width: compute-dense queries
QUERIES_PER_USER = 256
CORES = os.cpu_count() or 1

# The acceptance bar scales with the hardware actually available: the
# worker pool cannot beat serial on a single core (scatter is overhead
# with nothing to overlap), so the gate only arms when parallelism exists.
if CORES == 1:
    MIN_PARALLEL_SPEEDUP = None  # record-only
elif os.environ.get("CI") or CORES < 4:
    MIN_PARALLEL_SPEEDUP = 1.2
else:
    MIN_PARALLEL_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def deployment(trained_deployment):
    """One trained + onboarded Pelican and its concurrent request mix."""
    pelican, _, requests = trained_deployment(
        queries_per_user=QUERIES_PER_USER,
        hidden_size=HIDDEN_SIZE,
        num_personal_users=NUM_USERS,
    )
    return pelican, requests


def _cluster(pelican, workers):
    return Cluster.from_trained(
        copy.deepcopy(pelican),
        num_shards=NUM_SHARDS,
        placement="least_loaded",
        workers=workers,
    )


@pytest.fixture(scope="module")
def clusters(deployment):
    """Module-lived serial + pooled clusters (the pool persists across
    benchmark rounds, amortizing worker startup the way a server would)."""
    pelican, _ = deployment
    serial = _cluster(pelican, 0)
    parallel = _cluster(pelican, NUM_WORKERS)
    yield serial, parallel
    parallel.close()


@pytest.mark.parametrize("mode", ["serial", f"workers{NUM_WORKERS}"])
def test_parallel_cluster_serve(benchmark, clusters, deployment, mode):
    """Batched 4-shard serving, one entry per execution mode."""
    serial, parallel = clusters
    _, requests = deployment
    benchmark((serial if mode == "serial" else parallel).serve, requests)


def test_parallel_parity_and_speedup(deployment):
    """Acceptance: bit parity before and after timing; pooled serve beats
    serial by the hardware-conditional bar."""
    pelican, requests = deployment
    serial = _cluster(pelican, 0)
    parallel = _cluster(pelican, NUM_WORKERS)
    try:
        # Parity BEFORE timing (also warms the pool / worker processes).
        reference = serial.serve(requests)
        assert parallel.serve(requests) == reference, (
            "parallel serve diverged from serial before timing"
        )

        def best_of(fn, rounds=5):
            best, result = float("inf"), None
            for _ in range(rounds):
                start = time.perf_counter()
                result = fn(requests)
                best = min(best, time.perf_counter() - start)
            return best, result

        serial_seconds, serial_responses = best_of(serial.serve)
        parallel_seconds, parallel_responses = best_of(parallel.serve)

        # Parity AFTER timing: answers and books both held.
        assert parallel_responses == serial_responses, (
            "parallel serve diverged from serial after timing"
        )
        assert responses_match(parallel_responses, serial_responses)
        assert totals_signature(parallel.signature()) == totals_signature(
            serial.signature()
        ), "timed runs diverged the cluster books"

        speedup = serial_seconds / parallel_seconds
        print(
            f"\nparallel serve: {parallel_seconds * 1e3:.1f}ms vs serial "
            f"{serial_seconds * 1e3:.1f}ms ({speedup:.2f}x on {CORES} cores)"
        )
        if MIN_PARALLEL_SPEEDUP is not None:
            assert speedup >= MIN_PARALLEL_SPEEDUP, (
                f"{NUM_WORKERS}-worker serve only {speedup:.2f}x the serial "
                f"serve on {CORES} cores (bar: {MIN_PARALLEL_SPEEDUP}x)"
            )
    finally:
        parallel.close()
