"""§V-C2: overhead of cloud training vs device personalization.

Paper shape: general-model training (grid search + full fit over all
contributors) costs orders of magnitude more compute than one user's
transfer-learning personalization (43,000 vs ~15 billion CPU cycles;
4.55 hours vs ~6.6 seconds).  The absolute paper numbers come from their
hardware; the *ratio* is the reproducible claim.
"""

from benchmarks.conftest import run_once
from repro.eval import render_overhead, run_overhead_comparison


def test_overhead_personalization(pipeline, benchmark):
    result = run_once(benchmark, run_overhead_comparison, pipeline)
    print("\n[§V-C2] compute overhead: cloud general training vs device personalization")
    print(render_overhead(result))

    for method in ("tl_fe", "tl_ft"):
        ratio = result.ratio(method)
        # Cloud training must dominate by a wide margin.
        assert ratio > 20.0, f"cloud/device ratio too small for {method}: {ratio:.1f}"

    assert result.cloud.macs > 0
    assert all(r.macs > 0 for r in result.device_per_method.values())

    benchmark.extra_info["cloud_billion_cycles"] = result.cloud.estimated_billion_cycles
    benchmark.extra_info["ratios"] = {
        m: result.ratio(m) for m in result.device_per_method
    }
