"""Ablation: location-of-interest pruning in the time-based attack.

The paper prunes the candidate space to locations whose observed
confidence reaches 1%.  This ablation measures what pruning buys: query
count drops substantially while accuracy stays comparable (the pruned-out
locations are ones the model would score near zero anyway).
"""

from benchmarks.conftest import run_once
from repro.attacks import AdversaryClass, TimeBasedAttack
from repro.data import SpatialLevel
from repro.eval import run_attack_over_targets


def run_ablation(pipeline):
    targets = pipeline.attack_targets(SpatialLevel.BUILDING)
    n = pipeline.scale.attack_instances_per_user
    with_pruning = run_attack_over_targets(
        targets,
        lambda target: TimeBasedAttack(candidate_locations=target.pruned_locations),
        AdversaryClass.A1,
        n,
    )
    without_pruning = run_attack_over_targets(
        targets,
        lambda target: TimeBasedAttack(candidate_locations=None),
        AdversaryClass.A1,
        n,
    )
    return with_pruning, without_pruning


def test_ablation_pruning(pipeline, benchmark):
    with_pruning, without_pruning = run_once(benchmark, run_ablation, pipeline)
    acc_with = {k: 100.0 * with_pruning.accuracy(k) for k in (1, 3, 5)}
    acc_without = {k: 100.0 * without_pruning.accuracy(k) for k in (1, 3, 5)}
    print("\n[Ablation] confidence-threshold pruning (time-based, A1)")
    print(f"  with pruning:    acc={acc_with} queries={with_pruning.total_queries}")
    print(f"  without pruning: acc={acc_without} queries={without_pruning.total_queries}")

    # Pruning cuts the search space markedly...
    assert with_pruning.total_queries < 0.8 * without_pruning.total_queries
    # ...without destroying attack accuracy.
    assert acc_with[3] >= acc_without[3] - 15.0

    benchmark.extra_info["queries"] = {
        "with": with_pruning.total_queries,
        "without": without_pruning.total_queries,
    }
    benchmark.extra_info["accuracy"] = {"with": acc_with, "without": acc_without}
