"""Extension: Markov-chain baselines vs neural personalization.

The paper's related work (§II) notes that personalized mobility modeling
was "generally conducted via Markov models" before deep learning.  This
benchmark adds per-user Markov chains (order-2 with back-off, and a
time-aware variant) to the Table III comparison, grounding the LSTM
results against the classical approach.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.data import SpatialLevel
from repro.eval import format_table
from repro.models import MarkovChainModel, PersonalizationMethod, TimeAwareMarkovModel


def run_comparison(pipeline):
    level = SpatialLevel.BUILDING
    spec = pipeline.spec(level)
    rows = {}
    neural_top3, markov_top3, time_markov_top3 = [], [], []
    for uid in pipeline.attack_users():
        artifact = pipeline.personal(uid, level, PersonalizationMethod.TL_FE)
        predictor = artifact.predictor(spec)
        X, y = artifact.test.encode()
        neural_top3.append(predictor.top_k_accuracy(X, y, 3))
        markov = MarkovChainModel(spec.num_locations, order=2).fit(artifact.train)
        markov_top3.append(markov.top_k_accuracy(artifact.test, 3))
        time_markov = TimeAwareMarkovModel(spec.num_locations).fit(artifact.train)
        time_markov_top3.append(time_markov.top_k_accuracy(artifact.test, 3))
    rows["tl_fe (neural)"] = 100 * float(np.mean(neural_top3))
    rows["markov order-2"] = 100 * float(np.mean(markov_top3))
    rows["time-aware markov"] = 100 * float(np.mean(time_markov_top3))
    return rows


def test_baseline_markov(pipeline, benchmark):
    rows = run_once(benchmark, run_comparison, pipeline)
    print("\n[Extension] per-user baselines, building level, mean top-3 accuracy (%)")
    print(format_table(["model", "top-3"], [[k, v] for k, v in rows.items()]))

    # The classical baselines are competent but the TL-personalized LSTM
    # should at least match the plain order-2 chain.
    assert rows["tl_fe (neural)"] >= rows["markov order-2"] - 10.0
    # Time-awareness helps the Markov baseline on diurnal campus data.
    assert rows["time-aware markov"] >= rows["markov order-2"] - 5.0

    benchmark.extra_info["top3"] = rows
