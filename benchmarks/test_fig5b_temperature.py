"""Figure 5b: impact of varying the privacy parameter (temperature).

Paper shape: as the temperature decreases (1e-1 -> 1e-5) the leakage
reduction grows, then flattens once confidences are fully saturated.
"""

from benchmarks.conftest import run_once
from repro.eval import render_series, run_temperature_sweep


def test_fig5b_temperature_sweep(pipeline, benchmark):
    temperatures = (5e-1, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5)
    results = run_once(
        benchmark, run_temperature_sweep, pipeline, temperatures=temperatures
    )
    print("\n[Fig 5b] mean leakage reduction (%) vs privacy temperature (k=1..9)")
    for temperature, reduction in results.items():
        print(f"  T={temperature:g}: {reduction:.1f}%")

    assert set(results) == set(temperatures)
    # Saturated temperatures beat (or match) the mildest one, and the curve
    # flattens: the last two temperatures agree closely.
    assert results[1e-4] >= results[5e-1] - 5.0
    assert abs(results[1e-4] - results[1e-5]) <= 10.0
    assert all(0.0 <= v <= 100.0 for v in results.values())

    benchmark.extra_info["reduction_by_temperature"] = {
        str(t): v for t, v in results.items()
    }
