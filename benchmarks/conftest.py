"""Shared benchmark fixtures.

All benchmarks share one session-scoped :class:`Pipeline` at benchmark
scale, so models are trained once and reused across table/figure targets.
Each benchmark runs its experiment exactly once (``pedantic`` with one
round) — these are experiment-regeneration targets, not micro-benchmarks.
"""

from __future__ import annotations

import pytest

from repro.eval import ExperimentScale, Pipeline


def pytest_collection_modifyitems(config, items):
    """Run benchmarks in definition order (cheap shared-cache warmup first)."""
    items.sort(key=lambda item: item.fspath.basename)


@pytest.fixture(scope="session")
def pipeline() -> Pipeline:
    scale = ExperimentScale.small()
    return Pipeline(scale)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
