"""Shared benchmark fixtures.

All benchmarks share one session-scoped :class:`Pipeline` at benchmark
scale, so models are trained once and reused across table/figure targets.
Each benchmark runs its experiment exactly once (``pedantic`` with one
round) — these are experiment-regeneration targets, not micro-benchmarks.

Serving-layer benchmarks (cluster scaling, resilience overhead, parallel
cluster, service load) all need the same artifact: a trained Pelican at
the ``small`` scale with every personal user onboarded and a concurrent
request mix over the holdout windows.  :func:`trained_deployment` builds
it once per parameter tuple and caches it for the session, so the files
stop retraining identical deployments.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

import pytest

from repro.data.corpus import generate_corpus
from repro.data.features import SpatialLevel
from repro.eval import ExperimentScale, Pipeline
from repro.eval.fleet import training_configs
from repro.pelican import DeploymentMode, Pelican, PelicanConfig, QueryRequest

LEVEL = SpatialLevel.BUILDING


def pytest_collection_modifyitems(config, items):
    """Run benchmarks in definition order (cheap shared-cache warmup first)."""
    items.sort(key=lambda item: item.fspath.basename)


@pytest.fixture(scope="session")
def pipeline() -> Pipeline:
    scale = ExperimentScale.small()
    return Pipeline(scale)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def trained_deployment():
    """Factory for cached trained-and-onboarded serving deployments.

    ``build(queries_per_user=32, k=3, hidden_size=None,
    num_personal_users=None)`` returns ``(pelican, holdouts, requests)``:
    a ``small``-scale fast-setup Pelican with every personal user
    onboarded (alternating cloud/local), each user's holdout split, and
    the concurrent request mix benchmarks serve.  Identical parameter
    tuples share one training for the whole session.  The returned
    pelican is the cached instance — ``copy.deepcopy`` it before
    building fleets/clusters that serve traffic.
    """
    cache: Dict[Tuple, Tuple] = {}

    def build(queries_per_user=32, k=3, hidden_size=None, num_personal_users=None):
        key = (queries_per_user, k, hidden_size, num_personal_users)
        if key not in cache:
            scale = ExperimentScale.small()
            general, personalization = training_configs(scale, fast_setup=True)
            if hidden_size is not None:
                general = replace(general, hidden_size=hidden_size)
            corpus_config = scale.corpus
            if num_personal_users is not None:
                corpus_config = replace(
                    corpus_config, num_personal_users=num_personal_users
                )
            corpus = generate_corpus(corpus_config)
            pelican = Pelican(
                corpus.spec(LEVEL),
                PelicanConfig(
                    general=general,
                    personalization=personalization,
                    seed=corpus_config.seed,
                ),
            )
            train, _ = corpus.contributor_dataset(LEVEL).split_by_user(0.8)
            pelican.initial_training(train)
            holdouts = {}
            for i, uid in enumerate(corpus.personal_ids):
                user_train, holdout = corpus.user_dataset(uid, LEVEL).split(0.8)
                mode = DeploymentMode.CLOUD if i % 2 else DeploymentMode.LOCAL
                pelican.onboard_user(uid, user_train, deployment=mode)
                holdouts[uid] = holdout
            requests = [
                QueryRequest(
                    user_id=uid,
                    history=tuple(holdout.windows[j % len(holdout.windows)].history),
                    k=k,
                )
                for j in range(queries_per_user)
                for uid, holdout in holdouts.items()
            ]
            cache[key] = (pelican, holdouts, requests)
        pelican, holdouts, requests = cache[key]
        return pelican, holdouts, list(requests)

    return build
