"""Figure 3b: impact of degree of mobility on privacy leakage.

Paper shape: the degree of mobility has only a *weak* effect on attack
accuracy (correlation coefficients 0.337 building / 0.107 AP) — leakage is
largely independent of how mobile the user is.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.eval import render_scatter, run_mobility_degree_study


def test_fig3b_mobility_degree(pipeline, benchmark):
    studies = run_once(benchmark, run_mobility_degree_study, pipeline)
    print("\n[Fig 3b] degree of mobility vs attack accuracy")
    print(render_scatter(studies))

    assert set(studies) == {"building", "ap"}
    correlations = {}
    for level, study in studies.items():
        assert len(study.points) == len(pipeline.attack_users())
        corr = study.correlation()
        correlations[level] = corr.coefficient
        # Weak relationship: nowhere near a deterministic dependence.
        if np.isfinite(corr.coefficient):
            assert abs(corr.coefficient) <= 0.95

    benchmark.extra_info["correlations"] = correlations
