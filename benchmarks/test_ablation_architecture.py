"""Ablation: recurrent architecture for the general model (LSTM/GRU/RNN).

Paper §II: "Early approaches were based on RNNs while the state-of-the-art
approaches use LSTMs."  This ablation trains the same general model with
each cell type on the same contributor data and compares top-k accuracy.
With the short (length-2) windows of the paper's task, gated and vanilla
cells land close together — the gap the paper's citations report grows
with sequence length.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.data import SpatialLevel
from repro.eval import format_table
from repro.models import NextLocationModel
from repro.nn import GRUCell, Linear, Module, RNNCell, RecurrentStack, fit
from repro.nn.functional import top_k_indices
from repro.nn.tensor import Tensor, no_grad


class RecurrentNextLocation(Module):
    """General model with a swappable recurrent cell."""

    def __init__(self, width, num_locations, hidden, cell_type, rng):
        super().__init__()
        self.rnn = RecurrentStack(width, hidden, 2, rng, cell_type=cell_type, dropout=0.1)
        self.head = Linear(hidden, num_locations, rng)

    def forward(self, x):
        h = self.rnn(x)
        return self.head(h[:, h.shape[1] - 1, :])


def _top3(model, X, y):
    model.eval()
    with no_grad():
        logits = model(Tensor(X)).numpy()
    top = top_k_indices(logits, 3, axis=-1)
    return 100 * float((top == y[:, None]).any(axis=1).mean())


def run_ablation(pipeline):
    level = SpatialLevel.BUILDING
    spec = pipeline.spec(level)
    _, train, test = pipeline.general(level)
    X, y = train.encode()
    Xte, yte = test.encode()
    config = pipeline.scale.general
    results = {}

    # The cached LSTM general model is the reference point.
    lstm_model, _, _ = pipeline.general(level)
    with no_grad():
        lstm_logits = lstm_model(Tensor(Xte)).numpy()
    top = top_k_indices(lstm_logits, 3, axis=-1)
    results["lstm"] = 100 * float((top == yte[:, None]).any(axis=1).mean())

    for name, cell in (("gru", GRUCell), ("rnn", RNNCell)):
        rng = np.random.default_rng(0)
        model = RecurrentNextLocation(spec.width, spec.num_locations, config.hidden_size, cell, rng)
        fit(
            model, X, y,
            epochs=config.epochs, batch_size=config.batch_size,
            lr=config.learning_rate, weight_decay=config.weight_decay,
            rng=rng, patience=config.patience,
        )
        results[name] = _top3(model, Xte, yte)
    return results


def test_ablation_architecture(pipeline, benchmark):
    results = run_once(benchmark, run_ablation, pipeline)
    print("\n[Ablation] recurrent cell for the general model (test top-3 %)")
    print(format_table(["cell", "top-3"], [[k, v] for k, v in results.items()]))

    assert set(results) == {"lstm", "gru", "rnn"}
    # All architectures learn something real.
    chance = 100 * 3 / pipeline.spec(SpatialLevel.BUILDING).num_locations
    for name, acc in results.items():
        assert acc > 2 * chance, f"{name} failed to learn"
    # Gated cells should not lose badly to the vanilla RNN.
    assert max(results["lstm"], results["gru"]) >= results["rnn"] - 10.0

    benchmark.extra_info["top3"] = results
