"""Micro-benchmarks for the LSTM compute backend (fused vs. reference).

Pins the perf trajectory of the ``repro.nn`` hot paths:

* ``train_step`` — one full optimizer step (zero_grad, forward, fused
  softmax/cross-entropy loss, backward, grad clip, Adam) at the paper's
  predictor shape: batch 32, window 2, hidden 128, 2 layers.
* ``inference_query`` — a batched black-box confidence query, the unit of
  work of the enumeration attacks.

Each benchmark runs on the fused backend (default), the reference cell
graph, and — for the train step — the fused backend under the float32
dtype policy, which is the fully optimized configuration.  Speedups vs.
the committed baseline are summarized by ``benchmarks/run_benchmarks.py``.

Unlike the experiment-regeneration benchmarks these need no shared
pipeline and take milliseconds per round.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    LSTM,
    Adam,
    CrossEntropyLoss,
    Linear,
    Tensor,
    clip_grad_norm,
    dtype_policy,
    no_grad,
)

BATCH, SEQ, HIDDEN, LAYERS, WIDTH, CLASSES = 32, 2, 128, 2, 64, 40
QUERY_BATCH = 256


def _make_train_step(backend):
    rng = np.random.default_rng(0)
    lstm = LSTM(WIDTH, HIDDEN, LAYERS, rng, dropout=0.0, backend=backend)
    head = Linear(HIDDEN, CLASSES, rng)
    x = rng.normal(size=(BATCH, SEQ, WIDTH))
    y = rng.integers(0, CLASSES, size=BATCH)
    optimizer = Adam(lstm.parameters() + head.parameters(), lr=1e-3)
    loss_fn = CrossEntropyLoss()

    def step():
        optimizer.zero_grad()
        hidden = lstm(Tensor(x))
        loss = loss_fn(head(hidden[:, hidden.shape[1] - 1, :]), y)
        loss.backward()
        clip_grad_norm(optimizer.params, 5.0)
        optimizer.step()
        return loss.item()

    return step


@pytest.mark.parametrize("backend", ["fused", "reference"])
def test_train_step(benchmark, backend):
    step = _make_train_step(backend)
    loss = benchmark(step)
    assert np.isfinite(loss)


def test_train_step_fused_float32(benchmark):
    with dtype_policy("float32"):
        step = _make_train_step("fused")
        loss = benchmark(step)
    assert np.isfinite(loss)


@pytest.mark.parametrize("backend", ["fused", "reference"])
def test_inference_query(benchmark, backend):
    rng = np.random.default_rng(1)
    lstm = LSTM(WIDTH, HIDDEN, LAYERS, rng, dropout=0.0, backend=backend)
    head = Linear(HIDDEN, CLASSES, rng)
    lstm.eval()
    batch = rng.normal(size=(QUERY_BATCH, SEQ, WIDTH))

    if backend == "fused":

        def query():
            last = lstm.forward_np(batch)[:, -1, :]
            logits = last @ head.weight.data + head.bias.data
            shifted = logits - logits.max(axis=-1, keepdims=True)
            np.exp(shifted, out=shifted)
            shifted /= shifted.sum(axis=-1, keepdims=True)
            return shifted

    else:

        def query():
            with no_grad():
                hidden = lstm(Tensor(batch))
                logits = head(hidden[:, hidden.shape[1] - 1, :]).numpy()
            shifted = logits - logits.max(axis=-1, keepdims=True)
            np.exp(shifted, out=shifted)
            shifted /= shifted.sum(axis=-1, keepdims=True)
            return shifted

    probs = benchmark(query)
    np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-6)
