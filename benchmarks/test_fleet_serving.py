"""Fleet serving benchmark: batched multi-user queries vs. the seed loop.

Stands up a full Pelican fleet at the ``small`` scale (40-building
corpus, 6 personal users on mixed local/cloud deployment) and serves an
identical concurrent workload — 32 queries per user, interleaved across
users — two ways:

* ``looped``  — the seed path: one endpoint query per request;
* ``batched`` — the fleet path (DESIGN.md §7): requests grouped per
  model, each group answered by one graph-free fused inference dispatch.

``test_fleet_batched_speedup_and_parity`` pins the acceptance bar: the
batched path must be ≥ 3x faster *and* return identical predictions.

Setup uses ``fast_setup`` (two training epochs): model dimensions — and
therefore serving cost — still match the ``small`` scale, while setup
takes seconds.  Serving throughput is independent of how converged the
weights are.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.eval import ExperimentScale, build_fleet_workload, responses_match

QUERIES_PER_USER = 32
REGISTRY_CAPACITY = 64
# The acceptance bar on quiet hardware.  Shared CI runners have enough
# scheduling jitter to flip a wall-clock ratio, so under CI the bar is
# relaxed to a sanity check — parity stays a hard gate everywhere.
MIN_SPEEDUP = 1.5 if os.environ.get("CI") else 3.0


@pytest.fixture(scope="module")
def fleet_workload():
    return build_fleet_workload(
        ExperimentScale.small(),
        queries_per_user=QUERIES_PER_USER,
        registry_capacity=REGISTRY_CAPACITY,
        fast_setup=True,
    )


def test_fleet_query_looped(benchmark, fleet_workload):
    """Seed serving path: one query, one dispatch."""
    workload = fleet_workload
    benchmark(workload.fleet.serve_looped, workload.requests)


def test_fleet_query_batched(benchmark, fleet_workload):
    """Fleet serving path: one fused dispatch per model group."""
    workload = fleet_workload
    benchmark(workload.fleet.serve, workload.requests)


def test_fleet_batched_speedup_and_parity(fleet_workload):
    """Acceptance: batched ≥ 3x faster than the loop (relaxed under CI),
    identical outputs."""
    fleet, requests = fleet_workload.fleet, fleet_workload.requests

    def best_of(fn, rounds=5):
        best, result = float("inf"), None
        for _ in range(rounds):
            start = time.perf_counter()
            result = fn(requests)
            best = min(best, time.perf_counter() - start)
        return best, result

    looped_seconds, looped = best_of(fleet.serve_looped)
    batched_seconds, batched = best_of(fleet.serve)
    assert responses_match(batched, looped), "batched serving diverged from the loop"
    speedup = looped_seconds / batched_seconds
    assert speedup >= MIN_SPEEDUP, (
        f"batched serving only {speedup:.2f}x faster than the per-user loop "
        f"({batched_seconds * 1e3:.2f}ms vs {looped_seconds * 1e3:.2f}ms)"
    )
