"""Tiered blob storage benchmarks (DESIGN.md §14).

Two claims back the storage tier:

* **Residency** — a registry over :class:`DiskBlobStore` keeps O(index)
  bytes resident instead of O(total blobs), so 100k+ registered models
  fit where an in-memory store would need gigabytes.  Gated hard at
  every scale: the in-memory store's resident bytes must be ≥ 10x the
  disk store's (in practice the ratio is ~50x at the benchmarked blob
  size).  The 1M-user point is env-gated (``STORAGE_BENCH_1M=1``) — it
  writes ~6 GB of segment data.
* **Cold-load latency** — rebuilding a personal model from a compact
  format-2 checkpoint skips the zip/npz machinery, so registry cold
  loads get faster.  Parity is gated first (both formats rebuild the
  bit-identical state dict); the ≥ 1.5x speedup is a hard gate on quiet
  hardware and record-only under CI (shared runners jitter too much for
  a latency ratio to gate on).

Blobs are one serialized personal model copied under every user id:
store mechanics depend only on blob size and count, and personalizing
100k real models would take hours for no additional signal.  The scale
population uses a deliberately tiny model (~6 KB compact) to bound the
benchmark's disk traffic; the cold-load comparison uses a
representative serving-sized model.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.data.features import FeatureSpec
from repro.models import NextLocationModel
from repro.nn.serialization import encode_compact
from repro.pelican.deployment import rebuild_personal_model, serialize_personal_model
from repro.pelican.storage import (
    INDEX_ENTRY_BYTES,
    DiskBlobStore,
    MemoryBlobStore,
    TieredBlobStore,
)

MIN_RESIDENCY_RATIO = 10.0
#: Latency gates are record-only on shared CI runners.
MIN_CODEC_SPEEDUP = None if os.environ.get("CI") else 1.5

SCALES = [10_000, 100_000]
if os.environ.get("STORAGE_BENCH_1M"):
    SCALES.append(1_000_000)


def _model_blob(num_locations: int, hidden_size: int) -> bytes:
    spec = FeatureSpec(num_locations=num_locations)
    model = NextLocationModel(
        input_width=spec.width,
        num_locations=spec.num_locations,
        hidden_size=hidden_size,
        num_layers=1,
        dropout=0.0,
        rng=np.random.default_rng(0),
    )
    model.set_privacy_temperature(1e-3)
    model.eval()
    return serialize_personal_model(model)


@pytest.fixture(scope="module")
def tiny_blob() -> bytes:
    """~6 KB compact checkpoint: bounds the 100k-scale disk traffic."""
    return encode_compact(_model_blob(num_locations=4, hidden_size=2))


@pytest.fixture(scope="module")
def serving_blobs():
    """(npz, compact) for a representative serving-sized model."""
    npz = _model_blob(num_locations=8, hidden_size=8)
    return npz, encode_compact(npz)


@pytest.fixture(scope="module")
def populated_disk(tiny_blob):
    """A disk store holding 10k checkpoints, shared by the read benches."""
    store = DiskBlobStore()
    for uid in range(10_000):
        store[uid] = tiny_blob
    yield store
    store.close()


# ----------------------------------------------------------------------
# Residency gates
# ----------------------------------------------------------------------
@pytest.mark.parametrize("num_users", SCALES)
def test_disk_residency_ratio(tiny_blob, num_users):
    """Disk-tier resident memory is ≥ 10x below in-memory at every scale."""
    memory = MemoryBlobStore()
    disk = DiskBlobStore()
    try:
        for uid in range(num_users):
            memory[uid] = tiny_blob
            disk[uid] = tiny_blob
        assert len(disk) == num_users
        assert disk.total_bytes == memory.total_bytes == num_users * len(tiny_blob)
        assert disk.resident_bytes() == num_users * INDEX_ENTRY_BYTES
        ratio = memory.resident_bytes() / disk.resident_bytes()
        assert ratio >= MIN_RESIDENCY_RATIO, (
            f"disk residency only {ratio:.1f}x below in-memory at "
            f"{num_users} users"
        )
        # Reads still come back byte-exact through the mmap path.
        assert disk[num_users // 2] == tiny_blob
    finally:
        disk.close()


def test_tiered_residency_bounded(tiny_blob):
    """The hot tier never exceeds its budget; residency is hot + index."""
    hot_budget = 64 * len(tiny_blob)
    store = TieredBlobStore(hot_bytes=hot_budget)
    try:
        for uid in range(10_000):
            store[uid] = tiny_blob
        assert len(store) == 10_000
        assert store.resident_bytes() <= hot_budget + store._disk.resident_bytes()
        assert store.resident_bytes() < store.total_bytes / MIN_RESIDENCY_RATIO
    finally:
        store.close()


# ----------------------------------------------------------------------
# Cold-load codec comparison
# ----------------------------------------------------------------------
def test_compact_cold_load_speedup_and_parity(serving_blobs):
    """Format-2 cold loads rebuild the identical model ≥ 1.5x faster
    than the npz path (record-only under CI)."""
    npz, compact = serving_blobs
    from_npz = rebuild_personal_model(npz, np.random.default_rng(1))
    from_compact = rebuild_personal_model(compact, np.random.default_rng(1))
    for (name_a, tensor_a), (name_b, tensor_b) in zip(
        sorted(from_npz.state_dict().items()),
        sorted(from_compact.state_dict().items()),
    ):
        assert name_a == name_b
        assert np.array_equal(tensor_a, tensor_b)

    def best_of(blob, rounds=20):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            rebuild_personal_model(blob, np.random.default_rng(1))
            best = min(best, time.perf_counter() - start)
        return best

    npz_seconds = best_of(npz)
    compact_seconds = best_of(compact)
    speedup = npz_seconds / compact_seconds
    if MIN_CODEC_SPEEDUP is not None:
        assert speedup >= MIN_CODEC_SPEEDUP, (
            f"compact cold load only {speedup:.2f}x faster than npz "
            f"({compact_seconds * 1e6:.0f}us vs {npz_seconds * 1e6:.0f}us)"
        )


# ----------------------------------------------------------------------
# Micro-benchmarks (pytest-benchmark: tracked against the baseline)
# ----------------------------------------------------------------------
def test_cold_load_npz(benchmark, serving_blobs):
    npz, _ = serving_blobs
    benchmark(lambda: rebuild_personal_model(npz, np.random.default_rng(1)))


def test_cold_load_compact(benchmark, serving_blobs):
    _, compact = serving_blobs
    benchmark(lambda: rebuild_personal_model(compact, np.random.default_rng(1)))


def test_disk_store_read_10k(benchmark, populated_disk, tiny_blob):
    """Zero-copy mmap reads across a populated store (strided so every
    round touches many segments, not one hot page)."""
    uids = list(range(0, 10_000, 97))

    def read_sweep():
        for uid in uids:
            assert len(populated_disk.view(uid)) == len(tiny_blob)

    benchmark(read_sweep)


def test_disk_store_populate_1k(benchmark, tiny_blob):
    """Append-path write throughput, fresh store per round."""

    def populate():
        store = DiskBlobStore()
        try:
            for uid in range(1_000):
                store[uid] = tiny_blob
        finally:
            store.close()

    benchmark.pedantic(populate, rounds=3, iterations=1)
