"""Alternative recurrent cells: vanilla RNN and GRU.

The paper's §II motivates the LSTM choice historically: "Early approaches
were based on RNNs while the state-of-the-art approaches use LSTMs" for
their ability to keep long-term dependencies.  These cells (plus
:class:`RecurrentStack`, a drop-in multi-layer runner) let the
architecture-ablation benchmark quantify that choice on the
next-location task.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Type

import numpy as np

from repro.nn import init as initializers
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, as_tensor, stack


class RNNCell(Module):
    """Elman RNN step: ``h' = tanh(x W_ih + h W_hh + b)``."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            initializers.uniform_lstm(rng, (input_size, hidden_size), hidden_size)
        )
        self.weight_hh = Parameter(
            initializers.uniform_lstm(rng, (hidden_size, hidden_size), hidden_size)
        )
        self.bias = Parameter(initializers.zeros((hidden_size,)))

    def forward(self, x: Tensor, state: Tensor) -> Tuple[Tensor, Tensor]:
        h_next = (as_tensor(x) @ self.weight_ih + state @ self.weight_hh + self.bias).tanh()
        return h_next, h_next

    def initial_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size)))


class GRUCell(Module):
    """Gated recurrent unit (Cho et al., 2014).

    Gate layout in the stacked matrices: ``[reset | update | candidate]``.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            initializers.uniform_lstm(rng, (input_size, 3 * hidden_size), hidden_size)
        )
        self.weight_hh = Parameter(
            initializers.uniform_lstm(rng, (hidden_size, 3 * hidden_size), hidden_size)
        )
        self.bias = Parameter(initializers.zeros((3 * hidden_size,)))

    def forward(self, x: Tensor, state: Tensor) -> Tuple[Tensor, Tensor]:
        H = self.hidden_size
        x = as_tensor(x)
        gates_x = x @ self.weight_ih + self.bias
        gates_h = state @ self.weight_hh
        reset = (gates_x[:, 0:H] + gates_h[:, 0:H]).sigmoid()
        update = (gates_x[:, H : 2 * H] + gates_h[:, H : 2 * H]).sigmoid()
        candidate = (gates_x[:, 2 * H : 3 * H] + reset * gates_h[:, 2 * H : 3 * H]).tanh()
        h_next = update * state + (1.0 - update) * candidate
        return h_next, h_next

    def initial_state(self, batch_size: int) -> Tensor:
        return Tensor(np.zeros((batch_size, self.hidden_size)))


class RecurrentStack(Module):
    """Multi-layer batch-first runner over simple (h-state) cells.

    Mirrors :class:`repro.nn.lstm.LSTM` for RNN/GRU cells: input
    ``(batch, seq, features)``, output ``(batch, seq, hidden)`` with
    inter-layer dropout in training mode.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int,
        rng: np.random.Generator,
        cell_type: Type[Module] = GRUCell,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.dropout_p = dropout
        self._rng = rng
        self.cells: List[Module] = [
            cell_type(input_size if layer == 0 else hidden_size, hidden_size, rng)
            for layer in range(num_layers)
        ]

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        if x.ndim != 3:
            raise ValueError(f"expected (batch, seq, features); got shape {x.shape}")
        batch, seq_len, _ = x.shape
        layer_input = [x[:, t, :] for t in range(seq_len)]
        for layer_idx, cell in enumerate(self.cells):
            state = cell.initial_state(batch)
            outputs = []
            for step_x in layer_input:
                h, state = cell(step_x, state)
                outputs.append(h)
            if layer_idx < self.num_layers - 1 and self.dropout_p > 0 and self.training:
                keep = 1.0 - self.dropout_p
                outputs = [
                    h * Tensor((self._rng.random(h.shape) < keep) / keep) for h in outputs
                ]
            layer_input = outputs
        return stack(layer_input, axis=1)
