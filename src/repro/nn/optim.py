"""Gradient-descent optimizers: SGD with momentum and Adam.

Both support decoupled L2 weight decay.  The paper trains the general model
with Adam-style settings ("learning rate of 1e-4 with a weight decay of
1e-6"); personalization uses the same machinery on far fewer parameters.

Optimizers skip parameters whose ``requires_grad`` is ``False``, which is
how layer freezing during transfer learning takes effect.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer; holds the parameter list and the shared step logic."""

    def __init__(self, params: Iterable[Parameter], lr: float, weight_decay: float = 0.0) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        for param in self.params:
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            self._update(param, grad)

    def _update(self, param: Parameter, grad: np.ndarray) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def _update(self, param: Parameter, grad: np.ndarray) -> None:
        if self.momentum:
            vel = self._velocity.get(id(param))
            vel = grad.copy() if vel is None else self.momentum * vel + grad
            self._velocity[id(param)] = vel
            grad = vel
        param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t: Dict[int, int] = {}
        self._scratch: Dict[int, np.ndarray] = {}

    def _update(self, param: Parameter, grad: np.ndarray) -> None:
        key = id(param)
        m = self._m.get(key)
        v = self._v.get(key)
        scratch = self._scratch.get(key)
        if m is None:
            m = self._m[key] = np.zeros_like(param.data)
            v = self._v[key] = np.zeros_like(param.data)
            scratch = self._scratch[key] = np.empty_like(param.data)
        t = self._t.get(key, 0) + 1
        self._t[key] = t
        # In-place moment updates: the optimizer runs once per mini-batch
        # over every parameter, so avoiding fresh MB-sized temporaries on
        # each step matters as much here as in the LSTM kernels.
        m *= self.beta1
        np.multiply(grad, 1 - self.beta1, out=scratch)
        m += scratch
        v *= self.beta2
        np.multiply(grad, grad, out=scratch)
        scratch *= 1 - self.beta2
        v += scratch
        # update = lr * m_hat / (sqrt(v_hat) + eps), computed in scratch.
        np.divide(v, 1 - self.beta2**t, out=scratch)
        np.sqrt(scratch, out=scratch)
        scratch += self.eps
        np.divide(m, scratch, out=scratch)
        scratch *= self.lr / (1 - self.beta1**t)
        param.data -= scratch


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Clip global gradient norm in place; returns the pre-clip norm."""
    params = [p for p in params if p.grad is not None]
    total = float(
        np.sqrt(sum(float(np.dot(g, g)) for p in params for g in (p.grad.ravel(),)))
    )
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
