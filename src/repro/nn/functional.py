"""Functional operations shared across layers, losses, and attacks.

Includes the temperature-scaled softmax from Equation (1) of the paper,
which is used twice in the reproduction:

* by the *gradient-descent inversion attack* to soften candidate inputs
  toward one-hot encodings during reconstruction (§III-B2), and
* by the *Pelican privacy layer* to sharpen output confidences at inference
  time (§V-B).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.tensor import Tensor, as_tensor, get_default_dtype


def softmax_cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Fused ``softmax + cross-entropy``: one autograd node (DESIGN.md §3).

    Computes the mean cross-entropy between ``(batch, classes)`` logits and
    integer class targets with the stable log-sum-exp trick, and registers
    a single node whose backward is the closed form
    ``(softmax(logits) - one_hot(targets)) / batch`` — replacing the ~6
    graph nodes the unfused ``log_softmax`` + gather + mean chain builds on
    every training step.
    """
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (batch, classes); got {logits.shape}")
    if targets.shape != (logits.shape[0],):
        raise ValueError(
            f"targets shape {targets.shape} incompatible with batch {logits.shape[0]}"
        )
    z = logits.data
    batch = z.shape[0]
    shifted = z - z.max(axis=-1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    picked = log_probs[np.arange(batch), targets]
    loss = np.asarray(-picked.mean(), dtype=z.dtype)

    def backward(grad: np.ndarray):
        g = np.exp(log_probs)
        g[np.arange(batch), targets] -= 1.0
        g *= grad / batch
        return (g,)

    return Tensor._make(loss, (logits,), backward)


def softmax(x: Tensor, axis: int = -1, temperature: float = 1.0) -> Tensor:
    """Temperature-scaled softmax: ``p_i = exp(z_i/T) / sum_j exp(z_j/T)``.

    Implemented with the max-subtraction trick for numerical stability.
    ``temperature`` must be positive; values below 1 sharpen the
    distribution, values above 1 flatten it.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    x = as_tensor(x)
    scaled = x * (1.0 / temperature)
    shifted = scaled - scaled.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1, temperature: float = 1.0) -> Tensor:
    """Numerically stable ``log(softmax(x/T))``."""
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    x = as_tensor(x)
    scaled = x * (1.0 / temperature)
    shifted = scaled - scaled.max(axis=axis, keepdims=True).detach()
    logsumexp = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - logsumexp


def softmax_np(logits: np.ndarray, axis: int = -1, temperature: float = 1.0) -> np.ndarray:
    """Pure-numpy temperature softmax for inference-only paths."""
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    arr = np.asarray(logits)
    if arr.dtype.kind != "f":
        arr = arr.astype(get_default_dtype())
    scaled = arr / temperature
    shifted = scaled - scaled.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer indices as one-hot rows.

    Parameters
    ----------
    indices:
        Integer array of any shape.
    num_classes:
        Size of the final one-hot axis; every index must satisfy
        ``0 <= index < num_classes``.
    """
    indices = np.asarray(indices)
    if indices.size and (indices.min() < 0 or indices.max() >= num_classes):
        raise ValueError(
            f"indices out of range [0, {num_classes}): "
            f"min={indices.min()}, max={indices.max()}"
        )
    out = np.zeros(indices.shape + (num_classes,), dtype=get_default_dtype())
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def top_k_indices(scores: np.ndarray, k: int, axis: int = -1) -> np.ndarray:
    """Indices of the ``k`` largest entries, sorted descending by score."""
    scores = np.asarray(scores)
    k = min(k, scores.shape[axis])
    part = np.argpartition(-scores, k - 1, axis=axis)
    top = np.take(part, range(k), axis=axis)
    top_scores = np.take_along_axis(scores, top, axis=axis)
    order = np.argsort(-top_scores, axis=axis, kind="stable")
    return np.take_along_axis(top, order, axis=axis)
