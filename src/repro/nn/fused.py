"""Fused LSTM execution path: batched forward, hand-written BPTT (DESIGN.md §3).

The reference :class:`~repro.nn.lstm.LSTMCell` builds ~15 tiny autograd
nodes per cell step in a per-timestep, per-layer Python loop.  That is
exact but slow: every training step, inversion-attack iteration, and
batched black-box query pays Python dispatch and graph bookkeeping on the
hot path.

This module replaces the interpreted graph with a *single* autograd node
per LSTM call:

* :func:`lstm_forward` processes a whole ``(batch, seq, features)`` block
  layer by layer.  The input projection ``x @ W_ih`` is hoisted out of the
  time loop and computed for all timesteps in one GEMM; the recurrence
  keeps one small GEMM per step.  Gate activations and cell states are
  cached for the backward pass, and inter-layer dropout masks are drawn
  inside the kernel (same generator consumption order as the reference
  path, so seeded runs agree across backends).
* :func:`lstm_backward` is a hand-written backpropagation-through-time
  that returns gradients for the weights, the initial state, **and the
  input sequence** — the gradient-descent inversion attack (paper §III-B)
  differentiates with respect to model inputs, so input gradients are not
  optional.
* :func:`lstm_infer` / :func:`lstm_infer_last` are graph-free inference
  kernels for black-box attack queries and evaluation: no caches, no
  autograd node, just numpy.

Internally everything runs **time-major** (``(seq, batch, ·)``): per-step
slices are then contiguous, which keeps every ufunc and GEMM on its fast
path.  The batch-major ``(batch, seq, ·)`` interface layout is converted
exactly once per call at the kernel boundary.

Unlike the reference graph — whose matmul nodes always materialize
gradients for *both* operands — the fused backward computes only gradients
somebody can receive: it skips ``dW`` for frozen layers, ``dx`` when the
input does not require gradients, ``dh0/dc0`` for implicit zero states,
and stops BPTT entirely below the lowest layer with a consumer.  The
``h_prev @ W_hh`` GEMM is likewise skipped at ``t == 0`` when the initial
state is an implicit zero.

Every GEMM actually performed is reported to :mod:`repro.nn.profiler` via
:func:`~repro.nn.profiler.record_gemm`, so the §V-C2 overhead accounting
reflects executed work.  On a workload where nothing is skippable (inputs,
states, and all weights require gradients) the fused and reference paths
report *identical* MAC totals — asserted by ``tests/nn/test_fused_lstm.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import profiler
from repro.nn.tensor import Tensor, as_tensor, is_grad_enabled

# One layer's parameters: (weight_ih, weight_hh, bias) with shapes
# (in, 4H), (H, 4H), (4H,) in PyTorch gate order [input|forget|cell|output].
LayerParams = Tuple[Tensor, Tensor, Tensor]


@dataclass
class LayerCache:
    """Forward activations one layer saves for its backward pass.

    All sequence arrays are time-major: ``(T, B, ·)``.
    """

    inputs: np.ndarray  # (T, B, F) layer input (post-dropout of layer below)
    gates: np.ndarray  # (T, B, 4H) post-activation gates [i|f|g|o]
    c: np.ndarray  # (T, B, H) cell states
    tc: np.ndarray  # (T, B, H) tanh of cell states
    h: np.ndarray  # (T, B, H) hidden states
    h0: np.ndarray  # (B, H) initial hidden state
    c0: np.ndarray  # (B, H) initial cell state
    state_zero: bool  # initial state is an implicit all-zeros default
    mask: Optional[np.ndarray] = None  # (T, B, H) dropout mask on this layer's output


def _layer_forward(
    X: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    bias: np.ndarray,
    h0: np.ndarray,
    c0: np.ndarray,
    state_zero: bool,
    want_cache: bool,
) -> Tuple[np.ndarray, Optional[LayerCache]]:
    """Run one LSTM layer over a time-major ``(T, B, F)`` sequence.

    The input projection for *all* timesteps is one GEMM; only the
    recurrent projection remains inside the time loop (and is skipped at
    ``t == 0`` for the implicit zero initial state, where it contributes
    nothing).  Elementwise work writes straight into the caches via
    ``out=`` to keep the numpy call count — the dominant cost at these
    batch sizes — low.
    """
    T, B, F = X.shape
    H = w_hh.shape[0]
    xw = X.reshape(T * B, F) @ w_ih
    profiler.record_gemm(T * B, F, 4 * H)
    xw += bias
    xw = xw.reshape(T, B, 4 * H)

    hs = np.empty((T, B, H), dtype=X.dtype)
    # Without a cache the per-step activations are only read within their
    # own step, so (B, ·) scratch replaces the (T, B, ·) arrays.
    gates = np.empty((T, B, 4 * H), dtype=X.dtype) if want_cache else None
    cs = np.empty((T, B, H), dtype=X.dtype) if want_cache else None
    tcs = np.empty((T, B, H), dtype=X.dtype) if want_cache else None
    gbuf = np.empty((B, 4 * H), dtype=X.dtype)
    gtbuf = np.empty((B, 4 * H), dtype=X.dtype) if not want_cache else None
    cbuf = np.empty((B, H), dtype=X.dtype) if not want_cache else None
    tcbuf = np.empty((B, H), dtype=X.dtype) if not want_cache else None
    h_prev, c_prev = h0, c0
    for t in range(T):
        if t == 0 and state_zero:
            g = xw[0]
        else:
            g = np.matmul(h_prev, w_hh, out=gbuf)
            profiler.record_gemm(B, H, 4 * H)
            g += xw[t]
        # Sigmoid over the full 4H block in-place, then overwrite the cell
        # block with its tanh: 5 ufunc calls instead of per-gate chains.
        gt = gates[t] if want_cache else gtbuf
        np.negative(g, out=gt)
        np.exp(gt, out=gt)
        gt += 1.0
        np.reciprocal(gt, out=gt)
        np.tanh(g[:, 2 * H : 3 * H], out=gt[:, 2 * H : 3 * H])

        ct = cs[t] if want_cache else cbuf
        if t == 0 and state_zero:
            np.multiply(gt[:, 0 * H : 1 * H], gt[:, 2 * H : 3 * H], out=ct)
        else:
            np.multiply(gt[:, 1 * H : 2 * H], c_prev, out=ct)
            ct += gt[:, 0 * H : 1 * H] * gt[:, 2 * H : 3 * H]
        tct = tcs[t] if want_cache else tcbuf
        np.tanh(ct, out=tct)
        np.multiply(gt[:, 3 * H : 4 * H], tct, out=hs[t])
        h_prev, c_prev = hs[t], ct
    if not want_cache:
        return hs, None
    return hs, LayerCache(
        inputs=X, gates=gates, c=cs, tc=tcs, h=hs, h0=h0, c0=c0, state_zero=state_zero
    )


def _layer_backward(
    dH: np.ndarray,
    cache: LayerCache,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    need_dx: bool,
    need_dw: bool,
    need_dstate: bool,
) -> Tuple[
    Optional[np.ndarray],
    Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    Optional[Tuple[np.ndarray, np.ndarray]],
]:
    """BPTT through one layer (time-major).

    Returns ``(dX, (dW_ih, dW_hh, db), (dh0, dc0))``.  The only work
    inside the time loop is what is inherently sequential (the running
    ``dh``/``dc`` and the recurrent GEMM); every gate-local derivative
    factor is precomputed vectorized over all timesteps.  Gradients nobody
    can receive (``need_*`` false) are skipped, GEMMs included.
    """
    T, B, H = dH.shape
    gates = cache.gates
    i_g = gates[..., 0 * H : 1 * H]
    f_g = gates[..., 1 * H : 2 * H]
    g_g = gates[..., 2 * H : 3 * H]
    o_g = gates[..., 3 * H : 4 * H]
    tcs = cache.tc
    c_prev_seq = np.concatenate([cache.c0[None], cache.c[:-1]], axis=0)

    # Per-gate pre-activation derivative factors, vectorized over (T, B, H):
    #   dG_o = dh * P_o,  dc += dh * P_c,  dG_i = dc * P_i,
    #   dG_f = dc * P_f,  dG_g = dc * P_g,  dc_prev = dc * f.
    P_o = np.subtract(1.0, o_g)
    P_o *= o_g
    P_c = np.multiply(tcs, tcs)
    np.subtract(1.0, P_c, out=P_c)
    P_c *= o_g
    P_o *= tcs
    P_i = np.subtract(1.0, i_g)
    P_i *= i_g
    P_i *= g_g
    P_f = np.subtract(1.0, f_g)
    P_f *= f_g
    P_f *= c_prev_seq
    P_g = np.multiply(g_g, g_g)
    np.subtract(1.0, P_g, out=P_g)
    P_g *= i_g

    dG = np.empty((T, B, 4 * H), dtype=dH.dtype)
    dh_next: Optional[np.ndarray] = None
    dc_next: Optional[np.ndarray] = None
    dh0 = dc0 = None
    for t in range(T - 1, -1, -1):
        dGt = dG[t]
        dh = dH[t] if dh_next is None else dH[t] + dh_next
        dc = dh * P_c[t]
        if dc_next is not None:
            dc += dc_next
        np.multiply(dc, P_i[t], out=dGt[:, 0 * H : 1 * H])
        np.multiply(dc, P_f[t], out=dGt[:, 1 * H : 2 * H])
        np.multiply(dc, P_g[t], out=dGt[:, 2 * H : 3 * H])
        np.multiply(dh, P_o[t], out=dGt[:, 3 * H : 4 * H])
        if t > 0 or need_dstate:
            dh_next = dGt @ w_hh.T
            profiler.record_gemm(B, 4 * H, H)
            dc_next = dc * f_g[t]
            if t == 0:
                dh0, dc0 = dh_next, dc_next

    dG_flat = dG.reshape(T * B, 4 * H)
    weight_grads = None
    if need_dw:
        h_prev_seq = np.concatenate([cache.h0[None], cache.h[:-1]], axis=0)
        dw_hh = h_prev_seq.reshape(T * B, H).T @ dG_flat
        profiler.record_gemm(H, T * B, 4 * H)
        F = cache.inputs.shape[2]
        dw_ih = cache.inputs.reshape(T * B, F).T @ dG_flat
        profiler.record_gemm(F, T * B, 4 * H)
        weight_grads = (dw_ih, dw_hh, dG_flat.sum(axis=0))
    dX = None
    if need_dx:
        F = w_ih.shape[0]
        dX = (dG_flat @ w_ih.T).reshape(T, B, F)
        profiler.record_gemm(T * B, 4 * H, F)
    state_grads = (dh0, dc0) if need_dstate else None
    return dX, weight_grads, state_grads


def lstm_backward(
    grad: np.ndarray,
    caches: Sequence[LayerCache],
    weights: Sequence[Tuple[np.ndarray, np.ndarray]],
    need_x: bool = True,
    need_w: Optional[Sequence[bool]] = None,
    need_state: Optional[Sequence[bool]] = None,
) -> Tuple[
    Optional[np.ndarray],
    List[Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]],
    List[Optional[Tuple[np.ndarray, np.ndarray]]],
]:
    """Full-stack BPTT: top layer down to the input sequence.

    ``grad`` is the gradient with respect to the top layer's hidden-state
    block in interface layout ``(batch, seq, hidden)``; ``weights[l]`` is
    ``(w_ih, w_hh)`` for layer ``l``.  Returns ``(dx, [(dW_ih, dW_hh,
    db)...], [(dh0, dc0)...])`` with the input gradient back in
    ``(batch, seq, features)`` layout and ``None`` in place of any
    gradient that was not requested.  BPTT stops at the lowest layer that
    still has a consumer below it.
    """
    num_layers = len(caches)
    need_w = [True] * num_layers if need_w is None else list(need_w)
    need_state = [False] * num_layers if need_state is None else list(need_state)
    if need_x:
        lowest = 0
    else:
        needed = [l for l in range(num_layers) if need_w[l] or need_state[l]]
        lowest = needed[0] if needed else num_layers

    weight_grads: List[Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]] = [None] * num_layers
    state_grads: List[Optional[Tuple[np.ndarray, np.ndarray]]] = [None] * num_layers
    dH = np.ascontiguousarray(grad.transpose(1, 0, 2))
    dx = None
    for layer in range(num_layers - 1, lowest - 1, -1):
        need_dx = layer > lowest or (layer == 0 and need_x)
        dX, wg, sg = _layer_backward(
            dH, caches[layer], *weights[layer],
            need_dx=need_dx, need_dw=need_w[layer], need_dstate=need_state[layer],
        )
        weight_grads[layer] = wg
        state_grads[layer] = sg
        if layer > lowest:
            mask = caches[layer - 1].mask
            dH = dX * mask if mask is not None else dX
        elif layer == 0 and need_x:
            dx = np.ascontiguousarray(dX.transpose(1, 0, 2))
    return dx, weight_grads, state_grads


def _needs_grad(t: Tensor) -> bool:
    return t.requires_grad or t._backward is not None


def lstm_forward(
    x: Tensor,
    layers: Sequence[LayerParams],
    state: Optional[Sequence[Tuple[Tensor, Tensor]]] = None,
    *,
    dropout_p: float = 0.0,
    training: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Fused multi-layer LSTM forward registering ONE autograd node.

    Parameters
    ----------
    x:
        Input block of shape ``(batch, seq, features)``.
    layers:
        Per-layer ``(weight_ih, weight_hh, bias)`` tensors.
    state:
        Optional per-layer ``(h0, c0)`` tensors; implicit zeros when
        omitted (which also skips the zero-contribution recurrent GEMM at
        ``t == 0``).
    dropout_p, training, rng:
        Inter-layer inverted dropout, active only while training.  Masks
        are drawn per timestep in sequence order so the generator stream
        matches the reference path exactly.

    Returns the top layer's hidden states ``(batch, seq, hidden)`` as a
    single tensor whose backward is :func:`lstm_backward`.
    """
    x_t = as_tensor(x)
    data = x_t.data
    if data.ndim != 3:
        raise ValueError(f"LSTM expects (batch, seq, features); got shape {data.shape}")
    B, T, _ = data.shape
    state_zero = state is None

    # Mirror Tensor._make's graph condition: when no node will be recorded
    # (no_grad, or nothing requires gradients) skip the backward caches —
    # a graph-path eval forward then costs no more than lstm_infer.
    graph_parents = (
        (x_t,)
        + tuple(p for triple in layers for p in triple)
        + (() if state_zero else tuple(s for pair in state for s in pair))
    )
    wants_node = is_grad_enabled() and any(p.requires_grad for p in graph_parents)

    caches: List[LayerCache] = []
    layer_in = np.ascontiguousarray(data.transpose(1, 0, 2))
    for idx, (w_ih, w_hh, bias) in enumerate(layers):
        if state_zero:
            H = w_hh.data.shape[0]
            h0 = np.zeros((B, H), dtype=data.dtype)
            c0 = np.zeros((B, H), dtype=data.dtype)
        else:
            h0, c0 = state[idx][0].data, state[idx][1].data
        hs, cache = _layer_forward(
            layer_in, w_ih.data, w_hh.data, bias.data, h0, c0,
            state_zero=state_zero, want_cache=wants_node,
        )
        mask = None
        if training and dropout_p > 0.0 and idx < len(layers) - 1:
            if rng is None:
                raise ValueError("dropout requires a random generator")
            keep = 1.0 - dropout_p
            H = hs.shape[2]
            mask = np.empty_like(hs)
            for t in range(T):
                mask[t] = (rng.random((B, H)) < keep) / keep
            layer_in = hs * mask
        else:
            layer_in = hs
        if wants_node:
            cache.mask = mask
            caches.append(cache)

    out = np.ascontiguousarray(layer_in.transpose(1, 0, 2))
    if not wants_node:
        return Tensor(out)
    weight_arrays = [(w_ih.data, w_hh.data) for (w_ih, w_hh, _) in layers]
    need_x = _needs_grad(x_t)
    need_w = [any(_needs_grad(p) for p in triple) for triple in layers]
    if state_zero:
        need_state = [False] * len(layers)
    else:
        need_state = [any(_needs_grad(s) for s in pair) for pair in state]
    parents = graph_parents

    def backward(grad: np.ndarray):
        dx, weight_grads, state_grads = lstm_backward(
            grad, caches, weight_arrays,
            need_x=need_x, need_w=need_w, need_state=need_state,
        )
        flat: List[Optional[np.ndarray]] = [dx]
        for wg in weight_grads:
            flat.extend(wg if wg is not None else (None, None, None))
        if not state_zero:
            for sg in state_grads:
                flat.extend(sg if sg is not None else (None, None))
        return tuple(flat)

    return Tensor._make(out, parents, backward)


def _infer_tm(
    x_tm: np.ndarray,
    layers: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> np.ndarray:
    """Chain layers over a time-major batch, graph- and cache-free."""
    B = x_tm.shape[1]
    layer_in = x_tm
    for w_ih, w_hh, bias in layers:
        H = w_hh.shape[0]
        zeros = np.zeros((B, H), dtype=x_tm.dtype)
        layer_in, _ = _layer_forward(
            layer_in, w_ih, w_hh, bias, zeros, zeros, state_zero=True, want_cache=False
        )
    return layer_in


def _check_infer_input(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError(f"LSTM expects (batch, seq, features); got shape {x.shape}")
    return np.ascontiguousarray(x.transpose(1, 0, 2))


def lstm_infer(
    x: np.ndarray,
    layers: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> np.ndarray:
    """Graph-free eval-mode forward over a numpy batch.

    No autograd node, no activation caches, no dropout — the fast path for
    black-box attack queries and evaluation.  Returns the top layer's
    hidden states ``(batch, seq, hidden)``.
    """
    out = _infer_tm(_check_infer_input(x), layers)
    return np.ascontiguousarray(out.transpose(1, 0, 2))


def lstm_infer_last(
    x: np.ndarray,
    layers: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> np.ndarray:
    """Like :func:`lstm_infer` but returns only the final hidden state.

    ``(batch, hidden)``, contiguous — exactly what a classification head
    consumes, with no layout conversion of the full sequence.
    """
    return _infer_tm(_check_infer_input(x), layers)[-1]


# ----------------------------------------------------------------------
# Stacked cross-model inference (DESIGN.md §12)
# ----------------------------------------------------------------------
# One layer's parameters for M stacked models: (weight_ih, weight_hh,
# bias) with shapes (M, in, 4H), (M, H, 4H), (M, 4H) — the per-model
# arrays of LayerParams stacked along a leading model axis.


def _stacked_layer_forward(
    X: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    bias: np.ndarray,
) -> np.ndarray:
    """One LSTM layer over a time-major ``(T, M, B, F)`` block, M models.

    The cross-model twin of :func:`_layer_forward` for the zero-state
    inference case: the input projection for all timesteps and all models
    is one broadcast batched GEMM (``(T, M, B, F) @ (M, F, 4H)``), the
    recurrence keeps one ``(M, B, H) @ (M, H, 4H)`` batched GEMM per step
    (skipped at ``t == 0``, where the implicit zero state contributes
    nothing), and the elementwise gate/cell/hidden updates are the exact
    ufunc sequence of the per-model kernel — so per element the
    activation math is bit-identical, and only BLAS blocking across the
    GEMM shapes separates stacked answers from per-model ones.
    """
    T, M, B, F = X.shape
    H = w_hh.shape[1]
    xw = np.matmul(X, w_ih)  # (T, M, B, 4H): batch dims broadcast over T
    xw += bias[:, None, :]

    hs = np.empty((T, M, B, H), dtype=X.dtype)
    gbuf = np.empty((M, B, 4 * H), dtype=X.dtype)
    gtbuf = np.empty((M, B, 4 * H), dtype=X.dtype)
    cbuf = np.empty((M, B, H), dtype=X.dtype)
    tcbuf = np.empty((M, B, H), dtype=X.dtype)
    c_prev = cbuf
    for t in range(T):
        if t == 0:
            g = xw[0]
        else:
            g = np.matmul(hs[t - 1], w_hh, out=gbuf)
            g += xw[t]
        gt = gtbuf
        np.negative(g, out=gt)
        np.exp(gt, out=gt)
        gt += 1.0
        np.reciprocal(gt, out=gt)
        np.tanh(g[..., 2 * H : 3 * H], out=gt[..., 2 * H : 3 * H])

        if t == 0:
            np.multiply(gt[..., 0 * H : 1 * H], gt[..., 2 * H : 3 * H], out=cbuf)
        else:
            np.multiply(gt[..., 1 * H : 2 * H], c_prev, out=cbuf)
            cbuf += gt[..., 0 * H : 1 * H] * gt[..., 2 * H : 3 * H]
        np.tanh(cbuf, out=tcbuf)
        np.multiply(gt[..., 3 * H : 4 * H], tcbuf, out=hs[t])
    return hs


def _stacked_infer_tm(
    x: np.ndarray,
    layers: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> np.ndarray:
    """Chain stacked layers over an ``(M, B, T, F)`` block, time-major
    internally.  No :func:`~repro.nn.profiler.record_gemm` calls: a
    stacked GEMM serves many models' groups at once, so the *dispatch*
    layer books each group's logical per-model-equivalent MACs instead
    (DESIGN.md §12) — kernel-side recording would double-count.
    """
    x = np.asarray(x)
    if x.ndim != 4:
        raise ValueError(
            f"stacked LSTM expects (models, batch, seq, features); got shape {x.shape}"
        )
    layer_in = np.ascontiguousarray(x.transpose(2, 0, 1, 3))
    for w_ih, w_hh, bias in layers:
        layer_in = _stacked_layer_forward(layer_in, w_ih, w_hh, bias)
    return layer_in


def lstm_infer_stacked(
    x: np.ndarray,
    layers: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> np.ndarray:
    """Graph-free eval forward for M same-shaped models in one call.

    ``x`` is ``(models, batch, seq, features)`` — one per-model batch
    per stacked model — and ``layers[l]`` is ``(w_ih, w_hh, bias)`` with
    a leading model axis: ``(M, F, 4H)``, ``(M, H, 4H)``, ``(M, 4H)``.
    Returns the top layer's hidden states ``(models, batch, seq,
    hidden)``.  Zero-padded ragged batches are safe if a caller needs
    them: every op is elementwise or a GEMM, so pad rows stay finite and
    can simply be sliced off.
    """
    out = _stacked_infer_tm(x, layers)
    return np.ascontiguousarray(out.transpose(1, 2, 0, 3))


def stacked_infer_last(
    x: np.ndarray,
    layers: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> np.ndarray:
    """Like :func:`lstm_infer_stacked` but only the final hidden state.

    ``(models, batch, hidden)``, contiguous — what M classification
    heads consume as one batched head GEMM.
    """
    return np.ascontiguousarray(_stacked_infer_tm(x, layers)[-1])
