"""Module base class: parameter management, train/eval mode, freezing.

Transfer-learning personalization (paper §III-A3) relies on *freezing* the
general model's representation layers while training a small number of new
or re-initialized parameters on single-user data.  :meth:`Module.freeze` and
:meth:`Module.unfreeze` flip ``requires_grad`` on parameter subtrees, and
optimizers only update parameters with ``requires_grad=True``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable model parameter."""

    def __init__(self, data, requires_grad: bool = True, name: str = "") -> None:
        super().__init__(data, requires_grad=requires_grad, name=name)


class Module:
    """Base class for all neural-network modules.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; both are discovered automatically for iteration,
    serialization, and freezing.
    """

    def __init__(self) -> None:
        self._training = True

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth first."""
        for attr, value in vars(self).items():
            if attr.startswith("_") and attr != "_modules":
                continue
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{name}.{i}", item

    def parameters(self) -> List[Parameter]:
        """Return all parameters as a list."""
        return [p for _, p in self.named_parameters()]

    def trainable_parameters(self) -> List[Parameter]:
        """Return only parameters that currently require gradients."""
        return [p for p in self.parameters() if p.requires_grad]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for attr, value in vars(self).items():
            if attr.startswith("_"):
                continue
            if isinstance(value, Module):
                yield from value.named_modules(prefix=f"{prefix}{attr}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(prefix=f"{prefix}{attr}.{i}.")

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Put the module (and children) in training mode (enables dropout)."""
        for _, module in self.named_modules():
            module._training = True
        return self

    def eval(self) -> "Module":
        """Put the module (and children) in inference mode."""
        for _, module in self.named_modules():
            module._training = False
        return self

    @property
    def training(self) -> bool:
        return self._training

    # ------------------------------------------------------------------
    # Freezing (transfer learning support)
    # ------------------------------------------------------------------
    def freeze(self) -> "Module":
        """Disable gradient updates for every parameter in this subtree."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        """Re-enable gradient updates for every parameter in this subtree."""
        for param in self.parameters():
            param.requires_grad = True
        return self

    def zero_grad(self) -> None:
        """Clear gradients on all parameters."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self, trainable_only: bool = False) -> int:
        params = self.trainable_parameters() if trainable_only else self.parameters()
        return sum(p.size for p in params)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of all parameter arrays keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter arrays produced by :meth:`state_dict`.

        With ``strict=True`` (default) the key sets must match exactly.
        """
        own = dict(self.named_parameters())
        if strict:
            missing = sorted(set(own) - set(state))
            unexpected = sorted(set(state) - set(own))
            if missing or unexpected:
                raise KeyError(
                    f"state_dict mismatch: missing={missing}, unexpected={unexpected}"
                )
        for name, param in own.items():
            if name not in state:
                continue
            # Checkpoints adopt the RECEIVING parameter's dtype, so loading
            # never silently re-types a model built under another policy.
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"checkpoint {value.shape} vs model {param.data.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
