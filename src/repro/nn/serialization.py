"""Checkpoint save/load for models moving between cloud and device.

Pelican downloads the general model from the cloud to the device for
personalization (paper §V-A2) and may upload a personalized model back for
cloud deployment (§V-A3).  Two codecs coexist (DESIGN.md §14):

* **format 1** — plain ``.npz`` archives of the module's state dict plus a
  JSON metadata blob.  This is the *logical* wire format: every transport
  and registry byte account is defined against npz sizes, so goldens pinned
  against them cannot move.
* **format 2** — a raw fixed-header tensor layout (magic ``RBC2``) used for
  *physical* registry storage: a small JSON header (metadata + per-tensor
  name/dtype/shape/offset table) followed by 64-byte-aligned raw payloads
  decoded zero-copy via ``numpy.frombuffer``.  The header embeds the
  logical (npz) byte size so accounting survives transcoding; payloads keep
  whatever dtype the dtype policy gave each parameter (float64/32/16).

:func:`deserialize_state` sniffs the magic and accepts either format.
Delta blobs (magic ``RBD2``) carry only the tensors that changed between
two format-2 checkpoints; :func:`apply_state_delta` reconstitutes the full
format-2 blob byte-for-byte.
"""

from __future__ import annotations

import io
import json
import struct
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

import numpy as np

from repro.nn.module import Module

_META_KEY = "__meta__"

#: Magic prefixes: zip archives (npz) start with ``PK\x03\x04``; the compact
#: and delta codecs claim their own four bytes.
COMPACT_MAGIC = b"RBC2"
DELTA_MAGIC = b"RBD2"
_ALIGN = 64
# magic (4) + header length (uint32) + logical bytes (uint64)
_FIXED_HEADER = struct.Struct("<4sIQ")


def serialize_state(state: Dict[str, np.ndarray], metadata: Dict[str, Any] | None = None) -> bytes:
    """Serialize a state dict (plus metadata) to bytes."""
    buffer = io.BytesIO()
    payload = dict(state)
    meta = json.dumps(metadata or {}).encode("utf-8")
    payload[_META_KEY] = np.frombuffer(meta, dtype=np.uint8)
    np.savez(buffer, **payload)
    return buffer.getvalue()


def deserialize_state(blob: bytes) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Inverse of :func:`serialize_state`; accepts format-1 or format-2 blobs."""
    if is_compact(blob):
        return deserialize_state_compact(blob)
    with np.load(io.BytesIO(bytes(blob))) as archive:
        state = {key: archive[key] for key in archive.files if key != _META_KEY}
        metadata: Dict[str, Any] = {}
        if _META_KEY in archive.files:
            metadata = json.loads(archive[_META_KEY].tobytes().decode("utf-8"))
    return state, metadata


# ----------------------------------------------------------------------
# Format 2: compact raw-tensor codec
# ----------------------------------------------------------------------
def is_compact(blob: Union[bytes, memoryview]) -> bool:
    """True when ``blob`` is a format-2 compact checkpoint."""
    return bytes(blob[:4]) == COMPACT_MAGIC


def is_delta(blob: Union[bytes, memoryview]) -> bool:
    """True when ``blob`` is a delta blob produced by :func:`state_delta`."""
    return bytes(blob[:4]) == DELTA_MAGIC


def logical_nbytes(blob: Union[bytes, memoryview]) -> int:
    """The *logical* (npz-equivalent) byte size of a checkpoint blob.

    Format-2 blobs embed the size of the npz archive they were transcoded
    from; anything else is billed at its physical length.  All simulated
    transfer accounting goes through this so storing compact blobs cannot
    move signatures (DESIGN.md §14).
    """
    if is_compact(blob):
        _, _, logical = _FIXED_HEADER.unpack_from(bytes(blob[: _FIXED_HEADER.size]))
        return logical
    return len(blob)


def _pad(offset: int) -> int:
    return -offset % _ALIGN


def serialize_state_compact(
    state: Dict[str, np.ndarray],
    metadata: Dict[str, Any] | None = None,
    logical_bytes: int | None = None,
) -> bytes:
    """Serialize a state dict to the format-2 compact layout.

    The layout is deterministic for a given ``(state, metadata,
    logical_bytes)`` — unlike npz there are no archive timestamps — which is
    what lets delta reconstitution be checked byte-for-byte.
    """
    tensors: List[Tuple[str, bytes, str, Tuple[int, ...]]] = []
    for name, value in state.items():
        array = np.ascontiguousarray(value)
        tensors.append((name, array.tobytes(), array.dtype.str, array.shape))

    # Two passes: the header length shifts payload offsets, so lay tensors
    # out against a zero base first, then against the real payload base.
    def build_header(base: int) -> Tuple[bytes, List[int]]:
        offsets: List[int] = []
        cursor = base
        table = []
        for name, raw, dtype, shape in tensors:
            cursor += _pad(cursor)
            offsets.append(cursor)
            table.append([name, dtype, list(shape), cursor, len(raw)])
            cursor += len(raw)
        header = json.dumps(
            {"meta": metadata or {}, "tensors": table},
            separators=(",", ":"),
        ).encode("utf-8")
        return header, offsets

    header, _ = build_header(0)
    base = _FIXED_HEADER.size + len(header)
    # The header itself only changes length if offset digit counts change;
    # iterate until stable (at most a couple of rounds).
    while True:
        header2, offsets = build_header(base)
        if len(header2) == len(header):
            header = header2
            break
        header = header2
        base = _FIXED_HEADER.size + len(header)

    out = io.BytesIO()
    physical_guess = offsets[-1] + len(tensors[-1][1]) if tensors else base
    logical = physical_guess if logical_bytes is None else logical_bytes
    out.write(_FIXED_HEADER.pack(COMPACT_MAGIC, len(header), logical))
    out.write(header)
    cursor = base
    for (_, raw, _, _), offset in zip(tensors, offsets):
        out.write(b"\x00" * (offset - cursor))
        out.write(raw)
        cursor = offset + len(raw)
    return out.getvalue()


def _parse_compact(blob: Union[bytes, memoryview]) -> Tuple[Dict[str, Any], List[List[Any]]]:
    magic, header_len, _ = _FIXED_HEADER.unpack_from(bytes(blob[: _FIXED_HEADER.size]))
    if magic != COMPACT_MAGIC:
        raise ValueError("not a format-2 compact checkpoint")
    start = _FIXED_HEADER.size
    header = json.loads(bytes(blob[start : start + header_len]).decode("utf-8"))
    return header["meta"], header["tensors"]


def deserialize_state_compact(
    blob: Union[bytes, memoryview],
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Inverse of :func:`serialize_state_compact`.

    Arrays are zero-copy views over ``blob`` (``np.frombuffer``); callers
    that keep them must copy — ``Module.load_state_dict`` already does.
    """
    meta, table = _parse_compact(blob)
    view = memoryview(blob)
    state: Dict[str, np.ndarray] = {}
    for name, dtype, shape, offset, nbytes in table:
        array = np.frombuffer(view[offset : offset + nbytes], dtype=np.dtype(dtype))
        state[name] = array.reshape(tuple(shape))
    return state, meta


def encode_compact(blob: bytes) -> bytes:
    """Transcode a format-1 (npz) blob to format 2, embedding its logical size.

    Format-2 input is returned unchanged, so the transcode is idempotent.
    """
    if is_compact(blob):
        return blob
    state, metadata = deserialize_state(blob)
    return serialize_state_compact(state, metadata, logical_bytes=len(blob))


# ----------------------------------------------------------------------
# Delta blobs: ship only changed tensors between two format-2 checkpoints
# ----------------------------------------------------------------------
def state_delta(new_blob: bytes, prior_blob: bytes) -> bytes:
    """A delta blob carrying only the tensors that changed.

    Both arguments must be format-2 blobs with identical tensor names and
    shapes (a redeploy never changes the architecture).  The delta embeds
    everything needed for :func:`apply_state_delta` to rebuild ``new_blob``
    byte-for-byte from ``prior_blob``.
    """
    new_meta, new_table = _parse_compact(new_blob)
    _, prior_table = _parse_compact(prior_blob)
    prior_rows = {row[0]: row for row in prior_table}
    if sorted(prior_rows) != sorted(row[0] for row in new_table):
        raise ValueError("delta requires matching tensor names")

    changed: List[Tuple[List[Any], bytes]] = []
    for row in new_table:
        name, dtype, shape, offset, nbytes = row
        raw = bytes(new_blob[offset : offset + nbytes])
        p_name, p_dtype, p_shape, p_offset, p_nbytes = prior_rows[name]
        prior_raw = bytes(prior_blob[p_offset : p_offset + p_nbytes])
        if dtype != p_dtype or shape != p_shape or raw != prior_raw:
            changed.append(([name, dtype, shape, 0, nbytes], raw))

    header_rows = []
    cursor = 0
    for row, raw in changed:
        cursor += _pad(cursor)
        header_rows.append([row[0], row[1], row[2], cursor, row[4]])
        cursor += len(raw)
    header = json.dumps(
        {
            "meta": new_meta,
            "order": [row[0] for row in new_table],
            "logical": logical_nbytes(new_blob),
            "changed": header_rows,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    out = io.BytesIO()
    out.write(_FIXED_HEADER.pack(DELTA_MAGIC, len(header), logical_nbytes(new_blob)))
    out.write(header)
    cursor = 0
    for (name, dtype, shape, offset, nbytes), raw in zip(header_rows, (raw for _, raw in changed)):
        out.write(b"\x00" * (offset - cursor))
        out.write(raw)
        cursor = offset + len(raw)
    return out.getvalue()


def apply_state_delta(prior_blob: bytes, delta_blob: bytes) -> bytes:
    """Reconstitute the full format-2 blob a delta was computed against."""
    magic, header_len, _ = _FIXED_HEADER.unpack_from(delta_blob[: _FIXED_HEADER.size])
    if magic != DELTA_MAGIC:
        raise ValueError("not a delta blob")
    start = _FIXED_HEADER.size
    header = json.loads(delta_blob[start : start + header_len].decode("utf-8"))
    payload_base = start + header_len

    prior_state, _ = deserialize_state_compact(prior_blob)
    state: Dict[str, np.ndarray] = {}
    changed = {row[0]: row for row in header["changed"]}
    for name in header["order"]:
        if name in changed:
            _, dtype, shape, offset, nbytes = changed[name]
            raw = delta_blob[payload_base + offset : payload_base + offset + nbytes]
            state[name] = np.frombuffer(raw, dtype=np.dtype(dtype)).reshape(tuple(shape))
        else:
            state[name] = prior_state[name]
    return serialize_state_compact(state, header["meta"], logical_bytes=header["logical"])


def save_module(module: Module, path: Union[str, Path], metadata: Dict[str, Any] | None = None) -> int:
    """Write a module checkpoint to ``path``; returns the byte size."""
    blob = serialize_state(module.state_dict(), metadata)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(blob)
    return len(blob)


def load_module(module: Module, path: Union[str, Path], strict: bool = True) -> Dict[str, Any]:
    """Load a checkpoint into ``module``; returns the stored metadata."""
    state, metadata = deserialize_state(Path(path).read_bytes())
    module.load_state_dict(state, strict=strict)
    return metadata
