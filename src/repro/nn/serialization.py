"""Checkpoint save/load for models moving between cloud and device.

Pelican downloads the general model from the cloud to the device for
personalization (paper §V-A2) and may upload a personalized model back for
cloud deployment (§V-A3).  Checkpoints are plain ``.npz`` archives of the
module's state dict plus a JSON metadata blob, so payload sizes can be
measured by the simulated transport layer.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Any, Dict, Tuple, Union

import numpy as np

from repro.nn.module import Module

_META_KEY = "__meta__"


def serialize_state(state: Dict[str, np.ndarray], metadata: Dict[str, Any] | None = None) -> bytes:
    """Serialize a state dict (plus metadata) to bytes."""
    buffer = io.BytesIO()
    payload = dict(state)
    meta = json.dumps(metadata or {}).encode("utf-8")
    payload[_META_KEY] = np.frombuffer(meta, dtype=np.uint8)
    np.savez(buffer, **payload)
    return buffer.getvalue()


def deserialize_state(blob: bytes) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Inverse of :func:`serialize_state`."""
    with np.load(io.BytesIO(blob)) as archive:
        state = {key: archive[key] for key in archive.files if key != _META_KEY}
        metadata: Dict[str, Any] = {}
        if _META_KEY in archive.files:
            metadata = json.loads(archive[_META_KEY].tobytes().decode("utf-8"))
    return state, metadata


def save_module(module: Module, path: Union[str, Path], metadata: Dict[str, Any] | None = None) -> int:
    """Write a module checkpoint to ``path``; returns the byte size."""
    blob = serialize_state(module.state_dict(), metadata)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(blob)
    return len(blob)


def load_module(module: Module, path: Union[str, Path], strict: bool = True) -> Dict[str, Any]:
    """Load a checkpoint into ``module``; returns the stored metadata."""
    state, metadata = deserialize_state(Path(path).read_bytes())
    module.load_state_dict(state, strict=strict)
    return metadata
