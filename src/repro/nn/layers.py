"""Core layers: Linear, Dropout, Sequential, and the Pelican privacy layer.

:class:`TemperatureScaling` is the paper's §V-B privacy enhancement — a
layer inserted between the final linear layer and the softmax that divides
logits by a user-chosen temperature ``T`` at *inference time only*.  As
``T → 0`` the confidence of the most probable class tends to 1, collapsing
the signal the inversion attack exploits while preserving the argmax (and
hence top-k ordering and model accuracy).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn import init as initializers
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, as_tensor


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with Xavier-uniform initialization."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(initializers.xavier_uniform(rng, (in_features, out_features)))
        self.bias = Parameter(initializers.zeros((out_features,)))

    def forward(self, x: Tensor) -> Tensor:
        return as_tensor(x) @ self.weight + self.bias

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    The mask is drawn from the generator supplied at construction so that
    training runs are reproducible.
    """

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Sequential(Module):
    """Run modules in order; mirrors ``torch.nn.Sequential``.

    Used by the transfer-learning feature-extraction method (paper
    §III-A3 / §V-C1) to stack a new LSTM layer on top of the frozen general
    model's representation layers.
    """

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.steps: List[Module] = list(modules)

    def append(self, module: Module) -> "Sequential":
        self.steps.append(module)
        return self

    def forward(self, x):
        for module in self.steps:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __getitem__(self, index: int) -> Module:
        return self.steps[index]


class TemperatureScaling(Module):
    """Pelican's privacy layer (paper §V-B, Equation 1).

    Divides logits by temperature ``T`` before the downstream softmax.  The
    layer is *inference-only*: during training it is the identity, so the
    privacy enhancement never interferes with model fitting.

    The temperature is user-chosen (a "privacy tuner") and assumed secret
    from the service provider.  Because scaling by a positive constant is
    monotone, class ordering — and therefore top-k accuracy — is unchanged.
    """

    def __init__(self, temperature: float = 1.0) -> None:
        super().__init__()
        self.set_temperature(temperature)

    def set_temperature(self, temperature: float) -> None:
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.temperature = float(temperature)

    def forward(self, logits: Tensor) -> Tensor:
        logits = as_tensor(logits)
        if self.training or self.temperature == 1.0:
            return logits
        return logits * (1.0 / self.temperature)

    def __repr__(self) -> str:
        return f"TemperatureScaling(T={self.temperature})"
