"""FLOP accounting for the overhead experiments (paper §V-C2).

The paper reports the cost of cloud-based general-model training versus
device-based personalization in *CPU cycles* (≈43,000 billion vs ≈15 billion)
and wall-clock time.  We cannot reproduce the authors' hardware, so we count
multiply-accumulate operations (MACs) — the dominant cost of LSTM training —
and convert them to cycle estimates with a configurable cycles-per-MAC
factor.  Ratios between phases are hardware independent, which is what the
paper's claim rests on.

Counting happens at two boundaries: the autograd engine reports every
:class:`Tensor` matmul via :func:`record_matmul`, and the fused LSTM
kernels (which run GEMMs directly on numpy arrays, bypassing the tensor
graph) report each GEMM via :func:`record_gemm`.  Each backend reports
the GEMMs it actually executes: on a workload where nothing is skippable
the totals are identical, while the fused path's dead-gradient/zero-state
skips (DESIGN.md §3) honestly show up as smaller counts.

Usage::

    with flop_counter() as counter:
        model.fit(...)
    print(counter.macs, counter.estimated_cycles())
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

# A conservative cycles-per-MAC estimate for unvectorized scalar math on a
# commodity CPU.  Only ratios matter for the reproduction; the constant makes
# absolute numbers land in a plausible range.
DEFAULT_CYCLES_PER_MAC = 4.0

_ACTIVE_COUNTERS: List["FlopCounter"] = []


@dataclass
class FlopCounter:
    """Accumulates multiply-accumulate counts and wall-clock time."""

    macs: int = 0
    matmul_calls: int = 0
    started_at: float = field(default_factory=time.perf_counter)
    stopped_at: float | None = None

    def add_matmul(self, a_shape: Tuple[int, ...], b_shape: Tuple[int, ...]) -> None:
        """Record a ``a @ b`` call.

        For shapes ``(..., m, k) @ (..., k, n)`` the MAC count is
        ``batch * m * k * n``; vector operands are treated as 1-row/column
        matrices.
        """
        if len(a_shape) == 1 and len(b_shape) == 1:
            self.macs += a_shape[0]
        elif len(a_shape) == 1:
            self.macs += a_shape[0] * b_shape[-1]
        elif len(b_shape) == 1:
            self.macs += a_shape[-2] * a_shape[-1]
        else:
            batch = 1
            for dim in a_shape[:-2]:
                batch *= dim
            self.macs += batch * a_shape[-2] * a_shape[-1] * b_shape[-1]
        self.matmul_calls += 1

    def add_gemm(self, m: int, k: int, n: int, batch: int = 1) -> None:
        """Record one ``(batch, m, k) @ (k, n)`` GEMM by its dimensions.

        Used by the fused LSTM kernels, which perform matmuls directly on
        numpy arrays and therefore bypass the :class:`Tensor` matmul
        boundary.  When nothing is skippable the fused and reference paths
        report identical MAC totals (asserted in the fused-LSTM test
        suite); where the fused path skips dead GEMMs it reports the
        smaller count it actually executed.
        """
        self.macs += batch * m * k * n
        self.matmul_calls += 1

    def stop(self) -> None:
        self.stopped_at = time.perf_counter()

    @property
    def elapsed_seconds(self) -> float:
        end = self.stopped_at if self.stopped_at is not None else time.perf_counter()
        return end - self.started_at

    def estimated_cycles(self, cycles_per_mac: float = DEFAULT_CYCLES_PER_MAC) -> float:
        """Estimate CPU cycles consumed, counting forward MACs only."""
        return self.macs * cycles_per_mac

    def estimated_billion_cycles(self, cycles_per_mac: float = DEFAULT_CYCLES_PER_MAC) -> float:
        return self.estimated_cycles(cycles_per_mac) / 1e9


def record_matmul(a_shape: Tuple[int, ...], b_shape: Tuple[int, ...]) -> None:
    """Called by the autograd engine on every matmul; cheap when inactive."""
    for counter in _ACTIVE_COUNTERS:
        counter.add_matmul(a_shape, b_shape)


def record_gemm(m: int, k: int, n: int, batch: int = 1) -> None:
    """Called by fused kernels on every GEMM they issue; cheap when inactive."""
    for counter in _ACTIVE_COUNTERS:
        counter.add_gemm(m, k, n, batch)


@contextmanager
def flop_counter() -> Iterator[FlopCounter]:
    """Context manager that counts MACs executed inside its body."""
    counter = FlopCounter()
    _ACTIVE_COUNTERS.append(counter)
    try:
        yield counter
    finally:
        counter.stop()
        _ACTIVE_COUNTERS.remove(counter)
