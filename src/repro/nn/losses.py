"""Loss functions for classification over location vocabularies."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import softmax_cross_entropy
from repro.nn.tensor import Tensor, as_tensor


class CrossEntropyLoss:
    """Mean cross-entropy between logits and integer class targets.

    Combines log-softmax and negative log-likelihood in one numerically
    stable op, like ``torch.nn.CrossEntropyLoss``.  Dispatches to the
    fused :func:`~repro.nn.functional.softmax_cross_entropy` node, which
    registers a single autograd node with a closed-form backward instead
    of a chain of elementwise graph nodes.
    """

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return softmax_cross_entropy(logits, targets)


class NLLLoss:
    """Mean negative log-likelihood over already-log-probabilities."""

    def __call__(self, log_probs: Tensor, targets: np.ndarray) -> Tensor:
        log_probs = as_tensor(log_probs)
        targets = np.asarray(targets, dtype=np.int64)
        batch = log_probs.shape[0]
        picked = log_probs[np.arange(batch), targets]
        return -picked.mean()
