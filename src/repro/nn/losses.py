"""Loss functions for classification over location vocabularies."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax
from repro.nn.tensor import Tensor, as_tensor


class CrossEntropyLoss:
    """Mean cross-entropy between logits and integer class targets.

    Combines log-softmax and negative log-likelihood in one numerically
    stable op, like ``torch.nn.CrossEntropyLoss``.
    """

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        logits = as_tensor(logits)
        targets = np.asarray(targets, dtype=np.int64)
        if logits.ndim != 2:
            raise ValueError(f"logits must be (batch, classes); got {logits.shape}")
        if targets.shape != (logits.shape[0],):
            raise ValueError(
                f"targets shape {targets.shape} incompatible with batch {logits.shape[0]}"
            )
        log_probs = log_softmax(logits, axis=-1)
        batch = logits.shape[0]
        picked = log_probs[np.arange(batch), targets]
        return -picked.mean()


class NLLLoss:
    """Mean negative log-likelihood over already-log-probabilities."""

    def __call__(self, log_probs: Tensor, targets: np.ndarray) -> Tensor:
        log_probs = as_tensor(log_probs)
        targets = np.asarray(targets, dtype=np.int64)
        batch = log_probs.shape[0]
        picked = log_probs[np.arange(batch), targets]
        return -picked.mean()
