"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the ``repro.nn`` substrate, which stands in
for PyTorch in this reproduction (see DESIGN.md §2).  A :class:`Tensor` wraps
a ``numpy.ndarray`` together with an optional gradient and a closure that
propagates gradients to its inputs.  Calling :meth:`Tensor.backward` on a
scalar tensor walks the recorded computation graph in reverse topological
order and accumulates gradients into every tensor created with
``requires_grad=True``.

The engine supports full numpy-style broadcasting: gradients flowing into a
broadcast operand are summed back down to the operand's original shape by
:func:`_unbroadcast`.

The gradient-descent model-inversion attack (paper §III-B) depends on
computing gradients *with respect to model inputs*; this engine supports that
directly because inputs are ordinary tensors that may require gradients.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn import profiler

ArrayLike = Union[np.ndarray, float, int, Sequence]

# Gradient computation can be globally disabled (e.g. during inference) to
# avoid building graphs; mirrors ``torch.no_grad``.
_GRAD_ENABLED = True

# The engine-wide floating dtype (DESIGN.md §5).  Every tensor the engine
# creates is stored in this dtype, so flipping it runs the whole substrate —
# training, attacks, inference — in float32 instead of the float64 default.
_DEFAULT_DTYPE: np.dtype = np.dtype(np.float64)


def set_default_dtype(dtype) -> np.dtype:
    """Set the engine-wide floating dtype; returns the previous one.

    Only ``float32`` and ``float64`` are supported.  Set the policy *before*
    constructing models: parameters are cast at creation time, and mixing
    dtypes across a model silently upcasts on every op.
    """
    global _DEFAULT_DTYPE
    dt = np.dtype(dtype)
    if dt.kind != "f" or dt.itemsize not in (4, 8):
        raise ValueError(f"default dtype must be float32 or float64, got {dt}")
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = dt
    return previous


def get_default_dtype() -> np.dtype:
    """Return the engine-wide floating dtype."""
    return _DEFAULT_DTYPE


class dtype_policy:
    """Context manager scoping :func:`set_default_dtype`.

    Example::

        with dtype_policy(np.float32):
            model = NextLocationModel(...)   # float32 end to end
    """

    def __init__(self, dtype) -> None:
        self._dtype = np.dtype(dtype)

    def __enter__(self) -> "dtype_policy":
        self._prev = set_default_dtype(self._dtype)
        return self

    def __exit__(self, *exc_info) -> None:
        set_default_dtype(self._prev)


class no_grad:
    """Context manager that disables graph construction.

    Example::

        with no_grad():
            logits = model(x)   # no autograd bookkeeping
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether autograd graph construction is currently enabled."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting can (a) prepend dimensions and (b) stretch size-1 axes.
    Both are undone by summation, which is the adjoint of broadcast.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Collapse stretched axes.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    arr = np.asarray(value, dtype=_DEFAULT_DTYPE)
    return arr


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array data (cast to the engine's default floating dtype — see
        :func:`set_default_dtype` — if necessary).
    requires_grad:
        Whether gradients should be accumulated into this tensor.

    Attributes
    ----------
    grad:
        Accumulated gradient (same shape as ``data``) or ``None``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False, name: str = "") -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else _raise_not_scalar(self)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Clear any accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor, recording the graph edge if enabled."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        If this tensor is not a scalar, an explicit output gradient must be
        supplied.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar tensor; "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(f"gradient shape {grad.shape} != tensor shape {self.shape}")

        order = _topological_order(self)
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf: retain the gradient.  Interior nodes only relay
                # gradients (PyTorch semantics), avoiding a copy per node.
                node._accumulate(node_grad)
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not (parent.requires_grad or parent._backward):
                    continue
                existing = grads.get(id(parent))
                grads[id(parent)] = pgrad if existing is None else existing + pgrad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(grad, other_t.shape),
            )

        return Tensor._make(data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad * other_t.data, self.shape),
                _unbroadcast(grad * self.data, other_t.shape),
            )

        return Tensor._make(data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad / other_t.data, self.shape),
                _unbroadcast(-grad * self.data / (other_t.data**2), other_t.shape),
            )

        return Tensor._make(data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad: np.ndarray):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        if self.ndim < 1 or other_t.ndim < 1:
            raise ValueError("matmul requires tensors with at least 1 dimension")
        data = self.data @ other_t.data
        profiler.record_matmul(self.data.shape, other_t.data.shape)

        def backward(grad: np.ndarray):
            a, b = self.data, other_t.data
            if a.ndim == 1 and b.ndim == 1:
                return (grad * b, grad * a)
            if a.ndim == 1:
                # (k,) @ (k, n) -> (n,)
                profiler.record_matmul(grad.shape, b.T.shape)
                return (grad @ b.T, np.outer(a, grad))
            if b.ndim == 1:
                # (m, k) @ (k,) -> (m,)
                profiler.record_matmul(a.T.shape, grad.shape)
                return (np.outer(grad, b), a.T @ grad)
            bT = np.swapaxes(b, -1, -2)
            aT = np.swapaxes(a, -1, -2)
            profiler.record_matmul(grad.shape, bT.shape)
            profiler.record_matmul(aT.shape, grad.shape)
            ga = grad @ bT
            gb = aT @ grad
            return (_unbroadcast(ga, a.shape), _unbroadcast(gb, b.shape))

        return Tensor._make(data, (self, other_t), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray):
            return (grad * data,)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray):
            return (grad / self.data,)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray):
            return (grad * (1.0 - data**2),)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray):
            return (grad * data * (1.0 - data),)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient is zero outside range."""
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions and shape manipulation
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            return (np.broadcast_to(g, self.shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            g = grad
            d = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                d = np.expand_dims(d, axis=axis)
            mask = self.data == d
            # Split gradient equally among ties, matching numpy semantics loosely.
            counts = mask.sum(axis=axis if axis is not None else None, keepdims=True)
            return (mask * g / counts,)

        return Tensor._make(data, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray):
            return (grad.reshape(original),)

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_t = axes if axes else tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes_t)
        inverse = tuple(np.argsort(axes_t))

        def backward(grad: np.ndarray):
            return (grad.transpose(inverse),)

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        # Basic indexing (ints/slices only) selects each element at most
        # once, so scatter-add can be a direct ``+=``; ``np.add.at`` is only
        # required for fancy indices, which may repeat elements.
        parts = index if isinstance(index, tuple) else (index,)
        basic = all(isinstance(p, (int, np.integer, slice, type(None), type(Ellipsis))) for p in parts)

        def backward(grad: np.ndarray):
            full = np.zeros_like(self.data)
            if basic:
                full[index] += grad
            else:
                np.add.at(full, index, grad)
            return (full,)

        return Tensor._make(data, (self,), backward)


def _raise_not_scalar(t: Tensor) -> float:
    raise ValueError(f"item() requires a single-element tensor; got shape {t.shape}")


def _topological_order(root: Tensor) -> list[Tensor]:
    """Return nodes reachable from ``root`` in reverse topological order."""
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    order.reverse()
    return order


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no-op if already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray):
        return tuple(np.array_split(grad, splits, axis=axis))

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray):
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return Tensor._make(data, tuple(tensors), backward)
