"""Training utilities: mini-batching, fit loop, time-series CV, grid search.

The paper selects hyperparameters with "grid search on time-series based
5-fold cross validation" for the general model and 3-fold for personalized
models.  :class:`TimeSeriesSplit` reproduces the expanding-window split
(train always precedes validation in time), and :func:`grid_search` wires it
to an arbitrary model factory.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.optim import Adam, Optimizer, clip_grad_norm
from repro.nn.tensor import Tensor, no_grad


def iterate_minibatches(
    inputs: np.ndarray,
    targets: np.ndarray,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (x, y) mini-batches; shuffled when a generator is supplied."""
    n = len(inputs)
    order = np.arange(n) if rng is None else rng.permutation(n)
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        yield inputs[idx], targets[idx]


@dataclass
class FitResult:
    """Record of one training run."""

    epochs_run: int
    train_losses: List[float] = field(default_factory=list)
    best_epoch: int = 0
    best_loss: float = float("inf")


def fit(
    model: Module,
    inputs: np.ndarray,
    targets: np.ndarray,
    *,
    epochs: int,
    batch_size: int,
    optimizer: Optional[Optimizer] = None,
    lr: float = 1e-3,
    weight_decay: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    grad_clip: Optional[float] = 5.0,
    patience: Optional[int] = None,
    min_delta: float = 1e-4,
) -> FitResult:
    """Train ``model`` with cross-entropy on ``(inputs, targets)``.

    Parameters
    ----------
    patience:
        If set, stop early when the epoch loss has not improved by
        ``min_delta`` for ``patience`` consecutive epochs.
    """
    if len(inputs) == 0:
        raise ValueError("cannot fit on an empty dataset")
    loss_fn = CrossEntropyLoss()
    if optimizer is None:
        trainable = model.trainable_parameters()
        optimizer = Adam(trainable, lr=lr, weight_decay=weight_decay)
    model.train()
    result = FitResult(epochs_run=0)
    stale = 0
    for epoch in range(epochs):
        epoch_losses = []
        for batch_x, batch_y in iterate_minibatches(inputs, targets, batch_size, rng):
            optimizer.zero_grad()
            logits = model(Tensor(batch_x))
            loss = loss_fn(logits, batch_y)
            loss.backward()
            if grad_clip is not None:
                clip_grad_norm(optimizer.params, grad_clip)
            optimizer.step()
            epoch_losses.append(loss.item())
        mean_loss = float(np.mean(epoch_losses))
        result.train_losses.append(mean_loss)
        result.epochs_run = epoch + 1
        if mean_loss < result.best_loss - min_delta:
            result.best_loss = mean_loss
            result.best_epoch = epoch
            stale = 0
        else:
            stale += 1
            if patience is not None and stale >= patience:
                break
    model.eval()
    return result


def evaluate_accuracy(model: Module, inputs: np.ndarray, targets: np.ndarray, k: int = 1) -> float:
    """Top-k accuracy of ``model`` on ``(inputs, targets)``.

    The model is evaluated in inference mode without building autograd
    graphs.
    """
    from repro.nn.functional import top_k_indices  # local import to avoid cycle

    if len(inputs) == 0:
        return float("nan")
    was_training = model.training
    model.eval()
    if hasattr(model, "infer_logits"):
        # Graph-free fused inference kernel (DESIGN.md §3).
        logits = model.infer_logits(inputs)
    else:
        with no_grad():
            logits = model(Tensor(inputs)).numpy()
    if was_training:
        model.train()
    top = top_k_indices(logits, k, axis=-1)
    hits = (top == np.asarray(targets)[:, None]).any(axis=1)
    return float(hits.mean())


class TimeSeriesSplit:
    """Expanding-window cross validation for temporally ordered samples.

    Fold ``i`` trains on the first ``(i+1)/(n_splits+1)`` fraction of the
    data and validates on the following block — validation data is always
    strictly later than training data, as required for trajectory data.
    """

    def __init__(self, n_splits: int) -> None:
        if n_splits < 1:
            raise ValueError("n_splits must be >= 1")
        self.n_splits = n_splits

    def split(self, n_samples: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        if n_samples < self.n_splits + 1:
            raise ValueError(
                f"need at least {self.n_splits + 1} samples for {self.n_splits} splits; "
                f"got {n_samples}"
            )
        fold = n_samples // (self.n_splits + 1)
        for i in range(1, self.n_splits + 1):
            train_end = fold * i
            val_end = min(fold * (i + 1), n_samples) if i < self.n_splits else n_samples
            yield np.arange(train_end), np.arange(train_end, val_end)


def grid_search(
    factory: Callable[..., Module],
    param_grid: Dict[str, Sequence],
    inputs: np.ndarray,
    targets: np.ndarray,
    *,
    n_splits: int = 3,
    epochs: int = 10,
    batch_size: int = 32,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[Dict, List[Tuple[Dict, float]]]:
    """Grid search with time-series CV; returns (best_params, all_scores).

    ``factory`` is called with each parameter combination and must return a
    fresh model; combinations are scored by mean top-1 validation accuracy
    across folds.
    """
    keys = sorted(param_grid)
    combos = [dict(zip(keys, values)) for values in itertools.product(*(param_grid[k] for k in keys))]
    splitter = TimeSeriesSplit(n_splits)
    scores: List[Tuple[Dict, float]] = []
    for combo in combos:
        fold_scores = []
        for train_idx, val_idx in splitter.split(len(inputs)):
            model = factory(**combo)
            fit(
                model,
                inputs[train_idx],
                targets[train_idx],
                epochs=epochs,
                batch_size=batch_size,
                rng=rng,
            )
            fold_scores.append(evaluate_accuracy(model, inputs[val_idx], targets[val_idx]))
        scores.append((combo, float(np.mean(fold_scores))))
    best_params = max(scores, key=lambda item: item[1])[0]
    return best_params, scores
