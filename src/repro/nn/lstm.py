"""Long short-term memory layers (Hochreiter & Schmidhuber, 1997).

The paper's next-location predictor is a stack of two LSTM layers followed
by a linear layer (Figure 1a).  This module provides :class:`LSTMCell` (one
time step) and :class:`LSTM` (multi-layer, batch-first sequence runner) with
exact reverse-mode gradients supplied by the ``repro.nn`` autograd engine —
including gradients with respect to the *input sequence*, which the
gradient-descent inversion attack requires.

:class:`LSTM` has two execution backends (DESIGN.md §3):

* ``"fused"`` (default) — the batched kernel in :mod:`repro.nn.fused`: one
  autograd node per call, hand-written BPTT, input projection hoisted out
  of the time loop.
* ``"reference"`` — the original per-timestep :class:`LSTMCell` graph, kept
  as the executable specification the fused path is tested against.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn import fused
from repro.nn import init as initializers
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, as_tensor, stack

BACKENDS = ("fused", "reference")


class LSTMCell(Module):
    """A single LSTM time step.

    Gate layout follows the PyTorch convention: the stacked weight matrices
    produce ``[input | forget | cell | output]`` pre-activations.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(
            initializers.uniform_lstm(rng, (input_size, 4 * hidden_size), hidden_size)
        )
        self.weight_hh = Parameter(
            initializers.uniform_lstm(rng, (hidden_size, 4 * hidden_size), hidden_size)
        )
        self.bias = Parameter(initializers.zeros((4 * hidden_size,)))

    def forward(
        self, x: Tensor, state: Tuple[Tensor, Tensor]
    ) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        """Advance one step.

        Parameters
        ----------
        x:
            Input of shape ``(batch, input_size)``.
        state:
            Tuple ``(h, c)`` each of shape ``(batch, hidden_size)``.
        """
        h_prev, c_prev = state
        gates = as_tensor(x) @ self.weight_ih + h_prev @ self.weight_hh + self.bias
        H = self.hidden_size
        i_gate = gates[:, 0 * H : 1 * H].sigmoid()
        f_gate = gates[:, 1 * H : 2 * H].sigmoid()
        g_gate = gates[:, 2 * H : 3 * H].tanh()
        o_gate = gates[:, 3 * H : 4 * H].sigmoid()
        c_next = f_gate * c_prev + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, (h_next, c_next)

    def initial_state(self, batch_size: int) -> Tuple[Tensor, Tensor]:
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())

    def __repr__(self) -> str:
        return f"LSTMCell(in={self.input_size}, hidden={self.hidden_size})"


class LSTM(Module):
    """Multi-layer batch-first LSTM.

    Input shape ``(batch, seq_len, input_size)``; output shape
    ``(batch, seq_len, hidden_size)`` (the top layer's hidden states).

    ``dropout`` is applied between stacked layers, matching the paper's
    general-model configuration ("dropout rate of 0.1 between the LSTM
    layers").
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
        backend: str = "fused",
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self.dropout_p = dropout
        self.backend = backend
        self._rng = rng
        self.cells: List[LSTMCell] = [
            LSTMCell(input_size if layer == 0 else hidden_size, hidden_size, rng)
            for layer in range(num_layers)
        ]

    def _layer_params(self):
        return [(cell.weight_ih, cell.weight_hh, cell.bias) for cell in self.cells]

    def forward(
        self,
        x: Tensor,
        state: Optional[List[Tuple[Tensor, Tensor]]] = None,
        backend: Optional[str] = None,
    ) -> Tensor:
        """Run the full sequence; return top-layer hidden states per step.

        ``backend`` overrides the instance default for this call — the
        parity test suite runs the same weights through both paths.
        """
        x = as_tensor(x)
        if x.ndim != 3:
            raise ValueError(f"LSTM expects (batch, seq, features); got shape {x.shape}")
        batch, seq_len, _ = x.shape
        backend = backend if backend is not None else self.backend
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if backend == "fused":
            # Pass ``state`` through unchanged: ``None`` lets the kernel use
            # implicit zeros and skip the zero-contribution t=0 GEMMs.
            return fused.lstm_forward(
                x,
                self._layer_params(),
                state,
                dropout_p=self.dropout_p,
                training=self.training,
                rng=self._rng,
            )
        # Copy: the per-layer running state is updated in place below and
        # must not clobber a caller-supplied list.
        states = list(state) if state else [cell.initial_state(batch) for cell in self.cells]

        layer_input = [x[:, t, :] for t in range(seq_len)]
        for layer_idx, cell in enumerate(self.cells):
            outputs = []
            current = states[layer_idx]
            for step_x in layer_input:
                h, current = cell(step_x, current)
                outputs.append(h)
            states[layer_idx] = current
            if layer_idx < self.num_layers - 1 and self.dropout_p > 0 and self.training:
                keep = 1.0 - self.dropout_p
                outputs = [
                    h * Tensor((self._rng.random(h.shape) < keep) / keep) for h in outputs
                ]
            layer_input = outputs
        return stack(layer_input, axis=1)

    def forward_np(self, x: np.ndarray) -> np.ndarray:
        """Graph-free eval-mode forward over a numpy batch (fused kernel).

        The inference fast path for black-box queries and evaluation: no
        autograd bookkeeping and no dropout, regardless of training mode.
        """
        return fused.lstm_infer(
            x, [(c.weight_ih.data, c.weight_hh.data, c.bias.data) for c in self.cells]
        )

    def last_hidden(self, x: Tensor) -> Tensor:
        """Convenience: run the sequence and return the final hidden state."""
        out = self.forward(x)
        return out[:, out.shape[1] - 1, :]

    def __repr__(self) -> str:
        return (
            f"LSTM(in={self.input_size}, hidden={self.hidden_size}, "
            f"layers={self.num_layers}, dropout={self.dropout_p}, "
            f"backend={self.backend})"
        )
