"""``repro.nn`` — a from-scratch deep-learning substrate over numpy.

Stands in for PyTorch in this reproduction (DESIGN.md §2): reverse-mode
autograd, LSTM/Linear/Dropout layers, Adam/SGD optimizers, checkpointing,
and FLOP accounting for the Pelican overhead experiments.
"""

from repro.nn import profiler
from repro.nn.functional import log_softmax, one_hot, softmax, softmax_np, top_k_indices
from repro.nn.layers import Dropout, Linear, Sequential, TemperatureScaling
from repro.nn.losses import CrossEntropyLoss, NLLLoss
from repro.nn.lstm import LSTM, LSTMCell
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.recurrent import GRUCell, RNNCell, RecurrentStack
from repro.nn.serialization import (
    deserialize_state,
    load_module,
    save_module,
    serialize_state,
)
from repro.nn.tensor import Tensor, as_tensor, concat, no_grad, ones, stack, zeros
from repro.nn.train import (
    FitResult,
    TimeSeriesSplit,
    evaluate_accuracy,
    fit,
    grid_search,
    iterate_minibatches,
)

__all__ = [
    "Adam",
    "CrossEntropyLoss",
    "Dropout",
    "FitResult",
    "GRUCell",
    "RNNCell",
    "RecurrentStack",
    "LSTM",
    "LSTMCell",
    "Linear",
    "Module",
    "NLLLoss",
    "Parameter",
    "SGD",
    "Sequential",
    "TemperatureScaling",
    "Tensor",
    "TimeSeriesSplit",
    "as_tensor",
    "clip_grad_norm",
    "concat",
    "deserialize_state",
    "evaluate_accuracy",
    "fit",
    "grid_search",
    "iterate_minibatches",
    "load_module",
    "log_softmax",
    "no_grad",
    "one_hot",
    "ones",
    "profiler",
    "save_module",
    "serialize_state",
    "softmax",
    "softmax_np",
    "stack",
    "top_k_indices",
    "zeros",
]
