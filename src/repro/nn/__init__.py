"""``repro.nn`` — a from-scratch deep-learning substrate over numpy.

Stands in for PyTorch in this reproduction (DESIGN.md §2): reverse-mode
autograd, LSTM/Linear/Dropout layers, Adam/SGD optimizers, checkpointing,
and FLOP accounting for the Pelican overhead experiments.
"""

from repro.nn import fused, profiler
from repro.nn.functional import (
    log_softmax,
    one_hot,
    softmax,
    softmax_cross_entropy,
    softmax_np,
    top_k_indices,
)
from repro.nn.fused import lstm_backward, lstm_forward, lstm_infer, lstm_infer_last
from repro.nn.layers import Dropout, Linear, Sequential, TemperatureScaling
from repro.nn.losses import CrossEntropyLoss, NLLLoss
from repro.nn.lstm import LSTM, LSTMCell
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.recurrent import GRUCell, RNNCell, RecurrentStack
from repro.nn.serialization import (
    deserialize_state,
    load_module,
    save_module,
    serialize_state,
)
from repro.nn.tensor import (
    Tensor,
    as_tensor,
    concat,
    dtype_policy,
    get_default_dtype,
    no_grad,
    ones,
    set_default_dtype,
    stack,
    zeros,
)
from repro.nn.train import (
    FitResult,
    TimeSeriesSplit,
    evaluate_accuracy,
    fit,
    grid_search,
    iterate_minibatches,
)

__all__ = [
    "Adam",
    "CrossEntropyLoss",
    "Dropout",
    "FitResult",
    "GRUCell",
    "RNNCell",
    "RecurrentStack",
    "LSTM",
    "LSTMCell",
    "Linear",
    "Module",
    "NLLLoss",
    "Parameter",
    "SGD",
    "Sequential",
    "TemperatureScaling",
    "Tensor",
    "TimeSeriesSplit",
    "as_tensor",
    "clip_grad_norm",
    "concat",
    "deserialize_state",
    "dtype_policy",
    "evaluate_accuracy",
    "fit",
    "fused",
    "get_default_dtype",
    "grid_search",
    "iterate_minibatches",
    "load_module",
    "log_softmax",
    "lstm_backward",
    "lstm_forward",
    "lstm_infer",
    "lstm_infer_last",
    "no_grad",
    "one_hot",
    "ones",
    "profiler",
    "save_module",
    "serialize_state",
    "set_default_dtype",
    "softmax",
    "softmax_cross_entropy",
    "softmax_np",
    "stack",
    "top_k_indices",
    "zeros",
]
