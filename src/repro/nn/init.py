"""Parameter initializers for ``repro.nn`` layers.

All initializers take an explicit ``numpy.random.Generator`` so every model
in the reproduction is bit-for-bit reproducible from a seed (DESIGN.md §6).
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Tuple

import numpy as np

# When True, the random initializers return zeros without consuming any rng
# draws.  Checkpoint loads construct a model only to overwrite every tensor
# via ``load_state_dict``, so paying the seeded init there is pure waste
# (DESIGN.md §14); serving outputs stay bit-identical either way.
_skip_random_init = False


@contextlib.contextmanager
def skip_init() -> Iterator[None]:
    """Make initializers return zeros (no rng draws) inside the block."""
    global _skip_random_init
    previous = _skip_random_init
    _skip_random_init = True
    try:
        yield
    finally:
        _skip_random_init = previous


def xavier_uniform(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """Glorot/Xavier uniform initialization for weight matrices."""
    if _skip_random_init:
        return np.zeros(shape)
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def uniform_lstm(rng: np.random.Generator, shape: Tuple[int, ...], hidden_size: int) -> np.ndarray:
    """PyTorch-style LSTM init: U(-1/sqrt(H), 1/sqrt(H))."""
    if _skip_random_init:
        return np.zeros(shape)
    bound = 1.0 / np.sqrt(hidden_size)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    return shape[0], shape[1]
