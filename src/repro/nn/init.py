"""Parameter initializers for ``repro.nn`` layers.

All initializers take an explicit ``numpy.random.Generator`` so every model
in the reproduction is bit-for-bit reproducible from a seed (DESIGN.md §6).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def xavier_uniform(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """Glorot/Xavier uniform initialization for weight matrices."""
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def uniform_lstm(rng: np.random.Generator, shape: Tuple[int, ...], hidden_size: int) -> np.ndarray:
    """PyTorch-style LSTM init: U(-1/sqrt(H), 1/sqrt(H))."""
    bound = 1.0 / np.sqrt(hidden_size)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    return shape[0], shape[1]
