"""Brute-force model inversion (paper §III-B2, Table II / Fig 2a).

"The simplest and most computationally expensive form of enumeration ...
an adversary enumerates through all the features in an unknown sequence":
every (entry bin, duration bin, location) combination of the missing
timestep is queried, and candidates are scored by the model's confidence in
the observed output weighted by the prior.

Supports adversaries with a single missing timestep (A1/A2); A3 would need
the joint product space, which the paper does not evaluate under brute
force either (its Fig 2a uses the default adversary A1).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.attacks.adversary import AttackInstance
from repro.attacks.base import (
    InversionAttack,
    Reconstruction,
    encode_candidates,
    query_output_confidence,
    rank_locations,
)
from repro.attacks.candidates import SearchSpace
from repro.models.predictor import NextLocationPredictor


class BruteForceAttack(InversionAttack):
    """Exhaustive enumeration over every feature bin of the missing step."""

    name = "brute force"

    def __init__(self, tie_break: str = "id") -> None:
        self.tie_break = tie_break

    def reconstruct(
        self,
        instance: AttackInstance,
        predictor: NextLocationPredictor,
        prior: np.ndarray,
    ) -> Tuple[Dict[int, Reconstruction], int]:
        if len(instance.missing) != 1:
            raise ValueError(
                "brute-force attack supports a single missing timestep (A1/A2); "
                f"got {len(instance.missing)} missing steps ({instance.adversary.value})"
            )
        spec = predictor.spec
        space = SearchSpace.full(spec.num_locations, spec.duration_bins, spec.entry_bins)
        step = instance.missing[0]

        entry_grid, duration_grid, location_grid = (
            arr.ravel()
            for arr in np.meshgrid(
                space.entry_bins, space.duration_bins, space.locations, indexing="ij"
            )
        )
        n = len(entry_grid)
        batch = encode_candidates(
            spec,
            instance.known,
            {step: {"entry": entry_grid, "duration": duration_grid, "location": location_grid}},
            instance.day_of_week,
            n,
        )
        confidence = query_output_confidence(predictor, batch, instance.observed_output)
        scores = confidence * prior[location_grid]
        ranked, ranked_scores = rank_locations(location_grid, scores, prior, self.tie_break)
        recon = Reconstruction(step=step, ranked_locations=ranked, scores=ranked_scores)
        return {step: recon}, n
