"""Brute-force model inversion (paper §III-B2, Table II / Fig 2a).

"The simplest and most computationally expensive form of enumeration ...
an adversary enumerates through all the features in an unknown sequence":
every (entry bin, duration bin, location) combination of the missing
timestep is queried, and candidates are scored by the model's confidence in
the observed output weighted by the prior.

Supports adversaries with a single missing timestep (A1/A2); A3 would need
the joint product space, which the paper does not evaluate under brute
force either (its Fig 2a uses the default adversary A1).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.adversary import AttackInstance
from repro.attacks.base import EnumerationAttack, ProbePlan
from repro.attacks.candidates import SearchSpace
from repro.data.features import FeatureSpec


class BruteForceAttack(EnumerationAttack):
    """Exhaustive enumeration over every feature bin of the missing step
    (paper §III-B2; the Table II cost ceiling and the Fig 2a baseline).

    The attack is fully described by its :meth:`plan` — the full
    ``entry x duration x location`` grid — with querying and scoring
    shared by :class:`~repro.attacks.base.EnumerationAttack`.
    """

    name = "brute force"

    def supports(self, adversary) -> bool:
        return len(adversary.missing_steps) == 1

    def plan(self, instance: AttackInstance, spec: FeatureSpec) -> ProbePlan:
        if len(instance.missing) != 1:
            raise ValueError(
                "brute-force attack supports a single missing timestep (A1/A2); "
                f"got {len(instance.missing)} missing steps ({instance.adversary.value})"
            )
        space = SearchSpace.full(spec.num_locations, spec.duration_bins, spec.entry_bins)
        step = instance.missing[0]
        entry_grid, duration_grid, location_grid = (
            arr.ravel()
            for arr in np.meshgrid(
                space.entry_bins, space.duration_bins, space.locations, indexing="ij"
            )
        )
        return ProbePlan(
            candidate_features={
                step: {
                    "entry": entry_grid,
                    "duration": duration_grid,
                    "location": location_grid,
                }
            },
            n=len(entry_grid),
        )
