"""Attack orchestration and aggregate metrics (paper §IV).

Runs an inversion attack across a population of personal users, collecting
the paper's measures:

* **aggregate attack accuracy at top-k** — percentage of historical
  locations correctly identified (Fig 2/3 y-axis);
* **per-user accuracy** — for the degree-of-mobility and predictability
  analyses (Fig 3b/3c);
* **total runtime and query counts** — for Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks.adversary import AdversaryClass, AttackInstance, build_instances
from repro.attacks.base import AttackOutput, InversionAttack
from repro.data.dataset import SequenceDataset
from repro.models.predictor import NextLocationPredictor
from repro.nn import dtype_policy


@dataclass
class UserAttackResult:
    """All attack outputs against one user's personal model (the per-user
    slice of the paper's Fig 3b/3c analyses)."""

    user_id: int
    outputs: List[AttackOutput] = field(default_factory=list)

    @property
    def num_reconstructions(self) -> int:
        """Missing-step reconstructions attempted against this user."""
        return sum(len(output.reconstructions) for output in self.outputs)

    def accuracy(self, k: int) -> float:
        """Fraction of missing-step reconstructions with a top-k hit.

        ``nan`` when the user contributed no reconstructions (no attack
        windows); aggregate views must not average that ``nan`` in —
        use :meth:`AttackEvaluation.per_user_accuracy`, which skips empty
        users and reports them through ``coverage`` instead.
        """
        hits = [hit for output in self.outputs for hit in output.hits(k)]
        return float(np.mean(hits)) if hits else float("nan")

    @property
    def total_queries(self) -> int:
        return sum(output.num_queries for output in self.outputs)

    @property
    def total_seconds(self) -> float:
        return sum(output.elapsed_seconds for output in self.outputs)


@dataclass
class AttackEvaluation:
    """Attack results across the personal-user population (the aggregate
    the paper's Table II and Figs 2/3 report)."""

    attack_name: str
    adversary: AdversaryClass
    per_user: Dict[int, UserAttackResult] = field(default_factory=dict)

    def accuracy(self, k: int) -> float:
        """Aggregate attack accuracy (pooled over all reconstructions)."""
        hits = [
            hit
            for result in self.per_user.values()
            for output in result.outputs
            for hit in output.hits(k)
        ]
        return float(np.mean(hits)) if hits else float("nan")

    def accuracy_series(self, ks: Sequence[int]) -> Dict[int, float]:
        return {k: self.accuracy(k) for k in ks}

    @property
    def covered_users(self) -> List[int]:
        """Users with at least one reconstruction to score."""
        return [
            uid
            for uid, result in self.per_user.items()
            if result.num_reconstructions > 0
        ]

    @property
    def empty_users(self) -> List[int]:
        """Users the attack produced nothing for (no attack windows).

        These are *excluded* from per-user aggregates — their accuracy is
        undefined, not zero — and reported here so the omission is
        explicit rather than a silently propagating ``nan``.
        """
        return [
            uid
            for uid, result in self.per_user.items()
            if result.num_reconstructions == 0
        ]

    @property
    def coverage(self) -> float:
        """Fraction of attacked users that contributed reconstructions."""
        if not self.per_user:
            return 0.0
        return len(self.covered_users) / len(self.per_user)

    def per_user_accuracy(self, k: int) -> Dict[int, float]:
        """Per-user accuracies over *covered* users only.

        A user with zero instances has no defined accuracy; including
        their ``nan`` would silently poison any downstream mean (the
        Fig 3b/3c scatter studies average these).  Check
        :attr:`coverage` / :attr:`empty_users` for who was skipped.
        """
        return {
            uid: result.accuracy(k)
            for uid, result in self.per_user.items()
            if result.num_reconstructions > 0
        }

    def mean_user_accuracy(self, k: int) -> float:
        """Unweighted mean of covered users' accuracies (nan-free unless
        no user is covered at all)."""
        accuracies = list(self.per_user_accuracy(k).values())
        return float(np.mean(accuracies)) if accuracies else float("nan")

    @property
    def total_queries(self) -> int:
        return sum(result.total_queries for result in self.per_user.values())

    @property
    def total_seconds(self) -> float:
        return sum(result.total_seconds for result in self.per_user.values())


def attack_user(
    attack: InversionAttack,
    predictor: NextLocationPredictor,
    windows: SequenceDataset,
    adversary: AdversaryClass,
    prior: np.ndarray,
    max_instances: Optional[int] = None,
) -> UserAttackResult:
    """Attack every (or the first ``max_instances``) window of one user.

    Attacks run under the dtype policy of the model they target
    (DESIGN.md §5): candidate batches and gradient-attack variables are
    then created in the model's precision, so a float32-configured
    pipeline keeps its precision/speed benefit on the attack hot path.
    """
    selected = windows.windows[:max_instances] if max_instances else windows.windows
    instances = build_instances(list(selected), adversary)
    user_id = selected[0].user_id if selected else -1
    result = UserAttackResult(user_id=user_id)
    model_dtype = next(iter(predictor.model.parameters())).data.dtype
    with dtype_policy(model_dtype):
        for instance in instances:
            result.outputs.append(attack.run(instance, predictor, prior))
    return result


def evaluate_attack(
    attack: InversionAttack,
    targets: Dict[int, tuple],
    adversary: AdversaryClass,
    max_instances: Optional[int] = None,
) -> AttackEvaluation:
    """Attack a population.

    ``targets[user_id]`` is a tuple ``(predictor, attack_windows, prior)``
    — the user's personal model behind its black-box interface, the windows
    to attack, and the adversary's prior for that user.
    """
    evaluation = AttackEvaluation(attack_name=attack.name, adversary=adversary)
    for user_id, (predictor, windows, prior) in targets.items():
        evaluation.per_user[user_id] = attack_user(
            attack, predictor, windows, adversary, prior, max_instances
        )
    return evaluation
