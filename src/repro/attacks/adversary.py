"""Adversary knowledge models (paper Table I).

The service provider is honest-but-curious: it has black-box access to the
personal model ``M_P``, knowledge of the prior ``p``, and observes the model
output ``l_t``.  The three adversary classes differ in which historical
sequences they additionally know:

* **A1** knows ``x_{t-2}`` but not ``x_{t-1}``; goal: recover ``l_{t-1}``.
* **A2** knows ``x_{t-1}`` but not ``x_{t-2}``; goal: recover ``l_{t-2}``.
* **A3** knows neither; goal: recover ``l_{t-1}`` or ``l_{t-2}``.

Day-of-week is treated as context known to all adversaries (the provider
knows when its queries happen), matching the paper's single-sensitive-
variable assumption (location is the sensitive feature).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

from repro.data.dataset import Window
from repro.data.features import SessionFeatures

# Timestep indices inside a window: 0 is x_{t-2}, 1 is x_{t-1}.
T_MINUS_2 = 0
T_MINUS_1 = 1


class AdversaryClass(str, Enum):
    """The three adversaries of Table I."""

    A1 = "A1"
    A2 = "A2"
    A3 = "A3"

    @property
    def known_steps(self) -> Tuple[int, ...]:
        if self is AdversaryClass.A1:
            return (T_MINUS_2,)
        if self is AdversaryClass.A2:
            return (T_MINUS_1,)
        return ()

    @property
    def missing_steps(self) -> Tuple[int, ...]:
        if self is AdversaryClass.A1:
            return (T_MINUS_1,)
        if self is AdversaryClass.A2:
            return (T_MINUS_2,)
        return (T_MINUS_2, T_MINUS_1)


@dataclass(frozen=True)
class AttackInstance:
    """One concrete attack problem derived from a ground-truth window
    (paper Table I: the adversary's view under its knowledge class).

    Attributes
    ----------
    known:
        Timestep index -> fully known session features.
    missing:
        Timestep indices the adversary must reconstruct.
    observed_output:
        The model output ``l_t`` the provider observed (ground truth next
        location of the window).
    day_of_week:
        Query-time context, known to every adversary.
    truth:
        Ground-truth features of the missing steps (used only for scoring).
    """

    adversary: AdversaryClass
    known: Dict[int, SessionFeatures]
    missing: Tuple[int, ...]
    observed_output: int
    day_of_week: int
    truth: Dict[int, SessionFeatures]

    def true_location(self, step: int) -> int:
        return self.truth[step].location


def build_instance(window: Window, adversary: AdversaryClass) -> AttackInstance:
    """Derive the adversary's view of one window."""
    known = {step: window.history[step] for step in adversary.known_steps}
    truth = {step: window.history[step] for step in adversary.missing_steps}
    return AttackInstance(
        adversary=adversary,
        known=known,
        missing=adversary.missing_steps,
        observed_output=window.target,
        day_of_week=window.history[T_MINUS_1].day_of_week,
        truth=truth,
    )


def build_instances(windows: List[Window], adversary: AdversaryClass) -> List[AttackInstance]:
    """Vector version of :func:`build_instance`."""
    return [build_instance(w, adversary) for w in windows]
