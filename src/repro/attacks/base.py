"""Shared machinery for model-inversion attacks.

All attacks produce, per missing timestep, a *ranking* of candidate
locations (best reconstruction first).  Attack accuracy at top-k (the
paper's measure) is the fraction of reconstructions whose true historical
location appears in the first k entries.

The enumeration attacks share a vectorized candidate encoder: candidate
feature combinations are written straight into a ``(n, 2, width)`` one-hot
batch with numpy fancy indexing, then scored in chunks through the
black-box predictor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.adversary import AdversaryClass, AttackInstance
from repro.data.features import FeatureSpec, SessionFeatures
from repro.models.predictor import NextLocationPredictor
from repro.nn import get_default_dtype

QUERY_CHUNK = 4096


@dataclass(frozen=True)
class Reconstruction:
    """Ranked location hypotheses for one missing timestep.

    The attack's output unit (paper §III-B2): attack accuracy at top-k
    (Table II, Figs 2–3) is the fraction of reconstructions whose true
    location lands in the first ``k`` entries (:meth:`hit`).
    """

    step: int
    ranked_locations: np.ndarray
    scores: np.ndarray

    def hit(self, true_location: int, k: int) -> bool:
        """Whether the true location is among the top-k hypotheses."""
        return bool(np.isin(true_location, self.ranked_locations[:k]))


@dataclass
class AttackOutput:
    """The result of attacking one instance (the unit of paper §IV scoring)."""

    instance: AttackInstance
    reconstructions: Dict[int, Reconstruction]
    num_queries: int
    elapsed_seconds: float

    def hits(self, k: int) -> List[bool]:
        """Per-missing-step top-k success flags."""
        return [
            recon.hit(self.instance.true_location(step), k)
            for step, recon in sorted(self.reconstructions.items())
        ]


class InversionAttack:
    """Base class for model-inversion attacks (paper §III-B2).

    Subclasses implement :meth:`reconstruct`; enumeration attacks should
    subclass :class:`EnumerationAttack` instead, which splits the work
    into a *plan* (which candidate probes to send) and a *score* (how to
    rank the answers) so the probes can also be dispatched through the
    fleet serving stack (:mod:`repro.attacks.fleet_adversary`).
    """

    name: str = "base"

    def reconstruct(
        self,
        instance: AttackInstance,
        predictor: NextLocationPredictor,
        prior: np.ndarray,
    ) -> Tuple[Dict[int, Reconstruction], int]:
        """Return (per-step reconstructions, number of model queries)."""
        raise NotImplementedError

    def run(
        self,
        instance: AttackInstance,
        predictor: NextLocationPredictor,
        prior: np.ndarray,
    ) -> AttackOutput:
        """Attack one instance, timing the reconstruction."""
        started = time.perf_counter()
        reconstructions, queries = self.reconstruct(instance, predictor, prior)
        elapsed = time.perf_counter() - started
        return AttackOutput(
            instance=instance,
            reconstructions=reconstructions,
            num_queries=queries,
            elapsed_seconds=elapsed,
        )


@dataclass(frozen=True, eq=False)
class ProbePlan:
    """The candidate probes an enumeration attack sends for one instance.

    ``candidate_features[step]`` maps feature name (``entry``,
    ``duration``, ``location``) to an ``(n,)`` integer grid for missing
    timestep ``step``; all steps share one candidate count ``n``.  The
    plan is pure adversary-side knowledge — deriving it queries nothing —
    which is what lets the fleet audit path ship the same probes through
    the serving stack that :meth:`EnumerationAttack.reconstruct` would
    have queried directly.
    """

    candidate_features: Dict[int, Dict[str, np.ndarray]]
    n: int


class EnumerationAttack(InversionAttack):
    """An attack that scores an enumerated candidate grid (paper §III-B2).

    Subclasses implement only :meth:`plan`.  :meth:`reconstruct` is the
    shared pipeline — encode the plan, query the black-box confidence of
    the observed output, weight by the prior, rank per location — and
    :meth:`score` is reusable on confidences obtained any other way
    (e.g. probe responses served by a
    :class:`~repro.pelican.fleet.Fleet`), so direct and fleet-served
    attacks produce bit-identical rankings from identical confidences.
    """

    def __init__(self, tie_break: str = "id") -> None:
        self.tie_break = tie_break

    def plan(self, instance: AttackInstance, spec: FeatureSpec) -> ProbePlan:
        """The candidate grids this attack would enumerate for ``instance``."""
        raise NotImplementedError

    def supports(self, adversary: "AdversaryClass") -> bool:
        """Whether this attack can plan for ``adversary``'s missing steps.

        Lets callers reject an incompatible pairing *before* any
        expensive setup (the audit suite validates its whole matrix up
        front), instead of crashing in :meth:`plan` mid-run.
        """
        return True

    def score(
        self,
        instance: AttackInstance,
        plan: ProbePlan,
        confidence: np.ndarray,
        prior: np.ndarray,
    ) -> Dict[int, Reconstruction]:
        """Rank locations from per-candidate confidences.

        Each candidate's score is the observed-output confidence weighted
        by the prior of every missing step's candidate location (a single
        factor for A1/A2, the joint product for A3 — the paper's
        formalization); per missing step the candidates then rank through
        :func:`rank_locations` under this attack's tie-break rule.
        """
        scores = confidence
        for grids in plan.candidate_features.values():
            scores = scores * prior[grids["location"]]
        reconstructions: Dict[int, Reconstruction] = {}
        for step, grids in plan.candidate_features.items():
            ranked, ranked_scores = rank_locations(
                grids["location"], scores, prior, self.tie_break
            )
            reconstructions[step] = Reconstruction(
                step=step, ranked_locations=ranked, scores=ranked_scores
            )
        return reconstructions

    def reconstruct(
        self,
        instance: AttackInstance,
        predictor: NextLocationPredictor,
        prior: np.ndarray,
    ) -> Tuple[Dict[int, Reconstruction], int]:
        plan = self.plan(instance, predictor.spec)
        batch = encode_candidates(
            predictor.spec,
            instance.known,
            plan.candidate_features,
            instance.day_of_week,
            plan.n,
        )
        confidence = query_output_confidence(predictor, batch, instance.observed_output)
        return self.score(instance, plan, confidence, prior), plan.n


# ----------------------------------------------------------------------
# Vectorized candidate encoding
# ----------------------------------------------------------------------
def window_steps(*step_groups: Iterable[int]) -> List[int]:
    """The sorted union of timestep indices across ``step_groups``.

    Attack windows are defined by which steps are known and which are
    under reconstruction; the window length follows from their union.
    Raises if the union is not contiguous from 0 — a gapped window would
    otherwise silently encode all-zero feature rows.
    """
    steps = sorted({step for group in step_groups for step in group})
    if steps != list(range(len(steps))):
        raise ValueError(f"window steps must be contiguous from 0, got {steps}")
    return steps


def encode_candidates(
    spec: FeatureSpec,
    known: Dict[int, SessionFeatures],
    candidate_features: Dict[int, Dict[str, np.ndarray]],
    day_of_week: int,
    n: int,
) -> np.ndarray:
    """Build a one-hot batch of ``n`` candidate windows.

    ``candidate_features[step]`` maps feature name (``entry``, ``duration``,
    ``location``) to an ``(n,)`` integer array of bin/class indices for the
    missing timestep ``step``; known timesteps are filled from ``known``.

    The window length is derived from the supplied steps (not hardcoded),
    so multi-step windows encode without truncation.
    """
    num_steps = len(window_steps(known, candidate_features))
    batch = np.zeros((n, num_steps, spec.width), dtype=get_default_dtype())
    for step, features in known.items():
        batch[:, step, :] = spec.encode(features)[None, :]
    rows = np.arange(n)
    for step, grids in candidate_features.items():
        batch[rows, step, spec.entry_offset + grids["entry"]] = 1.0
        batch[rows, step, spec.duration_offset + grids["duration"]] = 1.0
        batch[rows, step, spec.location_offset + grids["location"]] = 1.0
        batch[rows, step, spec.day_offset + day_of_week] = 1.0
    return batch


def query_output_confidence(
    predictor: NextLocationPredictor,
    batch: np.ndarray,
    observed_output: int,
    chunk: int = QUERY_CHUNK,
) -> np.ndarray:
    """Black-box confidence of the observed output for every candidate."""
    confidences = np.empty(len(batch))
    for start in range(0, len(batch), chunk):
        probs = predictor.confidences_encoded(batch[start : start + chunk])
        confidences[start : start + len(probs)] = probs[:, observed_output]
    return confidences


def rank_locations(
    candidate_locations: np.ndarray,
    scores: np.ndarray,
    prior: np.ndarray,
    tie_break: str = "id",
) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregate candidate scores per location and rank.

    Each candidate's score is already confidence x prior; per location we
    keep the best candidate, following the attack formalization (pick the
    value of the sensitive variable maximizing confidence weighted by the
    prior).

    ``tie_break`` decides ordering among equal scores, which matters
    enormously under the Pelican defense: saturated confidences make most
    surviving candidates score exactly ``1.0 * prior``.

    * ``"id"`` (default, paper-faithful): ties resolve by enumeration
      order, like an ``argmax`` over the candidate array.  This is what a
      straightforward implementation of the attack does, and it is the
      regime in which the defense's numbers hold.
    * ``"prior"``: a *stronger* adversary that falls back on the prior
      when scores tie; partially evades the defense (see the tie-break
      ablation benchmark).
    """
    if tie_break not in ("id", "prior"):
        raise ValueError(f"tie_break must be 'id' or 'prior', got {tie_break!r}")
    unique_locations = np.unique(candidate_locations)
    best = np.full(len(unique_locations), -np.inf)
    index_of = {loc: i for i, loc in enumerate(unique_locations)}
    positions = np.array([index_of[loc] for loc in candidate_locations])
    np.maximum.at(best, positions, scores)
    if tie_break == "prior":
        # lexsort: last key is primary.
        order = np.lexsort((unique_locations, -prior[unique_locations], -best))
    else:
        order = np.lexsort((unique_locations, -best))
    return unique_locations[order], best[order]
