"""The inversion adversary as a fleet serving workload (DESIGN.md §10).

``repro.attacks`` historically ran one user at a time against a bare
:class:`~repro.models.predictor.NextLocationPredictor`.  This module
turns the same adversary into *traffic*: every enumeration attack's
candidate probes (its :class:`~repro.attacks.base.ProbePlan`) are packed
into :class:`ProbeBatch` payloads and issued as ordinary
:class:`~repro.pelican.clock.FleetSchedule` QUERY events against a live
:class:`~repro.pelican.fleet.Fleet` or
:class:`~repro.pelican.cluster.Cluster` — so attack traffic is batched by
the dispatcher, billed in the fleet/cluster books (with an
adversary-vs-benign attribution overlay), routed by placement, and
subject to chaos policies and shard outages, exactly like the benign
queries it hides among.

Two execution paths, mirroring the fleet serving layer's pair:

* **batched** (:func:`run_fleet_audit`) — probes grouped per
  ``(user, window length, k)`` and answered through
  :func:`~repro.pelican.dispatch.dispatch_probe_batch`, each payload in
  chunked fused-kernel batches.  Because the chunk shapes and the
  black-box kernel are identical to
  :meth:`EnumerationAttack.reconstruct`'s own querying, reconstruction
  rankings are **bit-identical** to looping ``InversionAttack.run``
  against the bare predictor.
* **looped** (:func:`run_fleet_audit_looped`) — the executable
  specification and the slow side of ``benchmarks/test_audit_matrix.py``:
  one black-box query per candidate probe, the only interaction pattern
  an adversary restricted to the per-query service API would have.
  Accounting-neutral, like :meth:`Fleet.serve_looped`.

Both paths score through the same
:meth:`~repro.attacks.base.EnumerationAttack.score`, so the paper's
Table II / Fig 2–3 leakage story replays at fleet scale
(``repro.eval.audit`` crosses it with defenses and mobility regimes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.adversary import AdversaryClass, AttackInstance, build_instances
from repro.attacks.base import (
    AttackOutput,
    EnumerationAttack,
    ProbePlan,
    encode_candidates,
    query_output_confidence,
    window_steps,
)
from repro.attacks.runner import AttackEvaluation, UserAttackResult
from repro.data.dataset import SequenceDataset
from repro.models.predictor import NextLocationPredictor
from repro.pelican.clock import FleetSchedule, QueryRequest, QueryResponse
from repro.pelican.dispatch import ProbePayload

#: ``release_factory(predictor, key) -> black-box``: wraps the served
#: model in an output defense before confidences are released.  ``key``
#: is a stable per-(audit seed, user, instance) tuple, so seeded defenses
#: (Gaussian noise) draw identical perturbation streams on the batched
#: and looped paths.
ReleaseFactory = Callable[[Any, Tuple[int, ...]], Any]


@dataclass(frozen=True, eq=False)
class ProbeBatch(ProbePayload):
    """All candidate probes of one attack instance, as one serving payload.

    The fleet-scale unit of attack traffic (DESIGN.md §10): one
    :class:`~repro.attacks.base.ProbePlan` against one user's model,
    carried by a single QUERY event.  The payload encodes itself at
    dispatch time (compact integer grids until then) and queries through
    the same chunked black-box kernel
    (:func:`~repro.attacks.base.query_output_confidence`) the direct
    attack path uses — bit-identical confidences, hence bit-identical
    reconstruction rankings.
    """

    user_id: int
    instance: AttackInstance
    plan: ProbePlan
    #: Optional output-defense wrapper applied at release time (the
    #: provider-side defense the audit cell is measuring).
    release: Optional[Callable[[NextLocationPredictor], Any]] = None

    def __len__(self) -> int:
        return len(window_steps(self.instance.known, self.plan.candidate_features))

    @property
    def num_probes(self) -> int:
        return self.plan.n

    def confidences(self, predictor: NextLocationPredictor) -> np.ndarray:
        black_box = predictor if self.release is None else self.release(predictor)
        batch = encode_candidates(
            predictor.spec,
            self.instance.known,
            self.plan.candidate_features,
            self.instance.day_of_week,
            self.plan.n,
        )
        return query_output_confidence(
            black_box, batch, self.instance.observed_output
        )


@dataclass
class AuditTarget:
    """One user under audit: the windows to attack and the prior.

    ``attack_windows`` are ground-truth windows the service actually
    served (their history is what the adversary reconstructs);
    ``prior`` is the adversary's marginal over locations
    (paper §IV-B3 — typically the TRUE prior from the user's training
    split, the upper-bound adversary).
    """

    user_id: int
    attack_windows: SequenceDataset
    prior: np.ndarray


class AuditAdversary:
    """An honest-but-curious provider attacking its own deployment.

    Wraps one enumeration attack (paper §III-B2) and one adversary class
    (Table I) and turns them into fleet traffic: :meth:`probes_for`
    derives the candidate plans, :meth:`schedule_probes` rides them onto
    an event schedule, and :meth:`evaluate` scores the served confidences
    into the same :class:`~repro.attacks.runner.AttackEvaluation` the
    direct runner produces.

    Parameters
    ----------
    attack:
        The enumeration attack supplying plans.  The gradient-descent
        attack is *not* expressible here: it needs white-box gradient
        access, which the serving stack never exposes (DESIGN.md §10).
    adversary:
        Adversary knowledge class A1/A2/A3 (paper Table I).
    max_instances:
        Attack at most this many windows per user (``None`` = all).
    release_factory:
        Optional output-defense wrapper (see :data:`ReleaseFactory`).
    seed:
        Base seed for per-instance defense derivations.
    """

    def __init__(
        self,
        attack: EnumerationAttack,
        adversary: AdversaryClass = AdversaryClass.A1,
        max_instances: Optional[int] = None,
        release_factory: Optional[ReleaseFactory] = None,
        seed: int = 0,
    ) -> None:
        if not isinstance(attack, EnumerationAttack):
            raise TypeError(
                "fleet audits require an enumeration attack (plan/score split); "
                f"got {type(attack).__name__} — the gradient attack needs "
                "white-box access the serving stack does not expose"
            )
        if not attack.supports(adversary):
            raise ValueError(
                f"{attack.name!r} cannot plan for adversary class "
                f"{adversary.value} (missing steps {adversary.missing_steps})"
            )
        self.attack = attack
        self.adversary = adversary
        self.max_instances = max_instances
        self.release_factory = release_factory
        self.seed = seed

    # ------------------------------------------------------------------
    # Probe construction
    # ------------------------------------------------------------------
    def instances_for(self, target: AuditTarget) -> List[AttackInstance]:
        """The attack instances derived from a target's served windows."""
        windows = target.attack_windows.windows
        if self.max_instances is not None:
            windows = windows[: self.max_instances]
        return build_instances(list(windows), self.adversary)

    def _release(self, user_id: int, index: int):
        if self.release_factory is None:
            return None
        factory, key = self.release_factory, (self.seed, user_id, index)
        return lambda predictor: factory(predictor, key)

    def plan_for(
        self, spec, target: AuditTarget
    ) -> List[Tuple[AttackInstance, ProbePlan]]:
        """The (instance, candidate plan) pairs for one target.

        Plans depend only on the attack, the adversary class, and the
        target's windows — not on any defense — so callers sweeping a
        defense axis (the audit suite) derive them once and rebuild only
        the cheap :class:`ProbeBatch` wrappers per cell.
        """
        return [
            (instance, self.attack.plan(instance, spec))
            for instance in self.instances_for(target)
        ]

    def probes_for(
        self,
        spec,
        target: AuditTarget,
        planned: Optional[List[Tuple[AttackInstance, ProbePlan]]] = None,
    ) -> List[ProbeBatch]:
        """One :class:`ProbeBatch` per attack instance of ``target``.

        ``planned`` short-circuits plan derivation with a precomputed
        :meth:`plan_for` result (grids are read-only, safe to share).
        """
        if planned is None:
            planned = self.plan_for(spec, target)
        return [
            ProbeBatch(
                user_id=target.user_id,
                instance=instance,
                plan=plan,
                release=self._release(target.user_id, index),
            )
            for index, (instance, plan) in enumerate(planned)
        ]

    def schedule_probes(
        self,
        schedule: FleetSchedule,
        time: float,
        spec,
        targets: Sequence[AuditTarget],
        planned: Optional[Dict[int, List[Tuple[AttackInstance, ProbePlan]]]] = None,
    ) -> Dict[int, ProbeBatch]:
        """Append every target's probes as QUERY events at ``time``.

        All probes share one clock tick, so they coalesce into one
        serving batch per user — attack traffic arrives exactly like a
        benign concurrent burst.  Returns ``{event seq: probe batch}``
        for matching served responses back to their instances.
        ``planned`` optionally maps user id to a precomputed
        :meth:`plan_for` result.
        """
        by_seq: Dict[int, ProbeBatch] = {}
        for target in targets:
            batches = self.probes_for(
                spec, target, None if planned is None else planned[target.user_id]
            )
            for batch in batches:
                by_seq[schedule.next_seq] = batch
                schedule.probe(time, target.user_id, batch)
        return by_seq

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def evaluate(
        self,
        served: Sequence[Tuple[ProbeBatch, Sequence[float]]],
        priors: Dict[int, np.ndarray],
    ) -> AttackEvaluation:
        """Score served probe confidences into an AttackEvaluation.

        ``served`` pairs each probe batch with the confidences the fleet
        returned for it (a :class:`~repro.pelican.clock.QueryResponse`'s
        ``confidences`` field); ``priors`` maps user id to the adversary
        prior.  Scoring is byte-for-byte
        :meth:`~repro.attacks.base.EnumerationAttack.score`, so identical
        confidences reproduce the direct attack path's rankings exactly.
        Simulated attacks have no meaningful wall-clock per instance, so
        ``elapsed_seconds`` stays zero (callers time whole serving runs).
        """
        evaluation = AttackEvaluation(
            attack_name=self.attack.name, adversary=self.adversary
        )
        for batch, confidences in served:
            reconstructions = self.attack.score(
                batch.instance,
                batch.plan,
                np.asarray(confidences, dtype=float),
                priors[batch.user_id],
            )
            result = evaluation.per_user.setdefault(
                batch.user_id, UserAttackResult(user_id=batch.user_id)
            )
            result.outputs.append(
                AttackOutput(
                    instance=batch.instance,
                    reconstructions=reconstructions,
                    num_queries=batch.plan.n,
                    elapsed_seconds=0.0,
                )
            )
        return evaluation


# ----------------------------------------------------------------------
# Direct serve-mode entry points (the benchmark pair)
# ----------------------------------------------------------------------
def _endpoints(fleet) -> Dict[int, Any]:
    """user -> endpoint for a Fleet or Cluster (duck-typed)."""
    users = fleet.users if not hasattr(fleet, "pelican") else fleet.pelican.users
    return {uid: user.endpoint for uid, user in users.items()}


def audit_requests(
    adversary: AuditAdversary, spec, targets: Sequence[AuditTarget]
) -> Tuple[List[QueryRequest], List[ProbeBatch]]:
    """The adversary's probe burst as concurrent serving requests."""
    batches = [
        batch for target in targets for batch in adversary.probes_for(spec, target)
    ]
    requests = [
        QueryRequest(user_id=batch.user_id, history=batch, k=0) for batch in batches
    ]
    return requests, batches


def run_fleet_audit(
    fleet, adversary: AuditAdversary, targets: Sequence[AuditTarget]
) -> Tuple[AttackEvaluation, List[QueryResponse]]:
    """Attack a live deployment through the batched serving path.

    Issues every probe as one concurrent burst through ``fleet.serve``
    (grouped per user, dispatched through the fused probe kernel, billed
    in the fleet books with adversary attribution) and scores the
    responses.  Rankings are bit-identical to looping
    ``InversionAttack.run`` over the same instances against the bare
    endpoints — asserted by ``tests/attacks/test_fleet_adversary.py`` and
    ``benchmarks/test_audit_matrix.py``.
    """
    spec = fleet.spec if hasattr(fleet, "spec") else fleet.pelican.spec
    requests, batches = audit_requests(adversary, spec, targets)
    responses = fleet.serve(requests)
    if len(responses) != len(batches):
        # Positional pairing below would silently shift every confidence
        # onto the wrong instance if a serve path ever dropped a request.
        raise RuntimeError(
            f"audit serve answered {len(responses)} of {len(batches)} probe "
            "batches; refusing to score a misaligned audit"
        )
    priors = {target.user_id: target.prior for target in targets}
    evaluation = adversary.evaluate(
        [(batch, response.confidences) for batch, response in zip(batches, responses)],
        priors,
    )
    return evaluation, responses


def run_fleet_audit_looped(
    fleet, adversary: AuditAdversary, targets: Sequence[AuditTarget]
) -> AttackEvaluation:
    """Reference audit path: one black-box query per candidate probe.

    This is what an adversary holding only the per-query service API
    must do — ``plan.n`` separate single-row confidence queries per
    instance — and it is the slow side of the audit benchmark, exactly
    as :meth:`Fleet.serve_looped` is for benign serving.  It is
    accounting-neutral: models are read through the (bit-identical)
    deployed endpoints and per-predictor query counters are restored, so
    running the reference never perturbs the books of the batched path.
    """
    spec = fleet.spec if hasattr(fleet, "spec") else fleet.pelican.spec
    endpoints = _endpoints(fleet)
    priors = {target.user_id: target.prior for target in targets}
    served: List[Tuple[ProbeBatch, np.ndarray]] = []
    saved_counts = {
        uid: endpoint.predictor.query_count for uid, endpoint in endpoints.items()
    }
    try:
        for target in targets:
            predictor = endpoints[target.user_id].predictor
            for batch in adversary.probes_for(spec, target):
                black_box = (
                    predictor if batch.release is None else batch.release(predictor)
                )
                encoded = encode_candidates(
                    spec,
                    batch.instance.known,
                    batch.plan.candidate_features,
                    batch.instance.day_of_week,
                    batch.plan.n,
                )
                confidences = np.empty(batch.plan.n)
                target_class = batch.instance.observed_output
                for row in range(batch.plan.n):
                    confidences[row] = black_box.confidences_encoded(
                        encoded[row : row + 1]
                    )[0, target_class]
                served.append((batch, confidences))
    finally:
        for uid, endpoint in endpoints.items():
            endpoint.predictor.query_count = saved_counts[uid]
    return adversary.evaluate(served, priors)


def rankings(evaluation: AttackEvaluation) -> Dict[Tuple[int, int, int], Tuple[int, ...]]:
    """Every reconstruction's ranked-location tuple, keyed by
    ``(user, instance index, step)`` — the projection the audit parity
    gates compare bit-for-bit across execution paths."""
    out: Dict[Tuple[int, int, int], Tuple[int, ...]] = {}
    for uid, result in evaluation.per_user.items():
        for index, output in enumerate(result.outputs):
            for step, recon in sorted(output.reconstructions.items()):
                out[(uid, index, step)] = tuple(int(l) for l in recon.ranked_locations)
    return out
