"""Candidate search-space construction for enumeration attacks.

Implements the paper's two search-space reductions (§III-B2):

* **Location-of-interest pruning**: the adversary observes the model's
  output confidences on a few production queries and keeps only locations
  whose confidence ever reaches a threshold (default 1%).  Because of
  domain equalization the personal model nominally covers the whole campus,
  but its confidence mass concentrates on the user's actual locations, so
  pruning shrinks the space dramatically.
* **Grid coarsening** for the A3 adversary, which must enumerate entry
  times for both missing timesteps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.data.dataset import SequenceDataset
from repro.models.predictor import NextLocationPredictor

DEFAULT_CONFIDENCE_THRESHOLD = 0.01


def prune_locations(
    predictor: NextLocationPredictor,
    probe_windows: SequenceDataset,
    threshold: float = DEFAULT_CONFIDENCE_THRESHOLD,
    max_probes: int = 25,
) -> np.ndarray:
    """Locations of interest: confidence >= threshold on any probe query.

    ``probe_windows`` stand in for production queries the provider already
    served (the threat model gives it every output confidence vector).
    Falls back to the full domain if probing yields nothing.
    """
    num_locations = predictor.spec.num_locations
    windows = probe_windows.windows[:max_probes]
    if not windows:
        return np.arange(num_locations)
    X = np.stack([predictor.spec.encode_sequence(w.history) for w in windows])
    probs = predictor.confidences_encoded(X)
    keep = np.where(probs.max(axis=0) >= threshold)[0]
    if keep.size == 0:
        return np.arange(num_locations)
    return keep


@dataclass(frozen=True)
class SearchSpace:
    """Feature grids an enumeration attack iterates over (paper §III-B2;
    its size drives the Table II runtime/query columns)."""

    locations: np.ndarray
    duration_bins: np.ndarray
    entry_bins: np.ndarray

    @property
    def size_single_step(self) -> int:
        """Candidates for one missing timestep with known entry anchor."""
        return len(self.locations) * len(self.duration_bins)

    @classmethod
    def full(cls, num_locations: int, duration_bins: int, entry_bins: int) -> "SearchSpace":
        """The brute-force space: every bin of every feature."""
        return cls(
            locations=np.arange(num_locations),
            duration_bins=np.arange(duration_bins),
            entry_bins=np.arange(entry_bins),
        )

    @classmethod
    def pruned(
        cls,
        locations: np.ndarray,
        duration_bins: int,
        entry_bins: int,
        duration_stride: int = 1,
        entry_stride: int = 1,
    ) -> "SearchSpace":
        """A reduced space: pruned locations, optionally strided grids."""
        return cls(
            locations=np.asarray(locations),
            duration_bins=np.arange(0, duration_bins, duration_stride),
            entry_bins=np.arange(0, entry_bins, entry_stride),
        )
