"""Prior knowledge of the sensitive variable (paper §IV-B3, Fig 2c).

The inversion attack weighs model confidence by the marginal probability
``p`` of the sensitive location variable.  Four generation methods are
compared in the paper:

* **true** — the exact marginals of the user's training locations (an
  upper-bound adversary);
* **none** — no prior (uniform);
* **predict** — the adversary observes the black-box model's outputs for a
  period of time and uses the average confidence distribution as ``p``;
* **estimate** — the adversary only knows the most probable location; it
  assigns that a high probability (75%) and spreads the rest equally.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, Sequence

import numpy as np

from repro.data.dataset import SequenceDataset
from repro.data.features import location_marginals
from repro.models.predictor import NextLocationPredictor

ESTIMATE_TOP_MASS = 0.75


class PriorMethod(str, Enum):
    """How the adversary obtains the marginal prior ``p``
    (paper §IV-B3; the Fig 2c comparison axis)."""

    TRUE = "true"
    NONE = "none"
    PREDICT = "predict"
    ESTIMATE = "estimate"


def true_prior(train_dataset: SequenceDataset, smoothing: float = 0.5) -> np.ndarray:
    """Exact marginals of the user's training locations (with smoothing)."""
    features = [f for window in train_dataset.windows for f in window.history]
    return location_marginals(features, train_dataset.spec.num_locations, smoothing=smoothing)


def uniform_prior(num_locations: int) -> np.ndarray:
    """The "none" prior: no information, uniform over the domain."""
    return np.full(num_locations, 1.0 / num_locations)


def predicted_prior(
    predictor: NextLocationPredictor,
    probe_windows: SequenceDataset,
    max_probes: int = 50,
) -> np.ndarray:
    """Observe the model's outputs for a while and average the confidences.

    This only uses capabilities the threat model grants the provider:
    black-box queries and confidence scores.
    """
    windows = probe_windows.windows[:max_probes]
    if not windows:
        return uniform_prior(predictor.spec.num_locations)
    X = np.stack([predictor.spec.encode_sequence(w.history) for w in windows])
    probs = predictor.confidences_encoded(X)
    mean = probs.mean(axis=0)
    return mean / mean.sum()


def estimated_prior(most_probable: int, num_locations: int) -> np.ndarray:
    """75% mass on the most probable location, the rest spread equally."""
    if num_locations < 2:
        return np.ones(max(num_locations, 1))
    prior = np.full(num_locations, (1.0 - ESTIMATE_TOP_MASS) / (num_locations - 1))
    prior[most_probable] = ESTIMATE_TOP_MASS
    return prior


def build_prior(
    method: PriorMethod,
    num_locations: int,
    *,
    train_dataset: Optional[SequenceDataset] = None,
    predictor: Optional[NextLocationPredictor] = None,
    probe_windows: Optional[SequenceDataset] = None,
) -> np.ndarray:
    """Construct the prior for the requested method.

    ``train_dataset`` is required for ``TRUE``; ``predictor`` and
    ``probe_windows`` are required for ``PREDICT`` and ``ESTIMATE`` (the
    estimate method derives the most-probable location from observation).
    """
    if method == PriorMethod.NONE:
        return uniform_prior(num_locations)
    if method == PriorMethod.TRUE:
        if train_dataset is None:
            raise ValueError("TRUE prior requires the user's training dataset")
        return true_prior(train_dataset)
    if predictor is None or probe_windows is None:
        raise ValueError(f"{method.value} prior requires predictor and probe windows")
    predicted = predicted_prior(predictor, probe_windows)
    if method == PriorMethod.PREDICT:
        return predicted
    if method == PriorMethod.ESTIMATE:
        return estimated_prior(int(np.argmax(predicted)), num_locations)
    raise ValueError(f"unknown prior method: {method}")
