"""Time-based enumeration attack (paper §III-B2, the proposed method).

Exploits two structural properties of mobile trajectories:

* **Continuity** — devices are always associated somewhere, so consecutive
  sessions chain in time: ``e_{t-1} = e_{t-2} + d_{t-2}``.  The missing
  timestep's entry time is therefore *derived* instead of enumerated.
* **Locations of interest** — only locations whose black-box confidence
  ever reaches a threshold are enumerated (see
  :func:`repro.attacks.candidates.prune_locations`).

Together these cut the search space by ~two orders of magnitude relative to
brute force (paper Table II: 82.18h -> 0.68h for 100 users) while matching
its accuracy (Fig 2a).

Like every enumeration attack the method is fully described by its
candidate :meth:`~TimeBasedAttack.plan`; querying and prior-weighted
ranking are shared (:class:`~repro.attacks.base.EnumerationAttack`), so
the same plan can be probed directly or through the fleet serving stack
(:mod:`repro.attacks.fleet_adversary`) with bit-identical rankings.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.adversary import T_MINUS_1, T_MINUS_2, AttackInstance
from repro.attacks.base import EnumerationAttack, ProbePlan
from repro.data.features import (
    FeatureSpec,
    discretize_entry,
    duration_bin_to_minute,
    entry_bin_to_minute,
)

MINUTES_PER_DAY = 24 * 60


def _derive_entry_bin(anchor_minute: float, spec: FeatureSpec) -> int:
    clamped = int(np.clip(anchor_minute, 0, MINUTES_PER_DAY - 1))
    return discretize_entry(clamped)


class TimeBasedAttack(EnumerationAttack):
    """Smart enumeration using cross-sequence time correlation
    (paper §III-B2; Table II runtime rows, Fig 2a accuracy).

    Parameters
    ----------
    candidate_locations:
        Pruned locations of interest (from ``prune_locations``); ``None``
        enumerates the full domain.
    a3_entry_stride / a3_duration_stride:
        Grid coarsening for the doubly-missing A3 adversary, which must
        additionally enumerate the anchor entry time.
    """

    name = "time-based"

    def __init__(
        self,
        candidate_locations: Optional[np.ndarray] = None,
        entry_slack: int = 1,
        a3_entry_stride: int = 4,
        a3_duration_stride: int = 4,
        tie_break: str = "id",
    ) -> None:
        super().__init__(tie_break=tie_break)
        self.candidate_locations = candidate_locations
        self.entry_slack = entry_slack
        self.a3_entry_stride = a3_entry_stride
        self.a3_duration_stride = a3_duration_stride

    def _entry_candidates(self, anchor_minute: float, spec: FeatureSpec) -> np.ndarray:
        """Derived entry bin ± slack.

        Discretization makes the continuity arithmetic inexact (bin starts
        vs. bin midpoints can disagree by up to one 30-minute bin), so the
        attack hedges with a small window around the derived bin.
        """
        center = _derive_entry_bin(anchor_minute, spec)
        lo = max(0, center - self.entry_slack)
        hi = min(spec.entry_bins - 1, center + self.entry_slack)
        return np.arange(lo, hi + 1)

    def _locations(self, spec: FeatureSpec) -> np.ndarray:
        if self.candidate_locations is None:
            return np.arange(spec.num_locations)
        return np.asarray(self.candidate_locations)

    # ------------------------------------------------------------------
    def plan(self, instance: AttackInstance, spec: FeatureSpec) -> ProbePlan:
        if instance.missing == (T_MINUS_1,):
            return self._plan_missing_t1(instance, spec)
        if instance.missing == (T_MINUS_2,):
            return self._plan_missing_t2(instance, spec)
        return self._plan_missing_both(instance, spec)

    # ------------------------------------------------------------------
    # A1: x_{t-2} known, x_{t-1} missing
    # ------------------------------------------------------------------
    def _plan_missing_t1(self, instance: AttackInstance, spec: FeatureSpec) -> ProbePlan:
        known = instance.known[T_MINUS_2]
        # Continuity: the missing session starts when the known one ends.
        entries = self._entry_candidates(
            entry_bin_to_minute(known.entry_bin) + duration_bin_to_minute(known.duration_bin),
            spec,
        )
        locations = self._locations(spec)
        durations = np.arange(spec.duration_bins)
        entry_grid, duration_grid, location_grid = (
            arr.ravel() for arr in np.meshgrid(entries, durations, locations, indexing="ij")
        )
        return ProbePlan(
            candidate_features={
                T_MINUS_1: {
                    "entry": entry_grid,
                    "duration": duration_grid,
                    "location": location_grid,
                }
            },
            n=len(location_grid),
        )

    # ------------------------------------------------------------------
    # A2: x_{t-1} known, x_{t-2} missing
    # ------------------------------------------------------------------
    def _plan_missing_t2(self, instance: AttackInstance, spec: FeatureSpec) -> ProbePlan:
        known = instance.known[T_MINUS_1]
        locations = self._locations(spec)
        durations = np.arange(spec.duration_bins)
        duration_grid, location_grid = (
            arr.ravel() for arr in np.meshgrid(durations, locations, indexing="ij")
        )
        # Continuity solved for the earlier step: e_{t-2} = e_{t-1} - d_{t-2},
        # where d_{t-2} is the enumerated candidate duration.  The ± slack
        # window around each derived bin hedges discretization error.
        anchor = entry_bin_to_minute(known.entry_bin)
        slack = np.arange(-self.entry_slack, self.entry_slack + 1)
        derived = np.array(
            [
                _derive_entry_bin(anchor - duration_bin_to_minute(d), spec)
                for d in duration_grid
            ]
        )
        entry_grid = np.clip(
            (derived[:, None] + slack[None, :]), 0, spec.entry_bins - 1
        ).ravel()
        duration_grid = np.repeat(duration_grid, len(slack))
        location_grid = np.repeat(location_grid, len(slack))
        return ProbePlan(
            candidate_features={
                T_MINUS_2: {
                    "entry": entry_grid,
                    "duration": duration_grid,
                    "location": location_grid,
                }
            },
            n=len(location_grid),
        )

    # ------------------------------------------------------------------
    # A3: both timesteps missing
    # ------------------------------------------------------------------
    def _plan_missing_both(self, instance: AttackInstance, spec: FeatureSpec) -> ProbePlan:
        locations = self._locations(spec)
        durations = np.arange(0, spec.duration_bins, self.a3_duration_stride)
        entries = np.arange(0, spec.entry_bins, self.a3_entry_stride)

        e2, d2, l2, d1, l1 = (
            arr.ravel()
            for arr in np.meshgrid(entries, durations, locations, durations, locations, indexing="ij")
        )
        # Continuity chains the derived step-1 entry off the enumerated
        # step-2 candidate: e_{t-1} = e_{t-2} + d_{t-2}.
        e1 = np.array(
            [
                _derive_entry_bin(entry_bin_to_minute(e) + duration_bin_to_minute(d), spec)
                for e, d in zip(e2, d2)
            ]
        )
        return ProbePlan(
            candidate_features={
                T_MINUS_2: {"entry": e2, "duration": d2, "location": l2},
                T_MINUS_1: {"entry": e1, "duration": d1, "location": l1},
            },
            n=len(l1),
        )
