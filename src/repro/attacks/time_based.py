"""Time-based enumeration attack (paper §III-B2, the proposed method).

Exploits two structural properties of mobile trajectories:

* **Continuity** — devices are always associated somewhere, so consecutive
  sessions chain in time: ``e_{t-1} = e_{t-2} + d_{t-2}``.  The missing
  timestep's entry time is therefore *derived* instead of enumerated.
* **Locations of interest** — only locations whose black-box confidence
  ever reaches a threshold are enumerated (see
  :func:`repro.attacks.candidates.prune_locations`).

Together these cut the search space by ~two orders of magnitude relative to
brute force (paper Table II: 82.18h -> 0.68h for 100 users) while matching
its accuracy (Fig 2a).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.attacks.adversary import T_MINUS_1, T_MINUS_2, AttackInstance
from repro.attacks.base import (
    InversionAttack,
    Reconstruction,
    encode_candidates,
    query_output_confidence,
    rank_locations,
)
from repro.data.features import (
    FeatureSpec,
    discretize_entry,
    duration_bin_to_minute,
    entry_bin_to_minute,
)
from repro.models.predictor import NextLocationPredictor

MINUTES_PER_DAY = 24 * 60


def _derive_entry_bin(anchor_minute: float, spec: FeatureSpec) -> int:
    clamped = int(np.clip(anchor_minute, 0, MINUTES_PER_DAY - 1))
    return discretize_entry(clamped)


class TimeBasedAttack(InversionAttack):
    """Smart enumeration using cross-sequence time correlation.

    Parameters
    ----------
    candidate_locations:
        Pruned locations of interest (from ``prune_locations``); ``None``
        enumerates the full domain.
    a3_entry_stride / a3_duration_stride:
        Grid coarsening for the doubly-missing A3 adversary, which must
        additionally enumerate the anchor entry time.
    """

    name = "time-based"

    def __init__(
        self,
        candidate_locations: Optional[np.ndarray] = None,
        entry_slack: int = 1,
        a3_entry_stride: int = 4,
        a3_duration_stride: int = 4,
        tie_break: str = "id",
    ) -> None:
        self.candidate_locations = candidate_locations
        self.entry_slack = entry_slack
        self.a3_entry_stride = a3_entry_stride
        self.a3_duration_stride = a3_duration_stride
        self.tie_break = tie_break

    def _entry_candidates(self, anchor_minute: float, spec: FeatureSpec) -> np.ndarray:
        """Derived entry bin ± slack.

        Discretization makes the continuity arithmetic inexact (bin starts
        vs. bin midpoints can disagree by up to one 30-minute bin), so the
        attack hedges with a small window around the derived bin.
        """
        center = _derive_entry_bin(anchor_minute, spec)
        lo = max(0, center - self.entry_slack)
        hi = min(spec.entry_bins - 1, center + self.entry_slack)
        return np.arange(lo, hi + 1)

    # ------------------------------------------------------------------
    def reconstruct(
        self,
        instance: AttackInstance,
        predictor: NextLocationPredictor,
        prior: np.ndarray,
    ) -> Tuple[Dict[int, Reconstruction], int]:
        if instance.missing == (T_MINUS_1,):
            return self._attack_missing_t1(instance, predictor, prior)
        if instance.missing == (T_MINUS_2,):
            return self._attack_missing_t2(instance, predictor, prior)
        return self._attack_missing_both(instance, predictor, prior)

    def _locations(self, spec: FeatureSpec) -> np.ndarray:
        if self.candidate_locations is None:
            return np.arange(spec.num_locations)
        return np.asarray(self.candidate_locations)

    # ------------------------------------------------------------------
    # A1: x_{t-2} known, x_{t-1} missing
    # ------------------------------------------------------------------
    def _attack_missing_t1(
        self,
        instance: AttackInstance,
        predictor: NextLocationPredictor,
        prior: np.ndarray,
    ) -> Tuple[Dict[int, Reconstruction], int]:
        spec = predictor.spec
        known = instance.known[T_MINUS_2]
        # Continuity: the missing session starts when the known one ends.
        entries = self._entry_candidates(
            entry_bin_to_minute(known.entry_bin) + duration_bin_to_minute(known.duration_bin),
            spec,
        )
        locations = self._locations(spec)
        durations = np.arange(spec.duration_bins)
        entry_grid, duration_grid, location_grid = (
            arr.ravel() for arr in np.meshgrid(entries, durations, locations, indexing="ij")
        )
        return self._score_single_step(
            instance, predictor, prior, T_MINUS_1, entry_grid, duration_grid, location_grid
        )

    # ------------------------------------------------------------------
    # A2: x_{t-1} known, x_{t-2} missing
    # ------------------------------------------------------------------
    def _attack_missing_t2(
        self,
        instance: AttackInstance,
        predictor: NextLocationPredictor,
        prior: np.ndarray,
    ) -> Tuple[Dict[int, Reconstruction], int]:
        spec = predictor.spec
        known = instance.known[T_MINUS_1]
        locations = self._locations(spec)
        durations = np.arange(spec.duration_bins)
        duration_grid, location_grid = (
            arr.ravel() for arr in np.meshgrid(durations, locations, indexing="ij")
        )
        # Continuity solved for the earlier step: e_{t-2} = e_{t-1} - d_{t-2},
        # where d_{t-2} is the enumerated candidate duration.  The ± slack
        # window around each derived bin hedges discretization error.
        anchor = entry_bin_to_minute(known.entry_bin)
        slack = np.arange(-self.entry_slack, self.entry_slack + 1)
        derived = np.array(
            [
                _derive_entry_bin(anchor - duration_bin_to_minute(d), spec)
                for d in duration_grid
            ]
        )
        entry_grid = np.clip(
            (derived[:, None] + slack[None, :]), 0, spec.entry_bins - 1
        ).ravel()
        duration_grid = np.repeat(duration_grid, len(slack))
        location_grid = np.repeat(location_grid, len(slack))
        return self._score_single_step(
            instance, predictor, prior, T_MINUS_2, entry_grid, duration_grid, location_grid
        )

    def _score_single_step(
        self,
        instance: AttackInstance,
        predictor: NextLocationPredictor,
        prior: np.ndarray,
        step: int,
        entry_grid: np.ndarray,
        duration_grid: np.ndarray,
        location_grid: np.ndarray,
    ) -> Tuple[Dict[int, Reconstruction], int]:
        n = len(location_grid)
        batch = encode_candidates(
            predictor.spec,
            instance.known,
            {step: {"entry": entry_grid, "duration": duration_grid, "location": location_grid}},
            instance.day_of_week,
            n,
        )
        confidence = query_output_confidence(predictor, batch, instance.observed_output)
        scores = confidence * prior[location_grid]
        ranked, ranked_scores = rank_locations(location_grid, scores, prior, self.tie_break)
        recon = Reconstruction(step=step, ranked_locations=ranked, scores=ranked_scores)
        return {step: recon}, n

    # ------------------------------------------------------------------
    # A3: both timesteps missing
    # ------------------------------------------------------------------
    def _attack_missing_both(
        self,
        instance: AttackInstance,
        predictor: NextLocationPredictor,
        prior: np.ndarray,
    ) -> Tuple[Dict[int, Reconstruction], int]:
        spec = predictor.spec
        locations = self._locations(spec)
        durations = np.arange(0, spec.duration_bins, self.a3_duration_stride)
        entries = np.arange(0, spec.entry_bins, self.a3_entry_stride)

        e2, d2, l2, d1, l1 = (
            arr.ravel()
            for arr in np.meshgrid(entries, durations, locations, durations, locations, indexing="ij")
        )
        # Continuity chains the derived step-1 entry off the enumerated
        # step-2 candidate: e_{t-1} = e_{t-2} + d_{t-2}.
        e1 = np.array(
            [
                _derive_entry_bin(entry_bin_to_minute(e) + duration_bin_to_minute(d), spec)
                for e, d in zip(e2, d2)
            ]
        )
        n = len(l1)
        batch = encode_candidates(
            spec,
            instance.known,
            {
                T_MINUS_2: {"entry": e2, "duration": d2, "location": l2},
                T_MINUS_1: {"entry": e1, "duration": d1, "location": l1},
            },
            instance.day_of_week,
            n,
        )
        confidence = query_output_confidence(predictor, batch, instance.observed_output)
        joint = confidence * prior[l2] * prior[l1]
        ranked_2, scores_2 = rank_locations(l2, joint, prior, self.tie_break)
        ranked_1, scores_1 = rank_locations(l1, joint, prior, self.tie_break)
        return (
            {
                T_MINUS_2: Reconstruction(T_MINUS_2, ranked_2, scores_2),
                T_MINUS_1: Reconstruction(T_MINUS_1, ranked_1, scores_1),
            },
            n,
        )
