"""``repro.attacks`` — time-series model-inversion attacks (paper §III-B).

Three attack methods (brute force, gradient descent with temperature
softening, time-based enumeration), three adversary classes (A1/A2/A3),
four prior-knowledge modes, plus candidate pruning and population-level
attack evaluation.

Enumeration attacks split into a *plan* (the candidate probe grids, pure
adversary-side knowledge) and shared *query/score* machinery — which is
what lets :mod:`repro.attacks.fleet_adversary` ship the identical probes
through the fleet serving stack (DESIGN.md §10) instead of querying a
bare predictor, with bit-identical reconstruction rankings.
"""

from repro.attacks.adversary import (
    T_MINUS_1,
    T_MINUS_2,
    AdversaryClass,
    AttackInstance,
    build_instance,
    build_instances,
)
from repro.attacks.base import (
    AttackOutput,
    EnumerationAttack,
    InversionAttack,
    ProbePlan,
    Reconstruction,
    encode_candidates,
    query_output_confidence,
    rank_locations,
)
from repro.attacks.brute_force import BruteForceAttack
from repro.attacks.candidates import (
    DEFAULT_CONFIDENCE_THRESHOLD,
    SearchSpace,
    prune_locations,
)
from repro.attacks.gradient import GradientAttackConfig, GradientDescentAttack
from repro.attacks.priors import (
    PriorMethod,
    build_prior,
    estimated_prior,
    predicted_prior,
    true_prior,
    uniform_prior,
)
from repro.attacks.fleet_adversary import (
    AuditAdversary,
    AuditTarget,
    ProbeBatch,
    run_fleet_audit,
    run_fleet_audit_looped,
)
from repro.attacks.runner import (
    AttackEvaluation,
    UserAttackResult,
    attack_user,
    evaluate_attack,
)
from repro.attacks.time_based import TimeBasedAttack

__all__ = [
    "AdversaryClass",
    "AttackEvaluation",
    "AttackInstance",
    "AttackOutput",
    "AuditAdversary",
    "AuditTarget",
    "BruteForceAttack",
    "DEFAULT_CONFIDENCE_THRESHOLD",
    "EnumerationAttack",
    "GradientAttackConfig",
    "GradientDescentAttack",
    "InversionAttack",
    "PriorMethod",
    "ProbeBatch",
    "ProbePlan",
    "Reconstruction",
    "SearchSpace",
    "T_MINUS_1",
    "T_MINUS_2",
    "TimeBasedAttack",
    "UserAttackResult",
    "attack_user",
    "build_instance",
    "build_instances",
    "build_prior",
    "encode_candidates",
    "estimated_prior",
    "evaluate_attack",
    "predicted_prior",
    "prune_locations",
    "query_output_confidence",
    "rank_locations",
    "run_fleet_audit",
    "run_fleet_audit_looped",
    "true_prior",
    "uniform_prior",
]
