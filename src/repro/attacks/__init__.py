"""``repro.attacks`` — time-series model-inversion attacks (paper §III-B).

Three attack methods (brute force, gradient descent with temperature
softening, time-based enumeration), three adversary classes (A1/A2/A3),
four prior-knowledge modes, plus candidate pruning and population-level
attack evaluation.
"""

from repro.attacks.adversary import (
    T_MINUS_1,
    T_MINUS_2,
    AdversaryClass,
    AttackInstance,
    build_instance,
    build_instances,
)
from repro.attacks.base import (
    AttackOutput,
    InversionAttack,
    Reconstruction,
    encode_candidates,
    query_output_confidence,
    rank_locations,
)
from repro.attacks.brute_force import BruteForceAttack
from repro.attacks.candidates import (
    DEFAULT_CONFIDENCE_THRESHOLD,
    SearchSpace,
    prune_locations,
)
from repro.attacks.gradient import GradientAttackConfig, GradientDescentAttack
from repro.attacks.priors import (
    PriorMethod,
    build_prior,
    estimated_prior,
    predicted_prior,
    true_prior,
    uniform_prior,
)
from repro.attacks.runner import (
    AttackEvaluation,
    UserAttackResult,
    attack_user,
    evaluate_attack,
)
from repro.attacks.time_based import TimeBasedAttack

__all__ = [
    "AdversaryClass",
    "AttackEvaluation",
    "AttackInstance",
    "AttackOutput",
    "BruteForceAttack",
    "DEFAULT_CONFIDENCE_THRESHOLD",
    "GradientAttackConfig",
    "GradientDescentAttack",
    "InversionAttack",
    "PriorMethod",
    "Reconstruction",
    "SearchSpace",
    "T_MINUS_1",
    "T_MINUS_2",
    "TimeBasedAttack",
    "UserAttackResult",
    "attack_user",
    "build_instance",
    "build_instances",
    "build_prior",
    "encode_candidates",
    "estimated_prior",
    "evaluate_attack",
    "predicted_prior",
    "prune_locations",
    "query_output_confidence",
    "rank_locations",
    "true_prior",
    "uniform_prior",
]
