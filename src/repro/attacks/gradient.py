"""Gradient-descent model inversion with temperature softening (§III-B2).

"Since deep learning models learn a differentiable mapping between the
input and the output, it is also possible to reconstruct the input using
the output through backpropagation and gradient descent."

Each missing timestep is parameterized by unconstrained logits per feature
block (entry / duration / location); a temperature-scaled softmax relaxes
the discrete one-hot inputs to a continuous simplex so gradient descent can
move them, and the temperature is annealed toward 0 during optimization to
harden the relaxation back to (approximately) one-hot.

The paper finds this method substantially *weaker* than enumeration for
mobility data (Fig 2a: <16% accuracy) — large discrete location domains
reconstruct poorly through continuous relaxation — and our reproduction
preserves that qualitative gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.attacks.adversary import AttackInstance
from repro.attacks.base import InversionAttack, Reconstruction, window_steps
from repro.data.features import FeatureSpec
from repro.models.predictor import NextLocationPredictor
from repro.nn import Adam, CrossEntropyLoss, Parameter, Tensor, concat, softmax
from repro.nn.functional import softmax_np


@dataclass
class GradientAttackConfig:
    """Optimization hyperparameters for the reconstruction loop
    (paper §III-B2; the gradient rows of Table II / Fig 2a)."""

    iterations: int = 120
    learning_rate: float = 0.3
    start_temperature: float = 1.0
    end_temperature: float = 0.1


class GradientDescentAttack(InversionAttack):
    """Backprop-to-input reconstruction of the missing timestep(s)
    (paper §III-B2; the weakest Fig 2a method, <16% accuracy).

    Requires gradient access to the model (the provider holds the model
    file under cloud deployment), unlike the enumeration attacks which are
    purely black-box — which is also why it cannot run as a fleet audit
    workload (DESIGN.md §10): the serving stack only ever exposes the
    black-box confidence surface.
    """

    name = "gradient descent"

    def __init__(self, config: GradientAttackConfig | None = None, seed: int = 0) -> None:
        self.config = config or GradientAttackConfig()
        self._rng = np.random.default_rng(seed)

    def reconstruct(
        self,
        instance: AttackInstance,
        predictor: NextLocationPredictor,
        prior: np.ndarray,
    ) -> Tuple[Dict[int, Reconstruction], int]:
        spec = predictor.spec
        model = predictor.model
        model.eval()  # graph still records gradients; only dropout is off
        cfg = self.config

        # Unconstrained logits per missing step and per feature block.
        block_sizes = {
            "entry": spec.entry_bins,
            "duration": spec.duration_bins,
            "location": spec.num_locations,
        }
        variables: Dict[int, Dict[str, Parameter]] = {
            step: {
                name: Parameter(self._rng.normal(0.0, 0.01, size=(1, size)))
                for name, size in block_sizes.items()
            }
            for step in instance.missing
        }
        known_rows = {
            step: Tensor(spec.encode(features)[None, :])
            for step, features in instance.known.items()
        }
        day_row = np.zeros((1, spec.days))
        day_row[0, instance.day_of_week] = 1.0
        day_tensor = Tensor(day_row)

        # The window length comes from the instance, not a hardcoded
        # constant: A3-style multi-step windows must not silently truncate.
        steps = window_steps(instance.known, instance.missing)

        params = [p for step_vars in variables.values() for p in step_vars.values()]
        optimizer = Adam(params, lr=cfg.learning_rate)
        loss_fn = CrossEntropyLoss()
        target = np.array([instance.observed_output])

        temperatures = np.geomspace(
            cfg.start_temperature, cfg.end_temperature, cfg.iterations
        )
        # Only the attack variables are optimized; freezing the model's
        # parameters for the loop lets the fused backward skip every
        # weight-gradient GEMM (iterations x instances of dead work).
        # Flags are restored exactly — personalized models are partially
        # frozen already.
        saved_flags = [(p, p.requires_grad) for p in model.parameters()]
        for p, _ in saved_flags:
            p.requires_grad = False
        queries = 0
        try:
            for temperature in temperatures:
                optimizer.zero_grad()
                rows = []
                for step in steps:
                    if step in variables:
                        soft = [
                            softmax(variables[step][name], axis=-1, temperature=float(temperature))
                            for name in ("entry", "duration", "location")
                        ]
                        rows.append(concat([*soft, day_tensor], axis=-1))
                    else:
                        rows.append(known_rows[step])
                window = concat([r.reshape(1, 1, spec.width) for r in rows], axis=1)
                logits = model(window)
                loss = loss_fn(logits, target)
                loss.backward()
                optimizer.step()
                queries += 1
        finally:
            for p, flag in saved_flags:
                p.requires_grad = flag

        reconstructions: Dict[int, Reconstruction] = {}
        for step, step_vars in variables.items():
            loc_probs = softmax_np(step_vars["location"].data[0], temperature=cfg.end_temperature)
            scores = loc_probs * prior
            order = np.lexsort((np.arange(spec.num_locations), -prior, -scores))
            reconstructions[step] = Reconstruction(
                step=step, ranked_locations=order, scores=scores[order]
            )
        return reconstructions, queries
