"""Open-loop traffic generation (DESIGN.md §15).

Every serving layer so far is driven by hand-built
:class:`~repro.pelican.clock.FleetSchedule`\\ s — "heavy traffic" is a
schedule file, not a measured scenario.  This module compiles a *traffic
model* into a schedule instead: seeded Poisson arrivals per simulated
device, diurnal rate curves, flash-crowd bursts, and onboard/update
churn.  The output is an ordinary ``FleetSchedule``, so generated load
flows through every existing axis (chaos, resilience, stacked dispatch,
worker processes, blob stores) unchanged, and through the service front
door (:mod:`repro.pelican.service`) for admission control and latency
accounting.

The generator is **open-loop**: arrival times never depend on how fast
the system answers, which is the standard discipline for latency
measurement (closed-loop clients hide queueing delay by slowing down
with the server).

Determinism contract — the same one chaos and resilience draws follow:
every random decision comes from ``default_rng((seed, stream, *keys))``
with stream ids disjoint from the chaos layer's 1–6 and the resilience
layer's 7–9.  Arrival streams are keyed per ``(user, device)``, flash
streams per ``(crowd, user, device)``, update draws per ``user`` — so

* the same config compiles to the *identical* schedule every time;
* changing one regime entry's knobs only changes events of the users
  assigned to that entry (other users' streams never see the change);
* adding a flash crowd adds events strictly inside its window and
  leaves every base arrival bit-identical.

"Users" here are the onboarded personal users; ``devices_per_user``
multiplexes each user over that many independently-arriving simulated
devices, which is how a small trained population stands in for a large
request population without retraining anything.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.pelican.clock import FleetSchedule
from repro.pelican.deployment import DeploymentMode

# Stable stream ids for per-decision RNG derivation, disjoint from the
# chaos layer's 1–6 and the resilience layer's 7–9.  Never renumber:
# committed golden runs depend on them.
_STREAM_ARRIVALS = 21
_STREAM_FLASH = 22
_STREAM_UPDATES = 23

# Event-kind ranks used to break exact time ties during compilation, so
# the schedule's seq assignment is a pure function of the config.
_RANK_ONBOARD = 0
_RANK_UPDATE = 1
_RANK_QUERY = 2


@dataclass(frozen=True)
class RegimeTraffic:
    """Arrival model for one slice of the user population.

    ``regime`` names the :data:`~repro.data.regimes.REGIMES` mobility
    preset this traffic slice represents (informational — the corpus
    decides actual mobility; the name keys flash-crowd targeting and
    reporting).  ``rate`` is the mean arrivals per device per simulated
    second; the diurnal knobs modulate it sinusoidally:
    ``rate(t) = rate * (1 + amplitude * sin(2π(t/period + phase)))``,
    clipped at zero.  ``amplitude == 0`` or ``period == 0`` keeps the
    rate flat.
    """

    regime: str = "campus"
    rate: float = 0.02
    diurnal_amplitude: float = 0.0
    diurnal_period: float = 0.0
    diurnal_phase: float = 0.0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("arrival rate must be >= 0")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError("diurnal amplitude must be in [0, 1]")

    def rate_at(self, t: float) -> float:
        """The instantaneous arrival rate at traffic time ``t``."""
        if self.diurnal_amplitude <= 0.0 or self.diurnal_period <= 0.0:
            return self.rate
        modulated = self.rate * (
            1.0
            + self.diurnal_amplitude
            * math.sin(2.0 * math.pi * (t / self.diurnal_period + self.diurnal_phase))
        )
        return max(0.0, modulated)

    @property
    def rate_max(self) -> float:
        """Upper envelope of :meth:`rate_at` (the thinning proposal rate)."""
        if self.diurnal_amplitude <= 0.0 or self.diurnal_period <= 0.0:
            return self.rate
        return self.rate * (1.0 + self.diurnal_amplitude)


@dataclass(frozen=True)
class FlashCrowd:
    """A burst of extra traffic inside one time window.

    An independent homogeneous Poisson stream at ``rate`` extra arrivals
    per device per second, superposed on the base process for every
    device whose regime entry's name is in ``regimes`` (empty = all).
    Burst arrivals fall strictly inside ``(start, start + duration)`` in
    traffic time, and superposition means the base arrivals are
    bit-identical with or without the crowd.
    """

    start: float
    duration: float
    rate: float
    regimes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("flash-crowd duration must be > 0")
        if self.rate <= 0:
            raise ValueError("flash-crowd rate must be > 0")

    def applies_to(self, regime: str) -> bool:
        return not self.regimes or regime in self.regimes


@dataclass(frozen=True)
class TrafficConfig:
    """One compilable traffic model.

    ``horizon`` is the length of the arrival window in simulated
    seconds (traffic time ``[0, horizon)``).  With
    ``include_onboards`` the compiled schedule first onboards every
    user — one event every ``onboard_spacing`` seconds, alternating
    cloud/local deployment like the fleet workload builder — and the
    whole arrival window shifts past the last onboard, so no query ever
    precedes its user's onboarding.  ``update_prob`` gives each user an
    independent seeded chance of one mid-run incremental update (churn).
    """

    seed: int = 0
    horizon: float = 600.0
    regimes: Tuple[RegimeTraffic, ...] = (RegimeTraffic(),)
    flash_crowds: Tuple[FlashCrowd, ...] = ()
    devices_per_user: int = 1
    include_onboards: bool = False
    onboard_spacing: float = 10.0
    update_prob: float = 0.0
    k: int = 3

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("traffic horizon must be > 0")
        if not self.regimes:
            raise ValueError("at least one RegimeTraffic entry is required")
        if self.devices_per_user < 1:
            raise ValueError("devices_per_user must be >= 1")
        if not 0.0 <= self.update_prob <= 1.0:
            raise ValueError("update_prob must be in [0, 1]")


class TrafficGenerator:
    """Compiles a :class:`TrafficConfig` into a :class:`FleetSchedule`.

    Stateless between calls: :meth:`compile` is a pure function of the
    config and its inputs, so the same seed always yields the identical
    schedule (times, payload choices, and seq assignment included).
    """

    def __init__(self, config: TrafficConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------
    def assignments(self, user_ids: Sequence[int]) -> Dict[int, RegimeTraffic]:
        """Partition users across the config's regime entries.

        Assignment is by sorted position (round-robin), independent of
        any entry's knob values — so tweaking one regime's rate can
        never reassign another regime's users.
        """
        entries = self.config.regimes
        return {
            uid: entries[i % len(entries)]
            for i, uid in enumerate(sorted(user_ids))
        }

    def horizon_start(self, num_users: int) -> float:
        """Traffic time 0 in schedule time: past the onboard ramp."""
        if not self.config.include_onboards:
            return 0.0
        return num_users * self.config.onboard_spacing

    # ------------------------------------------------------------------
    def compile(
        self,
        windows: Mapping[int, Sequence[Any]],
        onboard_data: Optional[Mapping[int, Any]] = None,
        update_data: Optional[Mapping[int, Any]] = None,
    ) -> FleetSchedule:
        """Compile the traffic model over a user population.

        ``windows`` maps each user id to its pool of query payloads
        (history tuples — typically the user's held-out windows); each
        arrival draws one from its own stream.  ``onboard_data`` /
        ``update_data`` map user ids to the datasets lifecycle events
        carry; they are required exactly when ``include_onboards`` /
        ``update_prob > 0`` ask for those events.
        """
        cfg = self.config
        user_ids = sorted(windows)
        if not user_ids:
            raise ValueError("compile needs at least one user")
        for uid in user_ids:
            if not len(windows[uid]):
                raise ValueError(f"user {uid} has no query payload windows")
        if cfg.include_onboards and onboard_data is None:
            raise ValueError("include_onboards=True needs onboard_data")
        if cfg.update_prob > 0 and update_data is None:
            raise ValueError("update_prob > 0 needs update_data")

        assigned = self.assignments(user_ids)
        start = self.horizon_start(len(user_ids))
        # (time, rank, user, device, ordinal, emit) rows; the key makes
        # the sort — and therefore seq assignment — total and config-pure.
        rows: List[Tuple[float, int, int, int, int, Any]] = []

        if cfg.include_onboards:
            for i, uid in enumerate(user_ids):
                mode = DeploymentMode.CLOUD if i % 2 else DeploymentMode.LOCAL
                rows.append(
                    (
                        i * cfg.onboard_spacing,
                        _RANK_ONBOARD,
                        uid,
                        0,
                        0,
                        ("onboard", onboard_data[uid], mode),
                    )
                )

        for uid in user_ids:
            entry = assigned[uid]
            pool = windows[uid]
            for device in range(cfg.devices_per_user):
                for ordinal, (t, history) in enumerate(
                    self._device_arrivals(entry, uid, device, pool)
                ):
                    rows.append(
                        (start + t, _RANK_QUERY, uid, device, ordinal, ("query", history))
                    )
                for crowd_index, crowd in enumerate(cfg.flash_crowds):
                    if not crowd.applies_to(entry.regime):
                        continue
                    for ordinal, (t, history) in enumerate(
                        self._flash_arrivals(crowd, crowd_index, uid, device, pool)
                    ):
                        rows.append(
                            (
                                start + t,
                                _RANK_QUERY,
                                uid,
                                device,
                                # Disjoint ordinal space per crowd keeps the
                                # sort key unique against base arrivals.
                                (crowd_index + 1) * 1_000_000 + ordinal,
                                ("query", history),
                            )
                        )

        if cfg.update_prob > 0:
            for uid in user_ids:
                rng = np.random.default_rng((cfg.seed, _STREAM_UPDATES, uid))
                if rng.random() < cfg.update_prob:
                    rows.append(
                        (
                            start + float(rng.uniform(0.0, cfg.horizon)),
                            _RANK_UPDATE,
                            uid,
                            0,
                            0,
                            ("update", update_data[uid]),
                        )
                    )

        rows.sort(key=lambda row: row[:5])
        schedule = FleetSchedule()
        for time, _rank, uid, _device, _ordinal, emit in rows:
            if emit[0] == "query":
                schedule.query(time, uid, emit[1], k=cfg.k)
            elif emit[0] == "update":
                schedule.update(time, uid, emit[1])
            else:
                schedule.onboard(time, uid, emit[1], deployment=emit[2])
        return schedule

    # ------------------------------------------------------------------
    def _device_arrivals(
        self,
        entry: RegimeTraffic,
        user_id: int,
        device: int,
        pool: Sequence[Any],
    ) -> List[Tuple[float, Any]]:
        """Base arrivals of one device: a thinned Poisson process.

        Non-homogeneous rates sample by thinning against the
        ``rate_max`` envelope: propose homogeneous arrivals at
        ``rate_max``, accept each with probability
        ``rate_at(t) / rate_max``.  With a flat rate every proposal is
        accepted (the acceptance draw is still consumed, keeping the
        stream layout identical across amplitudes).  The payload window
        is drawn from the *same* stream right after acceptance, so a
        device's arrivals are one self-contained draw sequence.
        """
        cfg = self.config
        rate_max = entry.rate_max
        if rate_max <= 0.0:
            return []
        rng = np.random.default_rng((cfg.seed, _STREAM_ARRIVALS, user_id, device))
        arrivals: List[Tuple[float, Any]] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate_max))
            if t >= cfg.horizon:
                break
            if float(rng.random()) * rate_max <= entry.rate_at(t):
                arrivals.append((t, pool[int(rng.integers(0, len(pool)))]))
        return arrivals

    def _flash_arrivals(
        self,
        crowd: FlashCrowd,
        crowd_index: int,
        user_id: int,
        device: int,
        pool: Sequence[Any],
    ) -> List[Tuple[float, Any]]:
        """One device's share of a flash crowd: homogeneous arrivals
        strictly inside the crowd window, from the crowd's own stream —
        superposition leaves base arrivals untouched."""
        cfg = self.config
        rng = np.random.default_rng(
            (cfg.seed, _STREAM_FLASH, crowd_index, user_id, device)
        )
        arrivals: List[Tuple[float, Any]] = []
        t = crowd.start
        end = crowd.start + crowd.duration
        while True:
            t += float(rng.exponential(1.0 / crowd.rate))
            if t >= end:
                break
            arrivals.append((t, pool[int(rng.integers(0, len(pool)))]))
        return arrivals
