"""Open-loop traffic generation for the serving stack (DESIGN.md §15).

Compiles (regime, arrival model) traffic descriptions into ordinary
:class:`~repro.pelican.clock.FleetSchedule`\\ s: seeded Poisson arrivals
per simulated device, diurnal rate curves, flash-crowd bursts, and
onboard/update churn — all bit-deterministic from one seed.
"""

from repro.traffic.generator import (
    FlashCrowd,
    RegimeTraffic,
    TrafficConfig,
    TrafficGenerator,
)

__all__ = [
    "FlashCrowd",
    "RegimeTraffic",
    "TrafficConfig",
    "TrafficGenerator",
]
