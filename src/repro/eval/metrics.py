"""Evaluation metrics shared across experiments."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.models.predictor import NextLocationPredictor


def top_k_accuracy_series(
    predictor: NextLocationPredictor,
    X: np.ndarray,
    y: np.ndarray,
    ks: Sequence[int] = (1, 2, 3),
) -> Dict[int, float]:
    """Top-k accuracy for several k at once."""
    return {k: predictor.top_k_accuracy(X, y, k) for k in ks}


def overfit_gap(train_accuracy: float, test_accuracy: float) -> float:
    """The paper's overfitting measure: train/test accuracy discrepancy."""
    return train_accuracy - test_accuracy


def percent(value: float) -> float:
    """Convert a [0, 1] fraction to the paper's percentage convention."""
    return 100.0 * value
