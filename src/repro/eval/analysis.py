"""Statistical analysis: the paper's regression/correlation studies.

Figures 3b and 3c back their claims with correlation coefficients and
p-values ("correlation coefficients are weak, 0.337 and 0.107 for building
and AP level"; "strong correlation coefficient of 0.804").  We reproduce
that analysis with :func:`scipy.stats.pearsonr`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class CorrelationResult:
    """Pearson correlation between a user covariate and attack accuracy."""

    coefficient: float
    p_value: float
    n: int

    def is_significant(self, alpha: float = 0.05) -> bool:
        """Whether the correlation is significant at level ``alpha``."""
        return bool(self.p_value <= alpha)


def pearson(x: Sequence[float], y: Sequence[float]) -> CorrelationResult:
    """Pearson r between two paired samples (NaNs dropped pairwise)."""
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    if x_arr.shape != y_arr.shape:
        raise ValueError(f"paired samples must match: {x_arr.shape} vs {y_arr.shape}")
    mask = ~(np.isnan(x_arr) | np.isnan(y_arr))
    x_arr, y_arr = x_arr[mask], y_arr[mask]
    if len(x_arr) < 3:
        return CorrelationResult(coefficient=float("nan"), p_value=float("nan"), n=len(x_arr))
    if np.std(x_arr) == 0 or np.std(y_arr) == 0:
        return CorrelationResult(coefficient=0.0, p_value=1.0, n=len(x_arr))
    r, p = stats.pearsonr(x_arr, y_arr)
    return CorrelationResult(coefficient=float(r), p_value=float(p), n=len(x_arr))


@dataclass
class ScatterStudy:
    """A per-user covariate-vs-attack-accuracy study (Fig 3b / 3c)."""

    covariate_name: str
    points: Dict[int, Tuple[float, float]]
    """user_id -> (covariate value, attack accuracy)."""

    def correlation(self) -> CorrelationResult:
        xs = [v for v, _ in self.points.values()]
        ys = [a for _, a in self.points.values()]
        return pearson(xs, ys)
