"""Cached reproduction pipeline: corpus -> general models -> personal models.

Every experiment (Tables II-IV, Figures 2/3/5) needs the same expensive
artifacts — the corpus, a general model per spatial level, and personalized
models per (user, level, method, training-weeks).  :class:`Pipeline` builds
them lazily and memoizes, so a benchmark session that regenerates several
figures only trains each model once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.attacks.candidates import prune_locations
from repro.attacks.priors import PriorMethod, build_prior
from repro.data.corpus import MobilityCorpus, generate_corpus
from repro.data.dataset import SequenceDataset
from repro.data.features import FeatureSpec, SpatialLevel
from repro.eval.config import ExperimentScale
from repro.models.architecture import NextLocationModel
from repro.models.general import train_general_model
from repro.models.personalize import PersonalizationMethod, personalize
from repro.models.predictor import NextLocationPredictor
from repro.nn import dtype_policy


@dataclass
class PersonalArtifact:
    """A user's personalized model with its train/test datasets."""

    user_id: int
    level: SpatialLevel
    method: PersonalizationMethod
    model: NextLocationModel
    train: SequenceDataset
    test: SequenceDataset

    def predictor(
        self, spec: FeatureSpec, temperature: Optional[float] = None
    ) -> NextLocationPredictor:
        """A black-box predictor; a positive temperature enables the
        privacy layer on an independent copy, leaving the cached model
        undefended for before/after comparisons."""
        if temperature is None:
            return NextLocationPredictor(self.model, spec)
        defended = self.model.copy(np.random.default_rng(0))
        defended.set_privacy_temperature(temperature)
        return NextLocationPredictor(defended, spec)


@dataclass
class AttackTarget:
    """Everything an attack needs for one user."""

    user_id: int
    predictor: NextLocationPredictor
    windows: SequenceDataset
    prior: np.ndarray
    pruned_locations: np.ndarray


class Pipeline:
    """Lazily builds and memoizes all reproduction artifacts."""

    def __init__(self, scale: ExperimentScale) -> None:
        self.scale = scale
        self._corpus: Optional[MobilityCorpus] = None
        self._general: Dict[SpatialLevel, Tuple[NextLocationModel, SequenceDataset, SequenceDataset]] = {}
        self._personal: Dict[Tuple[int, SpatialLevel, PersonalizationMethod, Optional[int]], PersonalArtifact] = {}

    # ------------------------------------------------------------------
    @property
    def corpus(self) -> MobilityCorpus:
        if self._corpus is None:
            self._corpus = generate_corpus(self.scale.corpus)
        return self._corpus

    def spec(self, level: SpatialLevel) -> FeatureSpec:
        return self.corpus.spec(level)

    def attack_users(self) -> List[int]:
        return self.corpus.personal_ids[: self.scale.max_attack_users]

    # ------------------------------------------------------------------
    def general(
        self, level: SpatialLevel
    ) -> Tuple[NextLocationModel, SequenceDataset, SequenceDataset]:
        """The general model plus its pooled train/test splits."""
        if level not in self._general:
            # Models are built lazily under a SCOPED dtype policy: each
            # pipeline's artifacts get its own dtype without leaking the
            # policy into ambient code (parameters are cast at creation
            # time, DESIGN.md §5).
            with dtype_policy(self.scale.dtype):
                pooled = self.corpus.contributor_dataset(level)
                train, test = pooled.split_by_user(0.8)
                rng = np.random.default_rng(self.scale.corpus.seed + 100)
                model, _ = train_general_model(train, self.scale.general, rng)
            self._general[level] = (model, train, test)
        return self._general[level]

    def personal(
        self,
        user_id: int,
        level: SpatialLevel,
        method: PersonalizationMethod = PersonalizationMethod.TL_FE,
        train_weeks: Optional[int] = None,
    ) -> PersonalArtifact:
        """Personalized model for one user (memoized).

        ``train_weeks`` limits the personal training data (Table IV); the
        test split always comes from the full 80/20 chronological split so
        different training sizes are evaluated on identical test windows.
        """
        key = (user_id, level, method, train_weeks)
        if key not in self._personal:
            general_model, _, _ = self.general(level)
            dataset = self.corpus.user_dataset(user_id, level)
            train, test = dataset.split(0.8)
            if train_weeks is not None:
                train = train.limit_weeks(train_weeks)
            rng = np.random.default_rng(self.scale.corpus.seed + 1000 + user_id)
            with dtype_policy(self.scale.dtype):
                model, _ = personalize(
                    general_model, train, method, self.scale.personalization, rng
                )
            self._personal[key] = PersonalArtifact(
                user_id=user_id, level=level, method=method, model=model, train=train, test=test
            )
        return self._personal[key]

    # ------------------------------------------------------------------
    def attack_target(
        self,
        user_id: int,
        level: SpatialLevel,
        method: PersonalizationMethod = PersonalizationMethod.TL_FE,
        prior_method: PriorMethod = PriorMethod.TRUE,
        temperature: Optional[float] = None,
    ) -> AttackTarget:
        """Assemble the adversary's view of one user.

        The prior and the pruned locations-of-interest are both derived
        from capabilities the threat model grants (training marginals for
        the TRUE upper bound; black-box probes otherwise).  Pruning probes
        go through the *same* (possibly defended) predictor the attack will
        query.
        """
        spec = self.spec(level)
        artifact = self.personal(user_id, level, method)
        predictor = artifact.predictor(spec, temperature)
        prior = build_prior(
            prior_method,
            spec.num_locations,
            train_dataset=artifact.train,
            predictor=predictor,
            probe_windows=artifact.test,
        )
        pruned = prune_locations(predictor, artifact.test)
        return AttackTarget(
            user_id=user_id,
            predictor=predictor,
            windows=artifact.test,
            prior=prior,
            pruned_locations=pruned,
        )

    def attack_targets(
        self,
        level: SpatialLevel,
        method: PersonalizationMethod = PersonalizationMethod.TL_FE,
        prior_method: PriorMethod = PriorMethod.TRUE,
        temperature: Optional[float] = None,
    ) -> Dict[int, AttackTarget]:
        """Attack targets for the whole personal population."""
        return {
            uid: self.attack_target(uid, level, method, prior_method, temperature)
            for uid in self.attack_users()
        }
