"""Service-load experiment: generated open-loop traffic through the
front door (DESIGN.md §15).

Stands up a trained serving stack at any scale, compiles a
:class:`~repro.traffic.TrafficConfig` (Poisson arrivals per simulated
device, optional diurnal curve and flash crowd, onboard/update churn)
into a schedule, and runs it through a
:class:`~repro.pelican.service.ServiceFrontDoor` — admission control,
micro-batching, and the latency/SLO book — over any combination of the
serving axes (chaos policy, resilience, shards, workers, stores,
stacked dispatch).  The ``serve-load`` CLI subcommand prints the
report; ``benchmarks/test_service_load.py`` pins the micro-batching
speedup.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.data.corpus import generate_corpus
from repro.data.features import SpatialLevel
from repro.eval.config import ExperimentScale
from repro.eval.fleet import training_configs
from repro.pelican.chaos import ChaosFleet, chaos_policy
from repro.pelican.cluster import Cluster
from repro.pelican.resilience import resilience_policy
from repro.pelican.service import ServiceConfig, ServiceFrontDoor
from repro.pelican.storage import make_blob_store
from repro.pelican.system import Pelican, PelicanConfig
from repro.traffic import FlashCrowd, RegimeTraffic, TrafficConfig, TrafficGenerator

LEVEL = SpatialLevel.BUILDING


@dataclass
class ServiceLoadResult:
    """Outcome of one generated service-load run."""

    scale: str
    regimes: Tuple[str, ...]
    num_users: int
    num_devices: int
    events: int
    policy: str
    resilience: str
    num_shards: int
    workers: int
    store: str
    stacked: bool
    wall_seconds: float
    #: The full front-door signature (fleet books + ``service_*`` overlay).
    signature: Dict[str, Any] = field(default_factory=dict)

    def _svc(self, key: str) -> Any:
        return self.signature[f"service_{key}"]

    @property
    def generated(self) -> int:
        return self._svc("generated")

    @property
    def answered(self) -> int:
        return self._svc("answered")

    @property
    def rejected(self) -> int:
        return self._svc("rejected")

    @property
    def shed(self) -> int:
        return self._svc("admitted") - self._svc("answered")

    @property
    def flushes(self) -> int:
        return self._svc("flushes")

    @property
    def mean_flush_size(self) -> float:
        return self._svc("admitted") / self.flushes if self.flushes else 0.0

    @property
    def p50(self) -> float:
        return self._svc("p50_latency")

    @property
    def p95(self) -> float:
        return self._svc("p95_latency")

    @property
    def p99(self) -> float:
        return self._svc("p99_latency")

    @property
    def slo_deadline(self) -> float:
        return self._svc("slo_deadline")

    @property
    def slo_attainment(self) -> float:
        return self._svc("slo_attainment")


def build_service_workload(
    scale: ExperimentScale,
    regimes: Sequence[str] = ("campus",),
    rate: float = 0.05,
    horizon: float = 120.0,
    devices_per_user: int = 4,
    diurnal_amplitude: float = 0.0,
    diurnal_period: float = 0.0,
    flash_rate: float = 0.0,
    flash_start: float = 0.0,
    flash_duration: float = 20.0,
    update_prob: float = 0.0,
    traffic_seed: Optional[int] = None,
    k: int = 3,
    fast_setup: bool = False,
):
    """Train a Pelican at ``scale`` and compile its generated workload.

    Returns ``(pelican, training_report, schedule, num_devices)`` —
    the trained orchestrator is *pristine* (no onboards; the schedule
    carries them), so callers can deepcopy it under any serving stack.
    """
    general, personalization = training_configs(scale, fast_setup)
    corpus = generate_corpus(scale.corpus)
    pelican = Pelican(
        corpus.spec(LEVEL),
        PelicanConfig(
            general=general,
            personalization=personalization,
            seed=scale.corpus.seed,
        ),
    )
    train, _ = corpus.contributor_dataset(LEVEL).split_by_user(0.8)
    training_report = pelican.initial_training(train)

    splits = {
        uid: corpus.user_dataset(uid, LEVEL).split(0.8) for uid in corpus.personal_ids
    }
    windows = {
        uid: [w.history for w in holdout.windows] for uid, (_, holdout) in splits.items()
    }
    flash_crowds: Tuple[FlashCrowd, ...] = ()
    if flash_rate > 0:
        flash_crowds = (
            FlashCrowd(start=flash_start, duration=flash_duration, rate=flash_rate),
        )
    traffic = TrafficConfig(
        seed=scale.corpus.seed if traffic_seed is None else traffic_seed,
        horizon=horizon,
        regimes=tuple(
            RegimeTraffic(
                regime=name,
                rate=rate,
                diurnal_amplitude=diurnal_amplitude,
                diurnal_period=diurnal_period,
            )
            for name in regimes
        ),
        flash_crowds=flash_crowds,
        devices_per_user=devices_per_user,
        include_onboards=True,
        update_prob=update_prob,
        k=k,
    )
    schedule = TrafficGenerator(traffic).compile(
        windows,
        onboard_data={uid: train for uid, (train, _) in splits.items()},
        update_data={uid: train for uid, (train, _) in splits.items()},
    )
    return pelican, training_report, schedule, len(splits) * devices_per_user


def run_service_load(
    scale: ExperimentScale,
    regimes: Sequence[str] = ("campus",),
    rate: float = 0.05,
    horizon: float = 120.0,
    devices_per_user: int = 4,
    diurnal_amplitude: float = 0.0,
    diurnal_period: float = 0.0,
    flash_rate: float = 0.0,
    flash_start: float = 0.0,
    flash_duration: float = 20.0,
    update_prob: float = 0.0,
    traffic_seed: Optional[int] = None,
    window: float = 0.05,
    max_batch: int = 16,
    queue_capacity: Optional[int] = 256,
    policy: str = "none",
    resilience: Optional[str] = None,
    deadline: Optional[float] = None,
    registry_capacity: Optional[int] = 64,
    num_shards: int = 1,
    placement: str = "hash",
    workers: int = 0,
    store: str = "memory",
    stacked: bool = False,
    fast_setup: bool = False,
) -> ServiceLoadResult:
    """One generated workload through the front door, end to end.

    The serving stack mirrors the scenario-matrix cell construction
    (:func:`repro.eval.scenarios.build_cell_fleet`) extended with the
    stacked/workers/store axes; traffic compiles once and replays
    deterministically, so the same arguments always produce the same
    ``signature`` (only ``wall_seconds`` varies).
    """
    pelican, training_report, schedule, num_devices = build_service_workload(
        scale,
        regimes=regimes,
        rate=rate,
        horizon=horizon,
        devices_per_user=devices_per_user,
        diurnal_amplitude=diurnal_amplitude,
        diurnal_period=diurnal_period,
        flash_rate=flash_rate,
        flash_start=flash_start,
        flash_duration=flash_duration,
        update_prob=update_prob,
        traffic_seed=traffic_seed,
        fast_setup=fast_setup,
    )
    res_policy = None
    if resilience is not None and resilience != "none":
        res_policy = resilience_policy(
            resilience, seed=scale.corpus.seed, deadline=deadline
        )
    cp = chaos_policy(policy, seed=scale.corpus.seed)
    if num_shards == 1:
        if workers:
            raise ValueError("workers > 0 requires num_shards > 1")
        fleet: Any = ChaosFleet(
            copy.deepcopy(pelican),
            cp,
            registry_capacity=registry_capacity,
            registry_store=make_blob_store(store),
            resilience=res_policy,
            stacked=stacked,
        )
        fleet.report.cloud_compute += training_report
    else:
        fleet = Cluster.from_trained(
            copy.deepcopy(pelican),
            num_shards=num_shards,
            placement=placement,
            registry_capacity=registry_capacity,
            policy=cp,
            resilience=res_policy,
            stacked=stacked,
            workers=workers,
            store=store,
        )
        fleet.report.training = fleet.report.training + training_report

    front = ServiceFrontDoor(
        fleet,
        ServiceConfig(
            window=window,
            max_batch=max_batch,
            queue_capacity=queue_capacity,
            deadline=deadline,
        ),
    )
    try:
        start = time.perf_counter()
        front.run(schedule)
        wall_seconds = time.perf_counter() - start
        signature = front.signature()
    finally:
        closer = getattr(fleet, "close", None)
        if closer is not None:
            closer()
        else:
            fleet_store = getattr(fleet, "_registry_store", None)
            store_closer = getattr(fleet_store, "close", None)
            if store_closer is not None:
                store_closer()

    return ServiceLoadResult(
        scale=scale.name,
        regimes=tuple(regimes),
        num_users=fleet.num_users,
        num_devices=num_devices,
        events=len(schedule),
        policy=policy,
        resilience=resilience or "none",
        num_shards=num_shards,
        workers=workers,
        store=store,
        stacked=stacked,
        wall_seconds=wall_seconds,
        signature=signature,
    )
