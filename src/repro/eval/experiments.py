"""One runner per paper table/figure (DESIGN.md §4 index).

Each function takes a :class:`~repro.eval.pipeline.Pipeline` and returns a
plain data structure holding the same rows/series the paper reports; the
``benchmarks/`` targets call these and print them via
:mod:`repro.eval.reporting`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.attacks.adversary import AdversaryClass
from repro.attacks.base import InversionAttack
from repro.attacks.brute_force import BruteForceAttack
from repro.attacks.gradient import GradientDescentAttack
from repro.attacks.priors import PriorMethod
from repro.attacks.runner import AttackEvaluation, attack_user
from repro.attacks.time_based import TimeBasedAttack
from repro.data.features import SpatialLevel
from repro.eval.analysis import CorrelationResult, ScatterStudy
from repro.eval.metrics import percent, top_k_accuracy_series
from repro.eval.pipeline import AttackTarget, Pipeline
from repro.models.general import train_general_model
from repro.models.personalize import PersonalizationMethod
from repro.nn.profiler import flop_counter
from repro.nn.train import TimeSeriesSplit, fit
from repro.pelican.cloud import ResourceReport
from repro.pelican.privacy import leakage_reduction_series

DEFAULT_LEVEL = SpatialLevel.BUILDING
DEFAULT_ADVERSARY = AdversaryClass.A1


# ----------------------------------------------------------------------
# Shared attack driver
# ----------------------------------------------------------------------
def run_attack_over_targets(
    targets: Dict[int, AttackTarget],
    attack_factory: Callable[[AttackTarget], InversionAttack],
    adversary: AdversaryClass,
    max_instances: int,
) -> AttackEvaluation:
    """Run a (possibly per-user-parameterized) attack over a population."""
    first = next(iter(targets.values()))
    evaluation = AttackEvaluation(
        attack_name=attack_factory(first).name, adversary=adversary
    )
    for uid, target in targets.items():
        attack = attack_factory(target)
        evaluation.per_user[uid] = attack_user(
            attack, target.predictor, target.windows, adversary, target.prior, max_instances
        )
    return evaluation


def time_based_factory(target: AttackTarget) -> InversionAttack:
    return TimeBasedAttack(candidate_locations=target.pruned_locations)


def accuracy_percent_series(
    evaluation: AttackEvaluation, ks: Sequence[int]
) -> Dict[int, float]:
    return {k: percent(evaluation.accuracy(k)) for k in ks}


# ----------------------------------------------------------------------
# Table II + Fig 2a — attack methods: accuracy and runtime
# ----------------------------------------------------------------------
@dataclass
class AttackMethodResult:
    """Accuracy series plus runtime/query accounting for one method."""

    name: str
    accuracy: Dict[int, float]
    runtime_seconds: float
    queries: int


def run_attack_methods(
    pipeline: Pipeline, ks: Sequence[int] = (1, 3, 5, 7)
) -> Dict[str, AttackMethodResult]:
    """Reproduces Table II (runtimes) and Fig 2a (accuracy vs top-k).

    Default adversary A1, building level, TL-FE personalization, true
    prior — the paper's defaults (§IV-B).
    """
    targets = pipeline.attack_targets(DEFAULT_LEVEL)
    n = pipeline.scale.attack_instances_per_user
    factories: Dict[str, Callable[[AttackTarget], InversionAttack]] = {
        "brute force": lambda target: BruteForceAttack(),
        "gradient descent": lambda target: GradientDescentAttack(),
        "time-based": time_based_factory,
    }
    results: Dict[str, AttackMethodResult] = {}
    for name, factory in factories.items():
        started = time.perf_counter()
        evaluation = run_attack_over_targets(targets, factory, DEFAULT_ADVERSARY, n)
        results[name] = AttackMethodResult(
            name=name,
            accuracy=accuracy_percent_series(evaluation, ks),
            runtime_seconds=time.perf_counter() - started,
            queries=evaluation.total_queries,
        )
    return results


# ----------------------------------------------------------------------
# Fig 2b — adversarial knowledge
# ----------------------------------------------------------------------
def run_adversary_comparison(
    pipeline: Pipeline, ks: Sequence[int] = (1, 3, 5, 7)
) -> Dict[str, Dict[int, float]]:
    """Attack accuracy for A1/A2/A3 under the time-based method."""
    targets = pipeline.attack_targets(DEFAULT_LEVEL)
    n = pipeline.scale.attack_instances_per_user
    results: Dict[str, Dict[int, float]] = {}
    for adversary in AdversaryClass:
        evaluation = run_attack_over_targets(targets, time_based_factory, adversary, n)
        results[adversary.value] = accuracy_percent_series(evaluation, ks)
    return results


# ----------------------------------------------------------------------
# Fig 2c — prior knowledge
# ----------------------------------------------------------------------
def run_prior_comparison(
    pipeline: Pipeline, ks: Sequence[int] = tuple(range(1, 11))
) -> Dict[str, Dict[int, float]]:
    """Attack accuracy with true / none / predict / estimate priors."""
    results: Dict[str, Dict[int, float]] = {}
    n = pipeline.scale.attack_instances_per_user
    for prior_method in PriorMethod:
        targets = pipeline.attack_targets(DEFAULT_LEVEL, prior_method=prior_method)
        evaluation = run_attack_over_targets(
            targets, time_based_factory, DEFAULT_ADVERSARY, n
        )
        results[prior_method.value] = accuracy_percent_series(evaluation, ks)
    return results


# ----------------------------------------------------------------------
# Fig 3a — spatial levels
# ----------------------------------------------------------------------
def run_spatial_comparison(
    pipeline: Pipeline, ks: Sequence[int] = tuple(range(1, 11))
) -> Dict[str, Dict[int, float]]:
    """Attack accuracy at building vs AP spatial scale."""
    results: Dict[str, Dict[int, float]] = {}
    n = pipeline.scale.attack_instances_per_user
    for level in (SpatialLevel.BUILDING, SpatialLevel.AP):
        targets = pipeline.attack_targets(level)
        evaluation = run_attack_over_targets(
            targets, time_based_factory, DEFAULT_ADVERSARY, n
        )
        results[level.value] = accuracy_percent_series(evaluation, ks)
    return results


# ----------------------------------------------------------------------
# Fig 3b / 3c — per-user mobility analyses
# ----------------------------------------------------------------------
def run_mobility_degree_study(pipeline: Pipeline, k: int = 3) -> Dict[str, ScatterStudy]:
    """Degree of mobility (distinct locations visited) vs attack accuracy."""
    studies: Dict[str, ScatterStudy] = {}
    n = pipeline.scale.attack_instances_per_user
    for level in (SpatialLevel.BUILDING, SpatialLevel.AP):
        targets = pipeline.attack_targets(level)
        evaluation = run_attack_over_targets(
            targets, time_based_factory, DEFAULT_ADVERSARY, n
        )
        # Covered users only: a user with zero attack instances has no
        # defined attack accuracy, and a nan point would poison the
        # correlation (evaluation.coverage reports the omission).
        per_user = evaluation.per_user_accuracy(k)
        points: Dict[int, Tuple[float, float]] = {}
        for uid, accuracy in per_user.items():
            dataset = pipeline.corpus.user_dataset(uid, level)
            points[uid] = (float(dataset.distinct_locations()), percent(accuracy))
        studies[level.value] = ScatterStudy(covariate_name="distinct locations", points=points)
    return studies


def run_predictability_study(pipeline: Pipeline, k: int = 3) -> Dict[str, ScatterStudy]:
    """Mobility predictability (personal-model accuracy) vs attack accuracy.

    Following the paper, the personal model's own test accuracy proxies
    mobility predictability.
    """
    studies: Dict[str, ScatterStudy] = {}
    n = pipeline.scale.attack_instances_per_user
    for level in (SpatialLevel.BUILDING, SpatialLevel.AP):
        targets = pipeline.attack_targets(level)
        evaluation = run_attack_over_targets(
            targets, time_based_factory, DEFAULT_ADVERSARY, n
        )
        per_user = evaluation.per_user_accuracy(k)  # covered users only
        points: Dict[int, Tuple[float, float]] = {}
        for uid, accuracy in per_user.items():
            artifact = pipeline.personal(uid, level)
            X, y = artifact.test.encode()
            model_acc = percent(targets[uid].predictor.top_k_accuracy(X, y, 1))
            points[uid] = (model_acc, percent(accuracy))
        studies[level.value] = ScatterStudy(covariate_name="model accuracy", points=points)
    return studies


# ----------------------------------------------------------------------
# Table III — personalization methods
# ----------------------------------------------------------------------
@dataclass
class PersonalizationRow:
    """One Table III row: aggregate train and top-1/2/3 test accuracy (%)."""

    method: str
    train_top1: float
    test_top1: float
    test_top2: float
    test_top3: float


def run_personalization_comparison(
    pipeline: Pipeline, levels: Sequence[SpatialLevel] = (SpatialLevel.BUILDING, SpatialLevel.AP)
) -> Dict[str, List[PersonalizationRow]]:
    """Reproduces Table III: four methods x two levels, averaged over users."""
    results: Dict[str, List[PersonalizationRow]] = {}
    for level in levels:
        spec = pipeline.spec(level)
        rows: List[PersonalizationRow] = []
        for method in PersonalizationMethod:
            train_accs, test_series = [], {1: [], 2: [], 3: []}
            for uid in pipeline.attack_users():
                artifact = pipeline.personal(uid, level, method)
                predictor = artifact.predictor(spec)
                Xtr, ytr = artifact.train.encode()
                Xte, yte = artifact.test.encode()
                train_accs.append(predictor.top_k_accuracy(Xtr, ytr, 1))
                for k in test_series:
                    test_series[k].append(predictor.top_k_accuracy(Xte, yte, k))
            rows.append(
                PersonalizationRow(
                    method=method.value,
                    train_top1=percent(float(np.mean(train_accs))),
                    test_top1=percent(float(np.mean(test_series[1]))),
                    test_top2=percent(float(np.mean(test_series[2]))),
                    test_top3=percent(float(np.mean(test_series[3]))),
                )
            )
        results[level.value] = rows
    return results


# ----------------------------------------------------------------------
# Table IV — training data size
# ----------------------------------------------------------------------
def run_training_size_sweep(
    pipeline: Pipeline,
    weeks: Sequence[int] = (2, 4, 6, 8),
    methods: Sequence[PersonalizationMethod] = (
        PersonalizationMethod.LSTM,
        PersonalizationMethod.TL_FE,
        PersonalizationMethod.TL_FT,
    ),
) -> Dict[int, List[PersonalizationRow]]:
    """Reproduces Table IV: building-level accuracy vs training weeks."""
    results: Dict[int, List[PersonalizationRow]] = {}
    spec = pipeline.spec(DEFAULT_LEVEL)
    for n_weeks in weeks:
        rows: List[PersonalizationRow] = []
        for method in methods:
            train_accs, test_series = [], {1: [], 2: [], 3: []}
            for uid in pipeline.attack_users():
                artifact = pipeline.personal(uid, DEFAULT_LEVEL, method, train_weeks=n_weeks)
                predictor = artifact.predictor(spec)
                Xtr, ytr = artifact.train.encode()
                Xte, yte = artifact.test.encode()
                if len(Xtr) == 0:
                    continue
                train_accs.append(predictor.top_k_accuracy(Xtr, ytr, 1))
                for k in test_series:
                    test_series[k].append(predictor.top_k_accuracy(Xte, yte, k))
            rows.append(
                PersonalizationRow(
                    method=method.value,
                    train_top1=percent(float(np.mean(train_accs))),
                    test_top1=percent(float(np.mean(test_series[1]))),
                    test_top2=percent(float(np.mean(test_series[2]))),
                    test_top3=percent(float(np.mean(test_series[3]))),
                )
            )
        results[n_weeks] = rows
    return results


# ----------------------------------------------------------------------
# §V-C2 — overhead of model personalization
# ----------------------------------------------------------------------
@dataclass
class OverheadResult:
    """Cloud-vs-device compute comparison."""

    cloud: ResourceReport
    device_per_method: Dict[str, ResourceReport]

    def ratio(self, method: str) -> float:
        device = self.device_per_method[method]
        if device.estimated_billion_cycles == 0:
            return float("inf")
        return self.cloud.estimated_billion_cycles / device.estimated_billion_cycles


def run_overhead_comparison(
    pipeline: Pipeline, grid_search_folds: int = 3, grid_sizes: Sequence[int] = (0, 1)
) -> OverheadResult:
    """Reproduces the §V-C2 overhead numbers.

    Cloud cost includes the paper's hyperparameter grid search over
    time-series CV folds (the reason general training takes hours); device
    cost is a single transfer-learning run per user, averaged.
    """
    train, _ = pipeline.corpus.contributor_dataset(DEFAULT_LEVEL).split_by_user(0.8)
    X, y = train.encode()
    rng = np.random.default_rng(0)
    config = pipeline.scale.general

    with flop_counter() as cloud_counter:
        splitter = TimeSeriesSplit(grid_search_folds)
        for size_offset in grid_sizes:  # the hyperparameter grid
            for train_idx, _val_idx in splitter.split(len(X)):
                candidate, _ = train_general_model(
                    train, config, np.random.default_rng(size_offset)
                )
                del candidate
        # Final fit on the full training split with the chosen setting.
        final_model, _ = train_general_model(train, config, rng)
    cloud_report = ResourceReport.from_counter(cloud_counter)

    device_reports: Dict[str, ResourceReport] = {}
    for method in (PersonalizationMethod.TL_FE, PersonalizationMethod.TL_FT):
        macs, seconds = [], []
        for uid in pipeline.attack_users():
            user_train, _ = pipeline.corpus.user_dataset(uid, DEFAULT_LEVEL).split(0.8)
            with flop_counter() as counter:
                from repro.models.personalize import personalize

                personalize(
                    final_model,
                    user_train,
                    method,
                    pipeline.scale.personalization,
                    np.random.default_rng(uid),
                )
            macs.append(counter.macs)
            seconds.append(counter.elapsed_seconds)
        mean_macs = int(np.mean(macs))
        device_reports[method.value] = ResourceReport(
            macs=mean_macs,
            estimated_billion_cycles=mean_macs * 4.0 / 1e9,
            wall_seconds=float(np.mean(seconds)),
        )
    return OverheadResult(cloud=cloud_report, device_per_method=device_reports)


# ----------------------------------------------------------------------
# Fig 5a/5b/5c — the Pelican privacy enhancement
# ----------------------------------------------------------------------
def run_defense_on_personalization(
    pipeline: Pipeline,
    temperature: float = 1e-3,
    ks: Sequence[int] = tuple(range(1, 10)),
    methods: Sequence[PersonalizationMethod] = (
        PersonalizationMethod.TL_FE,
        PersonalizationMethod.TL_FT,
    ),
) -> Dict[str, Dict[int, float]]:
    """Fig 5a: leakage reduction per personalization method vs top-k."""
    results: Dict[str, Dict[int, float]] = {}
    n = pipeline.scale.attack_instances_per_user
    for method in methods:
        undefended = run_attack_over_targets(
            pipeline.attack_targets(DEFAULT_LEVEL, method=method),
            time_based_factory,
            DEFAULT_ADVERSARY,
            n,
        )
        defended = run_attack_over_targets(
            pipeline.attack_targets(DEFAULT_LEVEL, method=method, temperature=temperature),
            time_based_factory,
            DEFAULT_ADVERSARY,
            n,
        )
        results[method.value] = leakage_reduction_series(
            accuracy_percent_series(undefended, ks), accuracy_percent_series(defended, ks)
        )
    return results


def run_temperature_sweep(
    pipeline: Pipeline,
    temperatures: Sequence[float] = (5e-1, 1e-1, 1e-2, 1e-3, 1e-4, 1e-5),
    ks: Sequence[int] = (1, 3, 5, 7, 9),
) -> Dict[float, float]:
    """Fig 5b: leakage reduction as the privacy parameter varies.

    Reported as the mean reduction over ``ks`` (the paper reports a single
    reduction series per temperature).  The sweep starts at T=0.5 to show
    the ramp: our synthetic-trained models have larger logit gaps than the
    paper's, so confidences saturate by T~0.1 already.
    """
    n = pipeline.scale.attack_instances_per_user
    undefended = run_attack_over_targets(
        pipeline.attack_targets(DEFAULT_LEVEL), time_based_factory, DEFAULT_ADVERSARY, n
    )
    base = accuracy_percent_series(undefended, ks)
    results: Dict[float, float] = {}
    for temperature in temperatures:
        defended = run_attack_over_targets(
            pipeline.attack_targets(DEFAULT_LEVEL, temperature=temperature),
            time_based_factory,
            DEFAULT_ADVERSARY,
            n,
        )
        reduction = leakage_reduction_series(base, accuracy_percent_series(defended, ks))
        results[temperature] = float(np.mean(list(reduction.values())))
    return results


def run_defense_on_spatial_levels(
    pipeline: Pipeline,
    temperature: float = 1e-3,
    ks: Sequence[int] = tuple(range(1, 11)),
) -> Dict[str, Dict[int, float]]:
    """Fig 5c: leakage reduction at building vs AP level."""
    results: Dict[str, Dict[int, float]] = {}
    n = pipeline.scale.attack_instances_per_user
    for level in (SpatialLevel.BUILDING, SpatialLevel.AP):
        undefended = run_attack_over_targets(
            pipeline.attack_targets(level), time_based_factory, DEFAULT_ADVERSARY, n
        )
        defended = run_attack_over_targets(
            pipeline.attack_targets(level, temperature=temperature),
            time_based_factory,
            DEFAULT_ADVERSARY,
            n,
        )
        results[level.value] = leakage_reduction_series(
            accuracy_percent_series(undefended, ks), accuracy_percent_series(defended, ks)
        )
    return results
