"""Confidence calibration metrics.

Temperature scaling is best known as a *calibration* technique (Platt/Guo
et al.); Pelican repurposes it as a privacy mechanism.  These metrics
quantify the side effect: the privacy layer deliberately *destroys*
calibration (confidences saturate toward 1) while preserving accuracy.
The defense-comparison benchmark reports ECE alongside attack accuracy so
the utility cost of each defense is visible in full.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class CalibrationReport:
    """Expected calibration error plus its reliability-diagram bins."""

    ece: float
    bin_confidence: np.ndarray
    bin_accuracy: np.ndarray
    bin_counts: np.ndarray


def expected_calibration_error(
    confidences: np.ndarray, targets: np.ndarray, num_bins: int = 10
) -> CalibrationReport:
    """ECE of top-1 predictions over a confidence matrix.

    Parameters
    ----------
    confidences:
        ``(n, classes)`` probability matrix.
    targets:
        ``(n,)`` true class indices.
    num_bins:
        Equal-width confidence bins over (0, 1].
    """
    confidences = np.asarray(confidences)
    targets = np.asarray(targets)
    if confidences.ndim != 2:
        raise ValueError(f"expected (n, classes) confidences; got {confidences.shape}")
    if len(confidences) != len(targets):
        raise ValueError("confidences and targets must align")
    if len(confidences) == 0:
        return CalibrationReport(
            ece=float("nan"),
            bin_confidence=np.zeros(num_bins),
            bin_accuracy=np.zeros(num_bins),
            bin_counts=np.zeros(num_bins, dtype=int),
        )

    top_conf = confidences.max(axis=-1)
    top_pred = confidences.argmax(axis=-1)
    correct = top_pred == targets

    edges = np.linspace(0.0, 1.0, num_bins + 1)
    bin_ids = np.clip(np.digitize(top_conf, edges[1:-1]), 0, num_bins - 1)

    bin_confidence = np.zeros(num_bins)
    bin_accuracy = np.zeros(num_bins)
    bin_counts = np.zeros(num_bins, dtype=int)
    for b in range(num_bins):
        mask = bin_ids == b
        bin_counts[b] = int(mask.sum())
        if bin_counts[b]:
            bin_confidence[b] = float(top_conf[mask].mean())
            bin_accuracy[b] = float(correct[mask].mean())

    weights = bin_counts / bin_counts.sum()
    ece = float(np.abs(bin_accuracy - bin_confidence) @ weights)
    return CalibrationReport(
        ece=ece, bin_confidence=bin_confidence, bin_accuracy=bin_accuracy, bin_counts=bin_counts
    )
