"""Fleet-throughput experiment: batched vs. looped multi-user serving.

Builds a full Pelican deployment at any :class:`ExperimentScale` tier
(general training, per-user personalization, mixed local/cloud
deployment), then serves an identical concurrent query workload two ways:

* **looped** — the seed path, one endpoint query per request
  (:meth:`~repro.pelican.fleet.Fleet.serve_looped`);
* **batched** — the fleet path, requests grouped per model and dispatched
  through the graph-free fused inference kernel in one GEMM stack per
  group (:meth:`~repro.pelican.fleet.Fleet.serve`).

The two paths return identical predictions (checked every run); the
result reports the wall-clock speedup, the serving throughput, and the
fleet's per-side resource attribution.  ``benchmarks/test_fleet_serving.py``
pins the speedup; the ``fleet`` CLI subcommand prints the report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import List, Optional, Union

import numpy as np

from repro.data.corpus import generate_corpus
from repro.data.features import SpatialLevel
from repro.eval.config import ExperimentScale
from repro.pelican.accounting import ClusterReport
from repro.pelican.cluster import Cluster
from repro.pelican.deployment import DeploymentMode
from repro.pelican.fleet import Fleet, FleetReport, QueryRequest, QueryResponse
from repro.pelican.resilience import ResiliencePolicy, resilience_policy
from repro.pelican.storage import BlobStore, make_blob_store
from repro.pelican.system import Pelican, PelicanConfig

DEFAULT_LEVEL = SpatialLevel.BUILDING

#: Epoch budget used by ``fast_setup``: serving throughput is independent
#: of training convergence, so benchmark/CI setups train only this long.
FAST_SETUP_EPOCHS = 2


def training_configs(scale: ExperimentScale, fast_setup: bool):
    """The scale's ``(general, personalization)`` configs, trimmed to
    :data:`FAST_SETUP_EPOCHS` under ``fast_setup``.  The single definition
    of what "fast setup" means — shared by the fleet workload builder and
    the scenario matrix so the two never drift apart."""
    general, personalization = scale.general, scale.personalization
    if fast_setup:
        general = replace(general, epochs=FAST_SETUP_EPOCHS, patience=None)
        personalization = replace(
            personalization, epochs=FAST_SETUP_EPOCHS, patience=None
        )
    return general, personalization


@dataclass
class FleetWorkload:
    """A deployed serving stack plus the concurrent request mix to serve.

    ``fleet`` is a single-cloud :class:`~repro.pelican.fleet.Fleet` when
    ``num_shards == 1`` (the legacy path, byte-identical to before the
    cluster layer existed) and a :class:`~repro.pelican.cluster.Cluster`
    otherwise — both expose the same serving interface.
    """

    fleet: Union[Fleet, Cluster]
    requests: List[QueryRequest]
    scale_name: str
    num_shards: int = 1
    workers: int = 0
    #: The durable blob store behind the registry/cluster, for residency
    #: reporting and cleanup (:meth:`close`).
    store: Optional[BlobStore] = None
    store_kind: str = "memory"

    def close(self) -> None:
        """Release worker processes and any disk-backed store."""
        if isinstance(self.fleet, Cluster):
            self.fleet.close()
        if self.store is not None:
            self.store.close()

    @property
    def num_users(self) -> int:
        return self.fleet.num_users


@dataclass
class FleetThroughputResult:
    """Outcome of one batched-vs-looped serving comparison."""

    scale: str
    num_users: int
    num_queries: int
    batches: int
    looped_seconds: float
    batched_seconds: float
    parity: bool
    report: Union[FleetReport, ClusterReport]
    num_shards: int = 1
    stacked: bool = False
    workers: int = 0
    store: str = "memory"

    @property
    def speedup(self) -> float:
        """Looped wall time over batched wall time (higher is better)."""
        return self.looped_seconds / self.batched_seconds if self.batched_seconds else 0.0

    @property
    def batched_queries_per_second(self) -> float:
        return self.num_queries / self.batched_seconds if self.batched_seconds else 0.0


def build_fleet_workload(
    scale: ExperimentScale,
    queries_per_user: int = 32,
    registry_capacity: Optional[int] = 64,
    k: int = 3,
    fast_setup: bool = False,
    num_shards: int = 1,
    placement: str = "hash",
    resilience: Optional[ResiliencePolicy] = None,
    stacked: bool = False,
    workers: int = 0,
    store: str = "memory",
    delta_updates: bool = False,
) -> FleetWorkload:
    """Stand up a fleet (or sharded cluster) at ``scale`` and derive its
    query workload.  ``resilience`` optionally attaches a fault-handling
    policy (DESIGN.md §11) — a no-op on this clean workload beyond the
    stats overlay, which is exactly what the overhead benchmark measures.
    ``stacked`` serves cloud groups through the cross-model stacked
    dispatch (DESIGN.md §12) — identical answers and signature, fewer,
    bigger GEMMs.

    Personal users alternate local/cloud deployment (so both serving
    sides are exercised) and each contributes ``queries_per_user``
    requests drawn round-robin from their held-out windows — the
    interleaving a cloud actually sees from concurrent devices.

    ``num_shards > 1`` builds a :class:`~repro.pelican.cluster.Cluster`
    under the given ``placement`` policy instead of a single
    :class:`~repro.pelican.fleet.Fleet`; responses are bit-identical
    either way (DESIGN.md §9), only the books shard.  ``workers > 0``
    additionally serves the cluster's shards on that many worker
    processes (DESIGN.md §13) — still bit-identical, and it needs
    ``num_shards > 1`` to have anything to scatter.

    ``store`` selects the durable blob-store tier behind the registry
    (DESIGN.md §14: ``memory`` / ``disk`` / ``tiered``); responses and
    signatures are bit-identical across tiers.  ``delta_updates`` ships
    cloud redeploys as weight deltas — an opt-in that legitimately
    lowers network-byte books.

    ``fast_setup`` cuts training to :data:`FAST_SETUP_EPOCHS` epochs:
    model *dimensions* (and therefore serving cost) still match the
    scale, but setup takes seconds instead of minutes.  Only serving
    results are meaningful under it.
    """
    if workers and num_shards == 1:
        raise ValueError(
            "workers > 0 requires num_shards > 1: a single-fleet workload "
            "has no shards to scatter onto worker processes"
        )
    general, personalization = training_configs(scale, fast_setup)
    corpus = generate_corpus(scale.corpus)
    spec = corpus.spec(DEFAULT_LEVEL)
    config = PelicanConfig(
        general=general,
        personalization=personalization,
        seed=scale.corpus.seed,
        delta_updates=delta_updates,
    )
    blob_store = make_blob_store(store)
    if num_shards == 1:
        fleet: Union[Fleet, Cluster] = Fleet(
            Pelican(spec, config),
            registry_capacity=registry_capacity,
            registry_store=blob_store,
            resilience=resilience,
            stacked=stacked,
        )
    else:
        fleet = Cluster(
            spec,
            config,
            num_shards=num_shards,
            placement=placement,
            registry_capacity=registry_capacity,
            resilience=resilience,
            stacked=stacked,
            workers=workers,
            store=blob_store,
        )
    train, _ = corpus.contributor_dataset(DEFAULT_LEVEL).split_by_user(0.8)
    fleet.train_cloud(train)

    holdouts = {}
    for i, uid in enumerate(corpus.personal_ids):
        user_train, holdout = corpus.user_dataset(uid, DEFAULT_LEVEL).split(0.8)
        mode = DeploymentMode.CLOUD if i % 2 else DeploymentMode.LOCAL
        fleet.onboard(uid, user_train, deployment=mode)
        holdouts[uid] = holdout

    requests: List[QueryRequest] = []
    for j in range(queries_per_user):
        for uid, holdout in holdouts.items():
            window = holdout.windows[j % len(holdout.windows)]
            requests.append(QueryRequest(user_id=uid, history=tuple(window.history), k=k))
    return FleetWorkload(
        fleet=fleet,
        requests=requests,
        scale_name=scale.name,
        num_shards=num_shards,
        workers=workers,
        store=blob_store,
        store_kind=store,
    )


def responses_match(
    batched: List[QueryResponse], looped: List[QueryResponse], rtol: float = 1e-9
) -> bool:
    """True when both serving paths produced the same predictions.

    Rankings must be identical; confidences must agree to ``rtol``
    *relative* tolerance with no absolute slack (``atol=0``) — under the
    privacy layer many confidences are tiny, and numpy's default
    ``atol=1e-8`` would wave through divergences larger than the values
    themselves.
    """
    if len(batched) != len(looped):
        return False
    for a, b in zip(batched, looped):
        if a.user_id != b.user_id:
            return False
        if [loc for loc, _ in a.top_k] != [loc for loc, _ in b.top_k]:
            return False
        if not np.allclose(
            [conf for _, conf in a.top_k],
            [conf for _, conf in b.top_k],
            rtol=rtol,
            atol=0.0,
        ):
            return False
    return True


def run_fleet_throughput(
    scale: ExperimentScale,
    queries_per_user: int = 32,
    registry_capacity: Optional[int] = 64,
    fast_setup: bool = False,
    num_shards: int = 1,
    placement: str = "hash",
    resilience: Optional[str] = None,
    deadline: Optional[float] = None,
    stacked: bool = False,
    workers: int = 0,
    store: str = "memory",
    delta_updates: bool = False,
) -> FleetThroughputResult:
    """Build a fleet at ``scale`` and compare both serving paths once."""
    res_policy = None
    if resilience is not None and resilience != "none":
        res_policy = resilience_policy(
            resilience, seed=scale.corpus.seed, deadline=deadline
        )
    workload = build_fleet_workload(
        scale,
        queries_per_user=queries_per_user,
        registry_capacity=registry_capacity,
        fast_setup=fast_setup,
        num_shards=num_shards,
        placement=placement,
        resilience=res_policy,
        stacked=stacked,
        workers=workers,
        store=store,
        delta_updates=delta_updates,
    )
    fleet, requests = workload.fleet, workload.requests

    try:
        start = time.perf_counter()
        looped = fleet.serve_looped(requests)
        looped_seconds = time.perf_counter() - start

        start = time.perf_counter()
        batched = fleet.serve(requests)
        batched_seconds = time.perf_counter() - start
    finally:
        workload.close()

    return FleetThroughputResult(
        scale=workload.scale_name,
        num_users=workload.num_users,
        num_queries=len(requests),
        batches=fleet.report.batches,
        looped_seconds=looped_seconds,
        batched_seconds=batched_seconds,
        parity=responses_match(batched, looped),
        report=fleet.report,
        num_shards=workload.num_shards,
        stacked=stacked,
        workers=workers,
        store=store,
    )
