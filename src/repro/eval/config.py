"""Experiment scales: one knob bundle per reproduction tier.

Three tiers (DESIGN.md §6):

* ``tiny``  — CI/unit-test scale; seconds end to end.
* ``small`` — benchmark scale (default for ``benchmarks/``); a few minutes
  for the full suite, preserving every qualitative shape.
* ``paper`` — closest feasible to the paper's 200-contributor setup; hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.data.corpus import CorpusConfig
from repro.models.general import GeneralModelConfig
from repro.models.personalize import PersonalizationConfig


@dataclass(frozen=True)
class ExperimentScale:
    """All scale knobs for one reproduction tier."""

    name: str
    corpus: CorpusConfig
    general: GeneralModelConfig
    personalization: PersonalizationConfig
    attack_instances_per_user: int
    max_attack_users: int
    ks: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
    dtype: str = "float64"
    """Engine-wide floating dtype (DESIGN.md §5).  ``"float32"`` halves
    memory traffic on every GEMM; the reproduced rankings are robust to it,
    but the committed reference numbers are regenerated in float64."""

    @classmethod
    def tiny(cls, seed: int = 11) -> "ExperimentScale":
        return cls(
            name="tiny",
            corpus=CorpusConfig(
                num_buildings=15,
                num_contributors=5,
                num_personal_users=2,
                num_days=21,
                seed=seed,
            ),
            general=GeneralModelConfig(hidden_size=24, epochs=6, patience=3),
            personalization=PersonalizationConfig(epochs=6, patience=3, scratch_hidden_size=16),
            attack_instances_per_user=5,
            max_attack_users=2,
        )

    @classmethod
    def small(cls, seed: int = 11) -> "ExperimentScale":
        return cls(
            name="small",
            corpus=CorpusConfig(
                num_buildings=40,
                num_contributors=16,
                num_personal_users=6,
                num_days=56,
                seed=seed,
            ),
            general=GeneralModelConfig(hidden_size=48, epochs=15, patience=6),
            personalization=PersonalizationConfig(epochs=20, patience=6),
            attack_instances_per_user=12,
            max_attack_users=6,
        )

    @classmethod
    def paper(cls, seed: int = 11) -> "ExperimentScale":
        return cls(
            name="paper",
            corpus=CorpusConfig(
                num_buildings=150,
                num_contributors=200,
                num_personal_users=100,
                num_days=63,
                seed=seed,
            ),
            general=GeneralModelConfig(
                hidden_size=128, epochs=30, patience=8, learning_rate=1e-3
            ),
            personalization=PersonalizationConfig(epochs=30, patience=8),
            attack_instances_per_user=30,
            max_attack_users=100,
        )

    def with_corpus(self, **overrides) -> "ExperimentScale":
        """Copy with corpus fields overridden."""
        return replace(self, corpus=self.corpus.scaled(**overrides))
