"""Fleet-scale privacy audit matrix: adversaries × defenses × regimes
(DESIGN.md §10).

The paper's headline result — inversion attacks against personalized
models and the defenses that blunt them (Table II, Figs 2–3, Fig 5) — is
replayed here as a *serving workload*: for every requested mobility
regime a fleet (or sharded cluster) is stood up on a regime-specific
corpus, devices onboard under the cell's defense, a benign query workload
runs, and then an :class:`~repro.attacks.fleet_adversary.AuditAdversary`
attacks the live deployment through the serving stack — probe traffic
batched by the dispatcher, billed in the fleet books (with the
adversary-vs-benign attribution overlay), routed by placement, and
subject to whatever chaos policy the cell runs under.

Everything is seeded: the same scale, regimes, defenses, adversary
classes, and seeds reproduce an identical :meth:`AuditReport.signature`
(the ``audit`` CLI subcommand and ``tests/eval/test_audit.py`` rely on
this, and ``tests/eval/test_audit_golden.py`` pins one canonical run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.attacks.adversary import AdversaryClass
from repro.attacks.base import EnumerationAttack
from repro.attacks.brute_force import BruteForceAttack
from repro.attacks.fleet_adversary import AuditAdversary, AuditTarget, ProbeBatch
from repro.attacks.priors import true_prior
from repro.attacks.time_based import TimeBasedAttack
from repro.data.corpus import MobilityCorpus
from repro.data.dataset import SequenceDataset
from repro.data.features import SpatialLevel
from repro.data.regimes import generate_regime_corpus, resolve_regime
from repro.eval.config import ExperimentScale
from repro.pelican.defenses import (
    GaussianNoiseDefense,
    RoundingDefense,
    TopKOnlyDefense,
)
from repro.pelican.fleet import FleetSchedule
from repro.pelican.privacy import DEFAULT_PRIVACY_TEMPERATURE

LEVEL = SpatialLevel.BUILDING


# ----------------------------------------------------------------------
# The defense axis (paper §V-B temperature layer + Table V taxonomy)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AuditDefense:
    """One defense configuration an audit cell deploys under.

    ``temperature`` is the on-device privacy tuner users onboard with
    (paper §V-B; ``1.0`` disables the layer); ``release_factory``
    optionally wraps the served model in a provider-side output
    perturbation (``pelican/defenses.py``, Table V) before confidences
    are released — keyed per (audit seed, user, instance) so seeded
    defenses stay deterministic on every execution path.
    """

    name: str
    temperature: float = 1.0
    release_factory: Optional[Callable[[Any, Tuple[int, ...]], Any]] = None


AUDIT_DEFENSES: Dict[str, AuditDefense] = {
    defense.name: defense
    for defense in (
        AuditDefense(name="none"),
        AuditDefense(name="temperature", temperature=DEFAULT_PRIVACY_TEMPERATURE),
        AuditDefense(
            name="gaussian",
            release_factory=lambda predictor, key: GaussianNoiseDefense(
                predictor, sigma=0.05, seed=key
            ),
        ),
        AuditDefense(
            name="rounding",
            release_factory=lambda predictor, key: RoundingDefense(
                predictor, decimals=2
            ),
        ),
        AuditDefense(
            name="topk",
            release_factory=lambda predictor, key: TopKOnlyDefense(predictor, k=3),
        ),
    )
}

#: Enumeration attacks the audit can replay at fleet scale.  The
#: gradient attack is excluded by construction: it needs white-box
#: gradients the serving stack never exposes (DESIGN.md §10).
AUDIT_ATTACKS: Dict[str, Callable[[], EnumerationAttack]] = {
    "time_based": TimeBasedAttack,
    "brute_force": BruteForceAttack,
}


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class AuditCell:
    """One (regime, defense, adversary-class) cell of the audit matrix."""

    regime: str
    defense: str
    adversary: str
    attack: str
    scale: str
    num_users: int
    #: Users that contributed at least one reconstruction (the NaN fix:
    #: empty users are excluded from leakage, reported here instead).
    covered_users: int
    num_instances: int
    #: Pooled attack accuracy per k — the leakage the paper's Figs 2–3
    #: report, measured against the live deployment.
    leakage: Dict[int, float]
    #: Benign serving hit rate over the same cell's workload.
    benign_hit_rate: float
    benign_queries: int
    adversary_queries: int
    adversary_network_seconds: float
    #: Full fleet/cluster signature (report + chaos counters).
    signature: Dict[str, Any]
    num_shards: int = 1


@dataclass
class AuditReport:
    """The full adversaries × defenses × regimes matrix at one scale.

    :meth:`signature` is the deterministic projection: identical
    configuration and seeds reproduce it bit-for-bit (wall clock is
    excluded everywhere upstream), so audit runs are directly comparable
    — and regression-pinnable — across machines and commits.
    """

    scale: str
    attack: str
    chaos_policy: str
    chaos_seed: int
    audit_seed: int
    ks: Tuple[int, ...]
    cells: List[AuditCell]
    num_shards: int = 1
    resilience: str = "none"

    def cell(self, regime: str, defense: str, adversary: str) -> AuditCell:
        for cell in self.cells:
            if (cell.regime, cell.defense, cell.adversary) == (
                regime,
                defense,
                adversary,
            ):
                return cell
        raise KeyError(f"no audit cell ({regime!r}, {defense!r}, {adversary!r})")

    def signature(self) -> Dict[str, Any]:
        signature: Dict[str, Any] = {
            "scale": self.scale,
            "attack": self.attack,
            "chaos_policy": self.chaos_policy,
            "chaos_seed": self.chaos_seed,
            "audit_seed": self.audit_seed,
            "num_shards": self.num_shards,
        }
        # Joined only when a resilience policy is active, so the pinned
        # golden signature's key set never moves (DESIGN.md §11).
        if self.resilience != "none":
            signature["resilience"] = self.resilience
        signature["cells"] = {
                f"{cell.regime}/{cell.defense}/{cell.adversary}": {
                    "leakage": {str(k): v for k, v in cell.leakage.items()},
                    "benign_hit_rate": cell.benign_hit_rate,
                    "benign_queries": cell.benign_queries,
                    "adversary_queries": cell.adversary_queries,
                    "covered_users": cell.covered_users,
                    "num_instances": cell.num_instances,
                    "signature": cell.signature,
                }
                for cell in self.cells
        }
        return signature


# ----------------------------------------------------------------------
# Workload construction
# ----------------------------------------------------------------------
def build_audit_schedule(
    corpus: MobilityCorpus,
    splits: Dict[int, Tuple[SequenceDataset, SequenceDataset]],
    temperature: float,
    queries_per_user: int = 2,
    k: int = 3,
) -> Tuple[FleetSchedule, Dict[int, int]]:
    """The benign half of one audit cell's workload, plus ground truth.

    Exactly the scenario matrix's cell workload
    (:func:`repro.eval.scenarios.build_scenario_schedule` — one shared
    definition of the shape), with the cell's privacy temperature fixed
    on every onboard and *no* mid-run update: audit leakage must be
    fault-timing invariant, so model state stays fixed once deployed
    (DESIGN.md §10).  The adversary's probes are appended afterwards via
    :meth:`~repro.attacks.fleet_adversary.AuditAdversary.schedule_probes`.
    """
    from repro.eval.scenarios import build_scenario_schedule

    return build_scenario_schedule(
        corpus,
        splits,
        queries_per_user=queries_per_user,
        k=k,
        temperature=temperature,
        include_update=False,
    )


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------
def run_audit_suite(
    scale: ExperimentScale,
    regimes: Sequence[str] = ("campus",),
    defenses: Sequence[str] = ("none", "temperature"),
    adversaries: Sequence[str] = ("A1",),
    attack: str = "time_based",
    policy: str = "none",
    chaos_seed: int = 0,
    audit_seed: int = 0,
    queries_per_user: int = 2,
    registry_capacity: Optional[int] = 2,
    num_shards: int = 1,
    placement: str = "hash",
    max_instances: Optional[int] = None,
    fast_setup: bool = True,
    ks: Tuple[int, ...] = (1, 2, 3),
    resilience: Optional[str] = None,
    deadline: Optional[float] = None,
) -> AuditReport:
    """Cross adversary classes × defenses × mobility regimes at one scale.

    Every cell runs the identical recipe on a fixed seeded schedule:
    onboard the regime's population under the cell's defense, serve the
    benign workload, then attack the live deployment through the batched
    probe path (DESIGN.md §10).  Leakage (attack hit@k), benign serving
    accuracy, and the adversary-vs-benign accounting split all come from
    one run per cell, so the matrix reads like the paper's Table II /
    Fig 5 but measured against the production-shaped stack —
    ``num_shards > 1`` audits a placement-routed cluster, and ``policy``
    replays every cell under a chaos condition (probe rankings are
    invariant to fault timing because audit schedules carry no updates;
    only the books move).  ``resilience``/``deadline`` layer a
    fault-handling policy over every cell (DESIGN.md §11) — probes are
    exempt from shedding and degradation by construction, so leakage
    stays invariant while the accounting overlay reflects the policy.
    """
    if attack not in AUDIT_ATTACKS:
        raise KeyError(f"unknown audit attack {attack!r}; options: {sorted(AUDIT_ATTACKS)}")
    unknown = [d for d in defenses if d not in AUDIT_DEFENSES]
    if unknown:
        raise KeyError(f"unknown defenses {unknown}; options: {sorted(AUDIT_DEFENSES)}")
    # Validate the whole matrix *before* any corpus/training work: an
    # incompatible pairing (brute force x A3) must fail in milliseconds,
    # not after minutes of setup.
    probe_attack = AUDIT_ATTACKS[attack]()
    for adversary_name in adversaries:
        if not probe_attack.supports(AdversaryClass(adversary_name)):
            raise ValueError(
                f"attack {attack!r} cannot plan for adversary class "
                f"{adversary_name} (missing steps "
                f"{AdversaryClass(adversary_name).missing_steps})"
            )
    if max_instances is None:
        max_instances = scale.attack_instances_per_user
    from repro.pelican.resilience import resilience_policy

    res_policy = None
    if resilience is not None and resilience != "none":
        res_policy = resilience_policy(resilience, seed=chaos_seed, deadline=deadline)
    cells: List[AuditCell] = []
    pelican = training_report = None
    # Imported here: scenarios owns the shared suite machinery (trained
    # Pelican, cell-fleet construction) and sits in the same layer.
    from repro.eval.scenarios import build_cell_fleet, trained_pelican

    for regime_name in regimes:
        regime = resolve_regime(regime_name)
        corpus = generate_regime_corpus(scale.corpus, regime)
        spec = corpus.spec(LEVEL)
        splits = {
            uid: corpus.user_dataset(uid, LEVEL).split(0.8)
            for uid in corpus.personal_ids
        }
        if pelican is None:
            pelican, training_report = trained_pelican(scale, corpus, fast_setup)
        audit_targets = [
            AuditTarget(
                user_id=uid,
                attack_windows=splits[uid][1],
                prior=true_prior(splits[uid][0]),
            )
            for uid in corpus.personal_ids
        ]
        for adversary_name in adversaries:
            # Candidate plans depend only on (attack, adversary class,
            # windows) — derive them once per regime and share the grids
            # across the defense axis (ProbeBatch wrappers stay per cell,
            # they carry the defense's release hook).
            planner = AuditAdversary(
                attack=AUDIT_ATTACKS[attack](),
                adversary=AdversaryClass(adversary_name),
                max_instances=max_instances,
                seed=audit_seed,
            )
            planned = {
                target.user_id: planner.plan_for(spec, target)
                for target in audit_targets
            }
            for defense_name in defenses:
                defense = AUDIT_DEFENSES[defense_name]
                adversary = AuditAdversary(
                    attack=AUDIT_ATTACKS[attack](),
                    adversary=AdversaryClass(adversary_name),
                    max_instances=max_instances,
                    release_factory=defense.release_factory,
                    seed=audit_seed,
                )
                schedule, benign_truth = build_audit_schedule(
                    corpus,
                    splits,
                    temperature=defense.temperature,
                    queries_per_user=queries_per_user,
                )
                probe_tick = max(e.time for e in schedule.ordered()) + 10.0
                probes_by_seq = adversary.schedule_probes(
                    schedule, probe_tick, spec, audit_targets, planned=planned
                )
                fleet = build_cell_fleet(
                    pelican,
                    training_report,
                    policy,
                    chaos_seed,
                    registry_capacity,
                    num_shards=num_shards,
                    placement=placement,
                    resilience=res_policy,
                )
                responses = fleet.run(schedule)
                benign_hits = benign_total = 0
                served_probes: List[Tuple[ProbeBatch, Sequence[float]]] = []
                for response in responses:
                    if response.seq in probes_by_seq:
                        served_probes.append(
                            (probes_by_seq[response.seq], response.confidences)
                        )
                    else:
                        benign_total += 1
                        if benign_truth[response.seq] in [
                            loc for loc, _ in response.top_k
                        ]:
                            benign_hits += 1
                priors = {t.user_id: t.prior for t in audit_targets}
                evaluation = adversary.evaluate(served_probes, priors)
                cells.append(
                    AuditCell(
                        regime=regime.name,
                        defense=defense_name,
                        adversary=adversary_name,
                        attack=attack,
                        scale=scale.name,
                        num_users=len(corpus.personal_ids),
                        covered_users=len(evaluation.covered_users),
                        num_instances=sum(
                            len(r.outputs) for r in evaluation.per_user.values()
                        ),
                        leakage=evaluation.accuracy_series(ks),
                        benign_hit_rate=(
                            benign_hits / benign_total if benign_total else 0.0
                        ),
                        benign_queries=benign_total,
                        adversary_queries=fleet.report.adversary_queries,
                        adversary_network_seconds=fleet.report.adversary_network_seconds,
                        # ChaosFleet and Cluster both expose the combined
                        # report + chaos-counter projection here.
                        signature=fleet.signature(),
                        num_shards=num_shards,
                    )
                )
    return AuditReport(
        scale=scale.name,
        attack=attack,
        chaos_policy=policy,
        chaos_seed=chaos_seed,
        audit_seed=audit_seed,
        ks=tuple(ks),
        cells=cells,
        num_shards=num_shards,
        resilience=res_policy.name if res_policy is not None else "none",
    )
