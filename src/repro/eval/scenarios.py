"""Scenario matrix: mobility regimes × chaos policies × scale tiers.

The paper evaluates on one well-behaved campus population over a clean
network.  :func:`run_scenario_suite` is the stress-testing counterpart:
for every requested mobility regime (:data:`repro.data.regimes.REGIMES`)
it stands up a fleet on a regime-specific corpus, replays one fixed
interleaved workload under every requested chaos policy
(:data:`repro.pelican.chaos.CHAOS_POLICIES`), and reports serving
accuracy and per-side cost *deltas against the same regime's clean run* —
so the output separates what the population costs from what the faults
cost.

Everything is seeded: the same scale, regimes, policies, and chaos seed
reproduce identical signatures (the ``scenarios`` CLI subcommand and
``tests/eval/test_scenarios.py`` rely on this).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.data.corpus import MobilityCorpus
from repro.data.dataset import SequenceDataset
from repro.data.features import SpatialLevel
from repro.data.regimes import resolve_regime, generate_regime_corpus
from repro.eval.config import ExperimentScale
from repro.eval.fleet import training_configs
from repro.pelican.chaos import ChaosFleet, chaos_policy
from repro.pelican.cluster import Cluster
from repro.pelican.deployment import DeploymentMode
from repro.pelican.fleet import FleetSchedule
from repro.pelican.resilience import (
    DEFAULT_QUERY_DEADLINE,
    ResiliencePolicy,
    measure_availability,
    resilience_policy,
)
from repro.pelican.system import Pelican, PelicanConfig

LEVEL = SpatialLevel.BUILDING


@dataclass
class ScenarioResult:
    """One (regime, policy) cell of the matrix."""

    regime: str
    policy: str
    scale: str
    num_users: int
    num_queries: int
    k: int
    #: Fraction of queries whose true next location was in the served top-k.
    hit_rate: float
    signature: Dict[str, Any]
    chaos: Dict[str, Any]
    num_shards: int = 1
    # Deltas vs the same regime's clean ("none"-policy) run; zero there.
    hit_rate_delta: float = 0.0
    network_seconds_delta: float = 0.0
    cloud_seconds_delta: float = 0.0
    device_seconds_delta: float = 0.0
    registry_load_seconds_delta: float = 0.0
    # Resilience overlay (DESIGN.md §11).  Every cell — including the
    # clean baseline — is scored against the same deadline, so
    # availability and SLO attainment are comparable across the row.
    resilience: str = "none"
    deadline: float = DEFAULT_QUERY_DEADLINE
    availability: float = 1.0
    slo_attainment: float = 1.0
    shed_queries: int = 0
    degraded_queries: int = 0


@dataclass
class ScenarioSuiteResult:
    """The full regimes × policies matrix at one scale tier."""

    scale: str
    chaos_seed: int
    results: List[ScenarioResult]
    num_shards: int = 1
    resilience: str = "none"
    deadline: float = DEFAULT_QUERY_DEADLINE

    def cell(self, regime: str, policy: str) -> ScenarioResult:
        for result in self.results:
            if result.regime == regime and result.policy == policy:
                return result
        raise KeyError(f"no scenario cell ({regime!r}, {policy!r})")


def build_scenario_schedule(
    corpus: MobilityCorpus,
    splits: Dict[int, Tuple[SequenceDataset, SequenceDataset]],
    queries_per_user: int = 4,
    k: int = 3,
    temperature: Optional[float] = None,
    include_update: bool = True,
) -> Tuple[FleetSchedule, Dict[int, int]]:
    """The canonical matrix-cell workload plus its ground truth.

    Devices onboard one per tick (alternating local/cloud deployment so
    both serving sides and the registry are exercised), then every device
    queries once per tick for ``queries_per_user`` ticks spaced 10 clock
    units apart — wide enough that offline windows (duration ~12) defer
    events across ticks.  One incremental update lands mid-run (unless
    ``include_update`` is off — the audit suite must keep model state
    fixed so probe observations are fault-timing invariant, DESIGN.md
    §10), and ``temperature`` optionally fixes every user's privacy
    tuner (the audit suite's defense axis).  Returns
    ``(schedule, targets)`` where ``targets[seq]`` is the query event's
    true next location, for scoring served responses.  This is the one
    definition of the cell workload shape — the scenario and audit
    matrices both build through it.
    """
    schedule = FleetSchedule()
    targets: Dict[int, int] = {}
    onboard_options = {} if temperature is None else {"privacy_temperature": temperature}
    for i, uid in enumerate(corpus.personal_ids):
        mode = DeploymentMode.CLOUD if i % 2 else DeploymentMode.LOCAL
        schedule.onboard(
            float(i), uid, splits[uid][0], deployment=mode, **onboard_options
        )
    # Query ticks start strictly after the last onboard, whatever the
    # population size — a query must never precede its user's onboard.
    tick = float(len(corpus.personal_ids)) + 10.0
    for j in range(queries_per_user):
        for uid in corpus.personal_ids:
            holdout = splits[uid][1]
            window = holdout.windows[j % len(holdout.windows)]
            targets[schedule.next_seq] = window.target
            schedule.query(tick, uid, window.history, k=k)
        if include_update and queries_per_user > 1 and j == queries_per_user // 2 - 1:
            first = corpus.personal_ids[0]
            schedule.update(tick + 5.0, first, splits[first][1])
        tick += 10.0
    return schedule, targets


def trained_pelican(scale: ExperimentScale, corpus: MobilityCorpus, fast_setup: bool):
    """General training happens once per *suite*: regimes only reshape the
    personal users (contributors are bit-identical across regime corpora,
    see :func:`repro.data.regimes.generate_regime_corpus`) and chaos never
    affects training, so every cell starts from a deepcopy of this state.
    Shared with the audit suite (:mod:`repro.eval.audit`), which crosses
    the same regimes with defenses instead of chaos policies."""
    general, personalization = training_configs(scale, fast_setup)
    pelican = Pelican(
        corpus.spec(LEVEL),
        PelicanConfig(
            general=general,
            personalization=personalization,
            seed=scale.corpus.seed,
        ),
    )
    train, _ = corpus.contributor_dataset(LEVEL).split_by_user(0.8)
    training_report = pelican.initial_training(train)
    return pelican, training_report


def build_cell_fleet(
    pelican: Pelican,
    training_report,
    policy_name: str,
    chaos_seed: int,
    registry_capacity: Optional[int],
    num_shards: int = 1,
    placement: str = "hash",
    resilience: Optional[ResiliencePolicy] = None,
):
    """A fresh chaos-wrapped serving stack for one matrix cell.

    The single definition of cell construction — shared by the scenario
    and audit suites — so the K=1-parity and training-attribution
    invariants cannot drift between them: one shard gets a
    :class:`~repro.pelican.chaos.ChaosFleet` over a deepcopy of the
    suite-shared trained Pelican with the general-training cost booked
    on its cloud book (exactly as ``Fleet.train_cloud`` would have);
    more shards get a :class:`~repro.pelican.cluster.Cluster` with the
    same cost at the cluster-level training book.  ``resilience``
    optionally layers a fault-handling policy (DESIGN.md §11) over the
    chaos; ``None`` (and the null policy) is byte-identical to today.
    """
    policy = chaos_policy(policy_name, seed=chaos_seed)
    if num_shards == 1:
        fleet = ChaosFleet(
            copy.deepcopy(pelican),
            policy=policy,
            registry_capacity=registry_capacity,
            resilience=resilience,
        )
        fleet.report.cloud_compute += training_report
        return fleet
    fleet = Cluster.from_trained(
        copy.deepcopy(pelican),
        num_shards=num_shards,
        placement=placement,
        registry_capacity=registry_capacity,
        policy=policy,
        resilience=resilience,
    )
    fleet.report.training = fleet.report.training + training_report
    return fleet


def _run_cell(
    pelican: Pelican,
    training_report,
    schedule: FleetSchedule,
    targets: Dict[int, int],
    policy_name: str,
    chaos_seed: int,
    registry_capacity: Optional[int],
    num_shards: int = 1,
    placement: str = "hash",
    resilience: Optional[ResiliencePolicy] = None,
):
    fleet = build_cell_fleet(
        pelican, training_report, policy_name, chaos_seed, registry_capacity,
        num_shards=num_shards, placement=placement, resilience=resilience,
    )
    responses = fleet.run(schedule)
    hits = sum(
        1
        for response in responses
        if targets[response.seq] in [loc for loc, _ in response.top_k]
    )
    hit_rate = hits / len(responses) if responses else 0.0
    return fleet, responses, hit_rate, len(responses)


def run_scenario_suite(
    scale: ExperimentScale,
    regimes: Sequence[str] = ("campus", "commuter", "tourist"),
    policies: Sequence[str] = ("none", "lossy_network", "churn"),
    queries_per_user: int = 4,
    registry_capacity: Optional[int] = 2,
    k: int = 3,
    fast_setup: bool = True,
    chaos_seed: int = 0,
    num_shards: int = 1,
    placement: str = "hash",
    resilience: Optional[str] = None,
    deadline: Optional[float] = None,
) -> ScenarioSuiteResult:
    """Cross regimes × chaos policies at one scale tier.

    Each regime gets its own corpus and one fixed schedule; every policy
    replays that exact workload (the chaos layer only perturbs timing and
    cost), so within a regime the cells are directly comparable.  The
    clean baseline (policy ``none``) is always computed — even when not
    requested — because every faulty cell reports deltas against it.

    ``num_shards > 1`` runs every cell on a
    :class:`~repro.pelican.cluster.Cluster` instead of a single-cloud
    fleet — the scale axis the matrix sweeps for sharded serving,
    including shard-outage policies with cross-shard failover.

    ``resilience`` names a :data:`~repro.pelican.resilience.RESILIENCE_POLICIES`
    preset applied to *every* cell (DESIGN.md §11); ``deadline``
    overrides the policy's per-query deadline.  Availability and SLO
    attainment are measured for every cell — with or without a policy —
    against one common deadline (the override, else the policy's, else
    :data:`~repro.pelican.resilience.DEFAULT_QUERY_DEADLINE`), so a
    resilient run and an unprotected baseline read on the same scale.
    """
    res_policy: Optional[ResiliencePolicy] = None
    if resilience is not None and resilience != "none":
        res_policy = resilience_policy(resilience, seed=chaos_seed, deadline=deadline)
    measure_deadline = deadline
    if measure_deadline is None and res_policy is not None:
        measure_deadline = res_policy.deadline
    if measure_deadline is None:
        measure_deadline = DEFAULT_QUERY_DEADLINE
    results: List[ScenarioResult] = []
    pelican = training_report = None
    for regime_name in regimes:
        regime = resolve_regime(regime_name)
        corpus = generate_regime_corpus(scale.corpus, regime)
        splits = {
            uid: corpus.user_dataset(uid, LEVEL).split(0.8)
            for uid in corpus.personal_ids
        }
        schedule, targets = build_scenario_schedule(
            corpus, splits, queries_per_user=queries_per_user, k=k
        )
        if pelican is None:
            pelican, training_report = trained_pelican(scale, corpus, fast_setup)

        def run_one(policy_name: str) -> ScenarioResult:
            fleet, responses, hit_rate, num_queries = _run_cell(
                pelican, training_report, schedule, targets, policy_name,
                chaos_seed, registry_capacity,
                num_shards=num_shards, placement=placement,
                resilience=res_policy,
            )
            chaos = (
                fleet.merged_chaos()
                if isinstance(fleet, Cluster)
                else fleet.chaos.signature()
            )
            stats = fleet.resilience_stats
            availability = measure_availability(
                schedule,
                responses,
                measure_deadline,
                penalized=stats.unprotected_outage_queries,
            )
            return ScenarioResult(
                regime=regime.name,
                policy=policy_name,
                scale=scale.name,
                num_users=len(corpus.personal_ids),
                num_queries=num_queries,
                k=k,
                hit_rate=hit_rate,
                signature=fleet.report.signature(),
                chaos=chaos,
                num_shards=num_shards,
                resilience=res_policy.name if res_policy is not None else "none",
                deadline=measure_deadline,
                availability=availability.availability,
                slo_attainment=availability.slo_attainment,
                shed_queries=availability.shed,
                degraded_queries=sum(1 for r in responses if r.degraded),
            )

        baseline = run_one("none")
        for policy_name in policies:
            if policy_name == "none":
                results.append(baseline)
                continue
            cell = run_one(policy_name)
            cell.hit_rate_delta = cell.hit_rate - baseline.hit_rate
            cell.network_seconds_delta = (
                cell.signature["network_seconds"]
                - baseline.signature["network_seconds"]
            )
            cell.cloud_seconds_delta = (
                cell.signature["cloud_simulated_seconds"]
                - baseline.signature["cloud_simulated_seconds"]
            )
            cell.device_seconds_delta = (
                cell.signature["device_simulated_seconds"]
                - baseline.signature["device_simulated_seconds"]
            )
            cell.registry_load_seconds_delta = (
                cell.signature["registry_load_seconds"]
                - baseline.signature["registry_load_seconds"]
            )
            results.append(cell)
    return ScenarioSuiteResult(
        scale=scale.name,
        chaos_seed=chaos_seed,
        results=results,
        num_shards=num_shards,
        resilience=res_policy.name if res_policy is not None else "none",
        deadline=measure_deadline,
    )
