"""Plain-text rendering of experiment results, matching the paper's rows."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.eval.analysis import ScatterStudy
from repro.eval.experiments import (
    AttackMethodResult,
    OverheadResult,
    PersonalizationRow,
)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_series(series: Dict[int, float], label: str = "k") -> str:
    """Render a {k: value} series as one table row block."""
    headers = [label] + [str(k) for k in series]
    rows = [["value"] + [f"{v:.2f}" for v in series.values()]]
    return format_table(headers, rows)


def render_attack_methods(results: Dict[str, AttackMethodResult]) -> str:
    """Table II + Fig 2a combined view."""
    ks = list(next(iter(results.values())).accuracy)
    headers = ["method", *[f"top-{k}" for k in ks], "runtime (s)", "queries"]
    rows = [
        [r.name, *[r.accuracy[k] for k in ks], r.runtime_seconds, r.queries]
        for r in results.values()
    ]
    return format_table(headers, rows)


def render_accuracy_grid(results: Dict[str, Dict[int, float]], row_label: str) -> str:
    """Generic {series -> {k -> accuracy}} rendering (Figs 2b/2c/3a/5a/5c)."""
    ks = list(next(iter(results.values())))
    headers = [row_label, *[f"top-{k}" for k in ks]]
    rows = [[name, *[series[k] for k in ks]] for name, series in results.items()]
    return format_table(headers, rows)


def render_personalization(results: Dict[str, List[PersonalizationRow]]) -> str:
    """Table III rendering."""
    headers = ["location", "method", "train", "top-1", "top-2", "top-3"]
    rows = []
    for level, level_rows in results.items():
        for row in level_rows:
            rows.append(
                [level, row.method, row.train_top1, row.test_top1, row.test_top2, row.test_top3]
            )
    return format_table(headers, rows)


def render_training_sweep(results: Dict[int, List[PersonalizationRow]]) -> str:
    """Table IV rendering."""
    headers = ["weeks", "method", "train", "top-1", "top-2", "top-3"]
    rows = []
    for weeks, week_rows in results.items():
        for row in week_rows:
            rows.append(
                [weeks, row.method, row.train_top1, row.test_top1, row.test_top2, row.test_top3]
            )
    return format_table(headers, rows)


def render_overhead(result: OverheadResult) -> str:
    """§V-C2 rendering."""
    headers = ["phase", "billion cycles", "wall seconds"]
    rows = [["cloud general training", result.cloud.estimated_billion_cycles, result.cloud.wall_seconds]]
    for method, report in result.device_per_method.items():
        rows.append(
            [f"device personalization ({method})", report.estimated_billion_cycles, report.wall_seconds]
        )
    for method in result.device_per_method:
        rows.append([f"cloud/device ratio ({method})", result.ratio(method), ""])
    return format_table(headers, rows)


def render_bar_chart(
    series: Dict[str, float], width: int = 40, unit: str = "%"
) -> str:
    """Render a horizontal ASCII bar chart for one named series.

    Used by the CLI to approximate the paper's figures in a terminal::

        true     ████████████████████████  61.1%
        none     █████████████             33.3%
    """
    if not series:
        return "(empty series)"
    label_width = max(len(str(k)) for k in series)
    peak = max(max(series.values()), 1e-12)
    lines = []
    for name, value in series.items():
        filled = int(round(width * value / peak)) if value > 0 else 0
        bar = "█" * filled
        lines.append(f"{str(name).ljust(label_width)}  {bar.ljust(width)}  {value:.1f}{unit}")
    return "\n".join(lines)


def render_scatter(studies: Dict[str, ScatterStudy]) -> str:
    """Fig 3b/3c rendering: per-level correlations plus the raw points."""
    lines = []
    for level, study in studies.items():
        corr = study.correlation()
        lines.append(
            f"{level}: r={corr.coefficient:.3f} p={corr.p_value:.3g} n={corr.n} "
            f"({study.covariate_name} vs attack accuracy)"
        )
        for uid, (x, yv) in sorted(study.points.items()):
            lines.append(f"  user {uid}: {study.covariate_name}={x:.1f} attack={yv:.1f}%")
    return "\n".join(lines)


def render_scenarios(suite: "ScenarioSuiteResult") -> str:
    """Scenario-matrix rendering (DESIGN.md §8).

    One row per (regime, chaos policy) cell; the Δ columns compare each
    faulty run against the same regime's clean baseline, so population
    effects (rows across regimes) and fault effects (rows within one
    regime) read separately.  The avail/SLO/shed/degr columns score
    every cell against the suite's common deadline (DESIGN.md §11) —
    availability penalizes unprotected full-outage answers, SLO
    attainment additionally demands the deadline was met, and the shed
    and degraded counts expose what the resilience policy traded away.
    """
    headers = [
        "regime", "policy", "queries", "hit@k", "Δhit",
        "avail", "SLO", "shed", "degr",
        "net s", "Δnet s", "Δcloud s", "retries", "deferred",
        "stragglers", "cold-fails",
    ]
    rows = []
    for cell in suite.results:
        rows.append(
            [
                cell.regime,
                cell.policy,
                cell.num_queries,
                f"{cell.hit_rate:.2%}",
                f"{cell.hit_rate_delta:+.2%}",
                f"{cell.availability:.2%}",
                f"{cell.slo_attainment:.2%}",
                cell.shed_queries,
                cell.degraded_queries,
                f"{cell.signature['network_seconds']:.2f}",
                f"{cell.network_seconds_delta:+.2f}",
                f"{cell.cloud_seconds_delta:+.3f}",
                cell.chaos["transfer_retries"],
                cell.chaos["deferred_events"],
                cell.chaos["straggler_updates"],
                cell.chaos["cold_load_failures"],
            ]
        )
    shards = f", {suite.num_shards} shards" if suite.num_shards > 1 else ""
    resilience = (
        f", resilience {suite.resilience} (deadline {suite.deadline:g}s)"
        if suite.resilience != "none"
        else f", deadline {suite.deadline:g}s"
    )
    lines = [
        f"scenario matrix @ {suite.scale} "
        f"(chaos seed {suite.chaos_seed}{shards}{resilience}): "
        f"{len(suite.results)} cells",
        format_table(headers, rows),
    ]
    return "\n".join(lines)


def render_audit(report: "AuditReport") -> str:
    """Audit-matrix rendering (DESIGN.md §10).

    One row per (regime, defense, adversary-class) cell.  ``leak@k`` is
    the attack's hit rate against the live deployment (the paper's
    Fig 2/3 y-axis, measured through the serving stack); ``benign`` is
    the same cell's service accuracy, so the defense's privacy/utility
    trade reads off one table.  The query and simulated-seconds columns
    split the cell's books adversary-vs-benign.
    """
    headers = [
        "regime", "defense", "adversary", "users", "inst",
        *[f"leak@{k}" for k in report.ks],
        "benign", "adv queries", "benign queries", "adv net s",
    ]
    rows = []
    for cell in report.cells:
        rows.append(
            [
                cell.regime,
                cell.defense,
                cell.adversary,
                f"{cell.covered_users}/{cell.num_users}",
                cell.num_instances,
                *[f"{cell.leakage[k]:.2%}" for k in report.ks],
                f"{cell.benign_hit_rate:.2%}",
                cell.adversary_queries,
                cell.benign_queries,
                f"{cell.adversary_network_seconds:.2f}",
            ]
        )
    shards = f", {report.num_shards} shards" if report.num_shards > 1 else ""
    chaos = (
        f", chaos {report.chaos_policy} (seed {report.chaos_seed})"
        if report.chaos_policy != "none"
        else ""
    )
    lines = [
        f"privacy audit @ {report.scale} ({report.attack} attack{shards}{chaos}): "
        f"{len(report.cells)} cells",
        format_table(headers, rows),
    ]
    return "\n".join(lines)


def render_fleet(result: "FleetThroughputResult") -> str:
    """Fleet serving comparison rendering (DESIGN.md §7/§9)."""
    report = result.report
    shards = f" on {result.num_shards} shards" if result.num_shards > 1 else ""
    if result.workers:
        shards += f" x {result.workers} workers"
    shards += " (stacked dispatch)" if result.stacked else ""
    lines = [
        f"fleet @ {result.scale}: {result.num_users} users{shards}, "
        f"{result.num_queries} queries in {result.batches} batches "
        f"(mean batch {report.mean_batch_size:.1f})",
        f"  looped  serving: {result.looped_seconds * 1e3:9.1f} ms",
        f"  batched serving: {result.batched_seconds * 1e3:9.1f} ms   "
        f"({result.speedup:.2f}x, {result.batched_queries_per_second:,.0f} queries/s)",
        f"  parity: {'identical outputs' if result.parity else 'MISMATCH'}",
        "",
        "per-side attribution:",
        f"  cloud : {report.cloud_compute.macs / 1e6:10.1f} MMACs, "
        f"{report.cloud_simulated_seconds:.3f}s simulated "
        f"({report.cloud_profile.name})",
        f"  device: {report.device_compute.macs / 1e6:10.1f} MMACs, "
        f"{report.device_simulated_seconds:.3f}s simulated "
        f"({report.device_profile.name})",
        f"  network: {report.network_seconds:.2f}s simulated, "
        f"{report.network_bytes_up / 1e6:.2f} MB up / "
        f"{report.network_bytes_down / 1e6:.2f} MB down",
        f"  registry: {report.registry.hits} hits, "
        f"{report.registry.cold_loads} cold loads, "
        f"{report.registry.evictions} evictions",
    ]
    if report.adversary_queries:
        lines.append(
            f"  adversary: {report.adversary_queries} probe queries in "
            f"{report.adversary_batches} batches, "
            f"{report.adversary_cloud_compute.macs / 1e6:.1f} cloud MMACs, "
            f"{report.adversary_network_seconds:.2f}s network (DESIGN.md §10)"
        )
    if result.num_shards > 1:
        lines.append("")
        lines.append("per-shard breakdown:")
        for shard_id, shard in enumerate(report.shard_reports):
            lines.append(
                f"  shard {shard_id}: {shard.onboards} users, "
                f"{shard.queries} queries in {shard.batches} batches, "
                f"{shard.cloud_compute.macs / 1e6:.1f} cloud MMACs, "
                f"{shard.network_seconds:.2f}s network, "
                f"registry {shard.registry.hits}h/"
                f"{shard.registry.cold_loads}c/"
                f"{shard.registry.evictions}e"
            )
    return "\n".join(lines)


def render_service_load(result: "ServiceLoadResult") -> str:
    """Service front-door load rendering (DESIGN.md §15)."""
    stack = f" on {result.num_shards} shards" if result.num_shards > 1 else ""
    if result.workers:
        stack += f" x {result.workers} workers"
    if result.stacked:
        stack += " (stacked dispatch)"
    if result.store != "memory":
        stack += f", {result.store} store"
    knobs = f"chaos {result.policy}, resilience {result.resilience}"
    sig = result.signature
    lines = [
        f"service load @ {result.scale}: {result.num_devices} devices over "
        f"{result.num_users} users{stack} ({knobs})",
        f"  traffic : {', '.join(result.regimes)} regime(s), "
        f"{result.events} events compiled, {result.generated} queries generated",
        f"  admission: {result.generated - result.rejected} admitted, "
        f"{result.rejected} rejected, {result.shed} shed, "
        f"{result.flushes} flushes (mean batch {result.mean_flush_size:.1f}, "
        f"peak queue {sig['service_max_queue_depth']})",
        f"  latency : p50 {result.p50 * 1e3:.1f} ms, "
        f"p95 {result.p95 * 1e3:.1f} ms, p99 {result.p99 * 1e3:.1f} ms simulated "
        f"(queue {sig['service_queue_seconds']:.2f}s, "
        f"defer {sig['service_defer_seconds']:.2f}s, "
        f"service {sig['service_service_seconds']:.2f}s total)",
        f"  SLO     : {result.slo_attainment:.2%} within "
        f"{result.slo_deadline:g}s deadline "
        f"({sig['service_on_time']}/{result.generated} on time)",
        f"  books   : {sig['cloud_macs'] / 1e6:.1f} cloud MMACs, "
        f"{sig['network_seconds']:.2f}s network, "
        f"{sig['registry_cold_loads']} cold loads "
        f"({result.wall_seconds:.2f}s wall)",
    ]
    return "\n".join(lines)
