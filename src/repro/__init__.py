"""Reproduction of Atrey, Shenoy & Jensen, "Preserving Privacy in
Personalized Models for Distributed Mobile Services" (ICDCS 2021).

Subpackages
-----------
``repro.nn``
    From-scratch deep-learning substrate (autograd, LSTM, optimizers).
``repro.data``
    Synthetic campus-WiFi mobility substrate and feature pipeline.
``repro.models``
    Next-location prediction: general model + personalization methods.
``repro.attacks``
    Time-series model-inversion attacks (brute force / gradient /
    time-based) under adversaries A1/A2/A3.
``repro.pelican``
    The Pelican privacy-preserving personalization framework.
``repro.eval``
    Experiment runners regenerating every paper table and figure.

Quickstart
----------
>>> from repro.eval import ExperimentScale, Pipeline, run_attack_methods
>>> pipeline = Pipeline(ExperimentScale.tiny())
>>> results = run_attack_methods(pipeline, ks=(1, 3))
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
