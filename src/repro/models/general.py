"""Cloud-side general model training (paper §III-A1, §V-A1).

The general model ``M_G`` is a 2-layer LSTM trained on the pooled
trajectories of all contributor users.  The paper trains with lr 1e-4,
weight decay 1e-6, hidden 128, batch 128, dropout 0.1; our defaults keep the
same structure but scale hidden size and learning rate to the reduced corpus
(all knobs are explicit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import SequenceDataset
from repro.models.architecture import NextLocationModel
from repro.nn import FitResult, fit


@dataclass
class GeneralModelConfig:
    """Hyperparameters for general-model training."""

    hidden_size: int = 64  # paper: 128
    num_layers: int = 2
    dropout: float = 0.1
    learning_rate: float = 3e-3  # paper: 1e-4 at full scale
    weight_decay: float = 1e-6
    batch_size: int = 128
    epochs: int = 12
    grad_clip: float = 5.0
    patience: Optional[int] = 4


def train_general_model(
    train_dataset: SequenceDataset,
    config: GeneralModelConfig,
    rng: np.random.Generator,
) -> Tuple[NextLocationModel, FitResult]:
    """Train ``M_G`` on pooled contributor windows.

    Returns the trained model (in eval mode) and the fit record.
    """
    spec = train_dataset.spec
    model = NextLocationModel(
        input_width=spec.width,
        num_locations=spec.num_locations,
        hidden_size=config.hidden_size,
        num_layers=config.num_layers,
        dropout=config.dropout,
        rng=rng,
    )
    X, y = train_dataset.encode()
    result = fit(
        model,
        X,
        y,
        epochs=config.epochs,
        batch_size=config.batch_size,
        lr=config.learning_rate,
        weight_decay=config.weight_decay,
        rng=rng,
        grad_clip=config.grad_clip,
        patience=config.patience,
    )
    model.eval()
    return model, result
