"""Device-side model personalization (paper §III-A3, §V-C1).

Implements the four methods compared in Table III:

* ``REUSE`` — the unmodified general model (baseline);
* ``LSTM`` — a 1-layer LSTM with dropout trained from scratch on the user's
  data alone;
* ``TL_FE`` — transfer learning by *feature extraction*: freeze the general
  model's LSTM stack, append a surplus LSTM layer, train the surplus layer
  and the linear head on user data (Fig 1b);
* ``TL_FT`` — transfer learning by *fine tuning*: copy the general model,
  freeze the first LSTM layer, re-train the second LSTM layer and the
  linear head on user data (Fig 1c).

Domain equalization (§III-A3) is inherent: personal datasets are encoded
with the campus-wide location vocabulary, so the personal model's domain
matches the general model's.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import SequenceDataset
from repro.models.architecture import NextLocationModel
from repro.nn import Adam, FitResult, fit


class PersonalizationMethod(str, Enum):
    """The four device-based personalization methods of Table III."""

    REUSE = "reuse"
    LSTM = "lstm"
    TL_FE = "tl_fe"
    TL_FT = "tl_ft"


@dataclass
class PersonalizationConfig:
    """Hyperparameters for on-device personalization."""

    learning_rate: float = 3e-3
    weight_decay: float = 1e-6
    batch_size: int = 32
    epochs: int = 20
    grad_clip: float = 5.0
    patience: Optional[int] = 5
    scratch_hidden_size: int = 32
    scratch_dropout: float = 0.1
    scratch_epochs_multiplier: int = 3
    """From-scratch training converges far slower than transfer learning on
    small personal datasets; the paper's LSTM baseline trains to (over-)
    convergence (86.76% train accuracy at 2 weeks, Table IV), so the
    scratch method gets proportionally more epochs."""


def personalize(
    general_model: NextLocationModel,
    train_dataset: SequenceDataset,
    method: PersonalizationMethod,
    config: PersonalizationConfig,
    rng: np.random.Generator,
) -> Tuple[NextLocationModel, Optional[FitResult]]:
    """Build a personal model ``M_P`` from ``M_G`` and the user's data.

    Returns the personal model in eval mode and the fit record (``None``
    for ``REUSE``, which involves no training).
    """
    if method == PersonalizationMethod.REUSE:
        return general_model.copy(rng), None
    if method == PersonalizationMethod.LSTM:
        return _train_scratch(train_dataset, config, rng)
    if method == PersonalizationMethod.TL_FE:
        return _feature_extraction(general_model, train_dataset, config, rng)
    if method == PersonalizationMethod.TL_FT:
        return _fine_tune(general_model, train_dataset, config, rng)
    raise ValueError(f"unknown personalization method: {method}")


def _train_scratch(
    train_dataset: SequenceDataset, config: PersonalizationConfig, rng: np.random.Generator
) -> Tuple[NextLocationModel, FitResult]:
    """Table III's "LSTM" baseline: 1-layer LSTM trained on user data only."""
    spec = train_dataset.spec
    model = NextLocationModel(
        input_width=spec.width,
        num_locations=spec.num_locations,
        hidden_size=config.scratch_hidden_size,
        num_layers=1,
        dropout=config.scratch_dropout,
        rng=rng,
    )
    result = _fit_personal(
        model, train_dataset, config, rng,
        epochs=config.epochs * config.scratch_epochs_multiplier,
    )
    return model, result


def _feature_extraction(
    general_model: NextLocationModel,
    train_dataset: SequenceDataset,
    config: PersonalizationConfig,
    rng: np.random.Generator,
) -> Tuple[NextLocationModel, FitResult]:
    """TL-FE: frozen general LSTM stack + trainable surplus LSTM + head."""
    model = general_model.copy(rng)
    model.lstm.freeze()
    model.add_surplus_lstm(rng)
    model.head.unfreeze()
    result = _fit_personal(model, train_dataset, config, rng)
    return model, result


def _fine_tune(
    general_model: NextLocationModel,
    train_dataset: SequenceDataset,
    config: PersonalizationConfig,
    rng: np.random.Generator,
) -> Tuple[NextLocationModel, FitResult]:
    """TL-FT: freeze the first LSTM layer; re-train the rest on user data."""
    model = general_model.copy(rng)
    model.lstm.cells[0].freeze()
    for cell in model.lstm.cells[1:]:
        cell.unfreeze()
    model.head.unfreeze()
    result = _fit_personal(model, train_dataset, config, rng)
    return model, result


def _fit_personal(
    model: NextLocationModel,
    train_dataset: SequenceDataset,
    config: PersonalizationConfig,
    rng: np.random.Generator,
    epochs: Optional[int] = None,
) -> FitResult:
    X, y = train_dataset.encode()
    trainable = model.trainable_parameters()
    optimizer = Adam(trainable, lr=config.learning_rate, weight_decay=config.weight_decay)
    result = fit(
        model,
        X,
        y,
        epochs=epochs if epochs is not None else config.epochs,
        batch_size=config.batch_size,
        optimizer=optimizer,
        rng=rng,
        grad_clip=config.grad_clip,
        patience=config.patience,
    )
    model.eval()
    return result
