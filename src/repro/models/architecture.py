"""The next-location prediction architecture (paper Figure 1).

One class covers all three variants in the figure:

* **general model** (Fig 1a): ``LSTM stack -> Linear`` trained on pooled
  contributor data;
* **TL feature extraction** (Fig 1b): the general model's LSTM stack frozen,
  a *surplus* LSTM layer appended before the (re-trained) linear head;
* **TL fine-tuning** (Fig 1c): the general model copied, first LSTM layer
  frozen, later layers re-trained.

Every model ends with a :class:`~repro.nn.layers.TemperatureScaling` privacy
layer (identity until Pelican configures it, §V-B).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import (
    LSTM,
    Linear,
    Module,
    TemperatureScaling,
    Tensor,
    as_tensor,
    dtype_policy,
    lstm_infer_last,
    no_grad,
    profiler,
)


class NextLocationModel(Module):
    """LSTM next-location predictor over one-hot session sequences.

    Parameters
    ----------
    input_width:
        Width of the encoded session vector (``FeatureSpec.width``).
    num_locations:
        Size of the output location vocabulary.
    hidden_size, num_layers, dropout:
        LSTM stack configuration (paper defaults: 128 hidden, 2 layers,
        dropout 0.1 between layers).
    """

    def __init__(
        self,
        input_width: int,
        num_locations: int,
        hidden_size: int,
        num_layers: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.input_width = input_width
        self.num_locations = num_locations
        self.hidden_size = hidden_size
        self.lstm = LSTM(input_width, hidden_size, num_layers, rng, dropout=dropout)
        self.extra: Optional[LSTM] = None
        self.head = Linear(hidden_size, num_locations, rng)
        self.privacy = TemperatureScaling(1.0)

    def add_surplus_lstm(self, rng: np.random.Generator) -> None:
        """Append the TL-FE surplus LSTM layer (Fig 1b)."""
        if self.extra is not None:
            raise ValueError("surplus LSTM already present")
        self.extra = LSTM(
            self.hidden_size, self.hidden_size, 1, rng, dropout=0.0,
            backend=self.lstm.backend,
        )

    def forward(self, x: Tensor) -> Tensor:
        """Return logits of shape ``(batch, num_locations)``.

        In eval mode the privacy layer divides logits by its temperature;
        downstream consumers apply softmax to obtain confidences.
        """
        x = as_tensor(x)
        hidden = self.lstm(x)
        if self.extra is not None:
            hidden = self.extra(hidden)
        last = hidden[:, hidden.shape[1] - 1, :]
        logits = self.head(last)
        return self.privacy(logits)

    # ------------------------------------------------------------------
    # Graph-free batched inference (DESIGN.md §3)
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """The LSTM execution backend (``"fused"`` or ``"reference"``)."""
        return self.lstm.backend

    def set_backend(self, backend: str) -> None:
        """Switch every LSTM stack (and the inference path) between the
        fused kernel and the reference per-timestep graph."""
        self.lstm.backend = backend
        if self.extra is not None:
            self.extra.backend = backend

    def infer_logits(self, batch: np.ndarray) -> np.ndarray:
        """Eval-mode logits for a pre-encoded numpy batch, graph-free.

        The fast path for black-box attack queries and evaluation: runs
        the fused inference kernels end to end without any autograd
        bookkeeping.  The privacy layer's temperature scaling is applied
        exactly as in graph-mode eval.  On the reference backend this
        falls back to the graph under :class:`~repro.nn.tensor.no_grad`,
        so backend parity extends to inference (under a matching dtype
        policy — graph ops always run in the engine's policy dtype).
        """
        self.eval()
        if self.lstm.backend != "fused":
            with no_grad():
                return self.forward(Tensor(batch)).numpy()
        # The fused kernel casts queries to the weights' dtype, so a model
        # built under one policy keeps answering correctly after the
        # policy changes.
        x = np.asarray(batch, dtype=self.head.weight.data.dtype)
        cells = list(self.lstm.cells) + (list(self.extra.cells) if self.extra is not None else [])
        last = lstm_infer_last(
            x, [(c.weight_ih.data, c.weight_hh.data, c.bias.data) for c in cells]
        )
        logits = last @ self.head.weight.data + self.head.bias.data
        profiler.record_gemm(last.shape[0], last.shape[1], self.head.out_features)
        if self.privacy.temperature != 1.0:
            logits = logits / self.privacy.temperature
        return logits

    def infer_confidences(self, batch: np.ndarray) -> np.ndarray:
        """Softmax confidences fused into the final projection.

        One pass: LSTM inference kernel -> linear head -> temperature
        scaling -> stable softmax, all on numpy arrays.  This is what the
        enumeration attacks' batched confidence queries hit.
        """
        probs = self.infer_logits(batch)
        probs -= probs.max(axis=-1, keepdims=True)
        np.exp(probs, out=probs)
        probs /= probs.sum(axis=-1, keepdims=True)
        return probs

    def infer_log_confidences(self, batch: np.ndarray) -> np.ndarray:
        """Log-space confidences (precision-safe under the privacy layer)."""
        logits = self.infer_logits(batch)
        shifted = logits - logits.max(axis=-1, keepdims=True)
        return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))

    # ------------------------------------------------------------------
    # Privacy controls (Pelican §V-B)
    # ------------------------------------------------------------------
    def set_privacy_temperature(self, temperature: float) -> None:
        """Configure the inference-time privacy tuner."""
        self.privacy.set_temperature(temperature)

    @property
    def privacy_temperature(self) -> float:
        return self.privacy.temperature

    def clone_architecture(self, rng: np.random.Generator) -> "NextLocationModel":
        """A freshly initialized model with identical dimensions."""
        clone = NextLocationModel(
            input_width=self.input_width,
            num_locations=self.num_locations,
            hidden_size=self.hidden_size,
            num_layers=self.lstm.num_layers,
            dropout=self.lstm.dropout_p,
            rng=rng,
        )
        return clone

    def copy(self, rng: np.random.Generator) -> "NextLocationModel":
        """A deep copy (same weights, same dtype, independent parameters).

        The clone is built under the source model's dtype policy so a
        float32 model copied under an ambient float64 policy (or vice
        versa) is not silently re-typed.
        """
        with dtype_policy(self.head.weight.data.dtype):
            clone = self.clone_architecture(rng)
            if self.extra is not None:
                clone.add_surplus_lstm(rng)
            clone.load_state_dict(self.state_dict())
        clone.set_privacy_temperature(self.privacy_temperature)
        clone.set_backend(self.backend)
        return clone
