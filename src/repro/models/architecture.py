"""The next-location prediction architecture (paper Figure 1).

One class covers all three variants in the figure:

* **general model** (Fig 1a): ``LSTM stack -> Linear`` trained on pooled
  contributor data;
* **TL feature extraction** (Fig 1b): the general model's LSTM stack frozen,
  a *surplus* LSTM layer appended before the (re-trained) linear head;
* **TL fine-tuning** (Fig 1c): the general model copied, first LSTM layer
  frozen, later layers re-trained.

Every model ends with a :class:`~repro.nn.layers.TemperatureScaling` privacy
layer (identity until Pelican configures it, §V-B).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import LSTM, Linear, Module, TemperatureScaling, Tensor, as_tensor


class NextLocationModel(Module):
    """LSTM next-location predictor over one-hot session sequences.

    Parameters
    ----------
    input_width:
        Width of the encoded session vector (``FeatureSpec.width``).
    num_locations:
        Size of the output location vocabulary.
    hidden_size, num_layers, dropout:
        LSTM stack configuration (paper defaults: 128 hidden, 2 layers,
        dropout 0.1 between layers).
    """

    def __init__(
        self,
        input_width: int,
        num_locations: int,
        hidden_size: int,
        num_layers: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.input_width = input_width
        self.num_locations = num_locations
        self.hidden_size = hidden_size
        self.lstm = LSTM(input_width, hidden_size, num_layers, rng, dropout=dropout)
        self.extra: Optional[LSTM] = None
        self.head = Linear(hidden_size, num_locations, rng)
        self.privacy = TemperatureScaling(1.0)

    def add_surplus_lstm(self, rng: np.random.Generator) -> None:
        """Append the TL-FE surplus LSTM layer (Fig 1b)."""
        if self.extra is not None:
            raise ValueError("surplus LSTM already present")
        self.extra = LSTM(self.hidden_size, self.hidden_size, 1, rng, dropout=0.0)

    def forward(self, x: Tensor) -> Tensor:
        """Return logits of shape ``(batch, num_locations)``.

        In eval mode the privacy layer divides logits by its temperature;
        downstream consumers apply softmax to obtain confidences.
        """
        x = as_tensor(x)
        hidden = self.lstm(x)
        if self.extra is not None:
            hidden = self.extra(hidden)
        last = hidden[:, hidden.shape[1] - 1, :]
        logits = self.head(last)
        return self.privacy(logits)

    # ------------------------------------------------------------------
    # Privacy controls (Pelican §V-B)
    # ------------------------------------------------------------------
    def set_privacy_temperature(self, temperature: float) -> None:
        """Configure the inference-time privacy tuner."""
        self.privacy.set_temperature(temperature)

    @property
    def privacy_temperature(self) -> float:
        return self.privacy.temperature

    def clone_architecture(self, rng: np.random.Generator) -> "NextLocationModel":
        """A freshly initialized model with identical dimensions."""
        clone = NextLocationModel(
            input_width=self.input_width,
            num_locations=self.num_locations,
            hidden_size=self.hidden_size,
            num_layers=self.lstm.num_layers,
            dropout=self.lstm.dropout_p,
            rng=rng,
        )
        return clone

    def copy(self, rng: np.random.Generator) -> "NextLocationModel":
        """A deep copy (same weights, independent parameters)."""
        clone = self.clone_architecture(rng)
        if self.extra is not None:
            clone.add_surplus_lstm(rng)
        clone.load_state_dict(self.state_dict())
        clone.set_privacy_temperature(self.privacy_temperature)
        return clone
