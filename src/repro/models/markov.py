"""Markov-chain next-location baselines (paper §II).

"Prior work in next location prediction has focused on using variants of
Markov models ... Personalized modeling in mobility has been generally
conducted via Markov models [Gambs et al.]."  These baselines ground the
LSTM results: a personalized LSTM should beat a per-user Markov chain on
users with long-range temporal structure, and a Markov chain is the
natural non-neural comparator for Table III-style evaluations.

Two variants:

* :class:`MarkovChainModel` — order-1/2 location transition chain with
  Laplace smoothing and back-off (order-2 -> order-1 -> marginal).
* :class:`TimeAwareMarkovModel` — transitions conditioned on a coarse
  time-of-day bucket, capturing the diurnal structure of campus mobility.

Both expose the same ``confidences`` interface as the neural predictor so
they can be evaluated (and attacked) uniformly.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import SequenceDataset, Window
from repro.data.features import FeatureSpec, SessionFeatures
from repro.nn.functional import top_k_indices


@dataclass
class MarkovChainModel:
    """Order-k (k in {1, 2}) location Markov chain with back-off.

    Probabilities are estimated from windows: an order-2 context is the
    pair ``(l_{t-2}, l_{t-1})``, order-1 is ``l_{t-1}``.  Unseen contexts
    back off to the lower order; everything is Laplace smoothed.
    """

    num_locations: int
    order: int = 2
    smoothing: float = 0.1
    _order2: Dict[Tuple[int, int], np.ndarray] = field(default_factory=dict, repr=False)
    _order1: Dict[int, np.ndarray] = field(default_factory=dict, repr=False)
    _marginal: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.order not in (1, 2):
            raise ValueError(f"order must be 1 or 2, got {self.order}")
        if self.smoothing < 0:
            raise ValueError("smoothing must be non-negative")

    # ------------------------------------------------------------------
    def fit(self, dataset: SequenceDataset) -> "MarkovChainModel":
        """Estimate transition counts from a windowed dataset."""
        counts2: Dict[Tuple[int, int], np.ndarray] = defaultdict(
            lambda: np.zeros(self.num_locations)
        )
        counts1: Dict[int, np.ndarray] = defaultdict(lambda: np.zeros(self.num_locations))
        marginal = np.zeros(self.num_locations)
        for window in dataset.windows:
            prev2 = window.history[0].location
            prev1 = window.history[1].location
            target = window.target
            counts2[(prev2, prev1)][target] += 1
            counts1[prev1][target] += 1
            marginal[target] += 1
        self._order2 = {k: self._normalize(v) for k, v in counts2.items()}
        self._order1 = {k: self._normalize(v) for k, v in counts1.items()}
        total = marginal.sum()
        self._marginal = (
            self._normalize(marginal) if total else np.full(self.num_locations, 1.0 / self.num_locations)
        )
        return self

    def _normalize(self, counts: np.ndarray) -> np.ndarray:
        smoothed = counts + self.smoothing
        return smoothed / smoothed.sum()

    # ------------------------------------------------------------------
    def confidences(self, history: Sequence[SessionFeatures]) -> np.ndarray:
        """Probability distribution over the next location.

        Histories shorter than the order back off gracefully (order-1,
        then marginal) instead of failing — the resilience layer's prior
        tier (DESIGN.md §11) serves arbitrary query histories through
        here.
        """
        if self._marginal is None:
            raise RuntimeError("model has not been fit")
        if len(history) < 2:
            if history and history[-1].location in self._order1:
                return self._order1[history[-1].location]
            return self._marginal
        prev2 = history[0].location
        prev1 = history[1].location
        if self.order == 2 and (prev2, prev1) in self._order2:
            return self._order2[(prev2, prev1)]
        if prev1 in self._order1:
            return self._order1[prev1]
        return self._marginal

    def top_k_accuracy(self, dataset: SequenceDataset, k: int) -> float:
        """Top-k accuracy over a windowed dataset."""
        if not dataset.windows:
            return float("nan")
        hits = []
        for window in dataset.windows:
            probs = self.confidences(window.history)
            hits.append(bool(np.isin(window.target, top_k_indices(probs, k))))
        return float(np.mean(hits))


@dataclass
class TimeAwareMarkovModel:
    """Markov chain conditioned on (previous location, time-of-day bucket).

    Campus mobility is strongly diurnal; conditioning the transition on a
    coarse time bucket (default 4 buckets: night/morning/afternoon/
    evening) captures most of that structure without the LSTM.
    """

    num_locations: int
    time_buckets: int = 4
    smoothing: float = 0.1
    _table: Dict[Tuple[int, int], np.ndarray] = field(default_factory=dict, repr=False)
    _fallback: Optional[MarkovChainModel] = field(default=None, repr=False)

    def _bucket(self, entry_bin: int) -> int:
        bins_per_bucket = max(1, 48 // self.time_buckets)
        return min(entry_bin // bins_per_bucket, self.time_buckets - 1)

    def fit(self, dataset: SequenceDataset) -> "TimeAwareMarkovModel":
        counts: Dict[Tuple[int, int], np.ndarray] = defaultdict(
            lambda: np.zeros(self.num_locations)
        )
        for window in dataset.windows:
            prev = window.history[1]
            key = (prev.location, self._bucket(prev.entry_bin))
            counts[key][window.target] += 1
        self._table = {
            key: (value + self.smoothing) / (value + self.smoothing).sum()
            for key, value in counts.items()
        }
        self._fallback = MarkovChainModel(self.num_locations, order=1).fit(dataset)
        return self

    def confidences(self, history: Sequence[SessionFeatures]) -> np.ndarray:
        if self._fallback is None:
            raise RuntimeError("model has not been fit")
        prev = history[1]
        key = (prev.location, self._bucket(prev.entry_bin))
        if key in self._table:
            return self._table[key]
        return self._fallback.confidences(history)

    def top_k_accuracy(self, dataset: SequenceDataset, k: int) -> float:
        if not dataset.windows:
            return float("nan")
        hits = []
        for window in dataset.windows:
            probs = self.confidences(window.history)
            hits.append(bool(np.isin(window.target, top_k_indices(probs, k))))
        return float(np.mean(hits))
