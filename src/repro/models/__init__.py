"""``repro.models`` — next-location prediction models (paper §III-A).

General LSTM model, transfer-learning personalization (feature extraction
and fine tuning), scratch-LSTM and reuse baselines, and the black-box
predictor interface exposed to the service provider.
"""

from repro.models.architecture import NextLocationModel
from repro.models.markov import MarkovChainModel, TimeAwareMarkovModel
from repro.models.general import GeneralModelConfig, train_general_model
from repro.models.personalize import (
    PersonalizationConfig,
    PersonalizationMethod,
    personalize,
)
from repro.models.predictor import NextLocationPredictor

__all__ = [
    "GeneralModelConfig",
    "MarkovChainModel",
    "TimeAwareMarkovModel",
    "NextLocationModel",
    "NextLocationPredictor",
    "PersonalizationConfig",
    "PersonalizationMethod",
    "personalize",
    "train_general_model",
]
