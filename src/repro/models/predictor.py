"""Black-box prediction interface over a next-location model.

This is the surface the *service provider* (the honest-but-curious
adversary of §III-B1) sees: it can query the model with feature sequences
and observe the output confidence scores for all classes — nothing else.
Both the mobile service (top-k recommendations) and the inversion attacks
consume this interface, which is what makes the attack realistic.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.data.features import FeatureSpec, SessionFeatures
from repro.models.architecture import NextLocationModel
from repro.nn import top_k_indices


class NextLocationPredictor:
    """Query wrapper: encoded or raw feature windows in, confidences out."""

    def __init__(self, model: NextLocationModel, spec: FeatureSpec) -> None:
        if model.num_locations != spec.num_locations:
            raise ValueError(
                f"model location domain {model.num_locations} != "
                f"spec domain {spec.num_locations}"
            )
        self.model = model
        self.spec = spec
        self.query_count = 0

    # ------------------------------------------------------------------
    # Black-box queries
    # ------------------------------------------------------------------
    def confidences(self, history: Sequence[SessionFeatures]) -> np.ndarray:
        """Confidence scores (probabilities over all locations) for one window."""
        encoded = self.spec.encode_sequence(history)[None, :, :]
        return self.confidences_encoded(encoded)[0]

    def confidences_encoded(self, batch: np.ndarray) -> np.ndarray:
        """Confidences for a pre-encoded batch of shape ``(n, steps, width)``.

        The model runs in eval mode, so the privacy layer's temperature
        scaling (if configured) is applied to the logits before softmax —
        the adversary only ever sees post-privacy confidences.  Queries go
        through the model's graph-free inference kernel (DESIGN.md §3),
        which fuses the softmax into the final projection — no autograd
        graph is ever built for black-box queries.
        """
        probs = self.model.infer_confidences(batch)
        self.query_count += len(batch)
        return probs

    def log_confidences_encoded(self, batch: np.ndarray) -> np.ndarray:
        """Log-space confidences: full precision under the privacy layer.

        The paper notes the privacy enhancement preserves model accuracy
        "as long as appropriate precision is used in storing the confidence
        values"; log space is that precision.  The *service* ranks with
        these, so its top-k accuracy is exactly temperature invariant,
        while attack code observes the linear-space (saturating)
        :meth:`confidences_encoded`.
        """
        out = self.model.infer_log_confidences(batch)
        self.query_count += len(batch)
        return out

    def top_k(self, history: Sequence[SessionFeatures], k: int) -> List[Tuple[int, float]]:
        """The service's API: top-k next locations with confidences.

        Ranking happens in log space (precision-safe under the privacy
        layer); the returned confidences are linear-space probabilities,
        which is what the provider observes.
        """
        encoded = self.spec.encode_sequence(history)[None, :, :]
        log_probs = self.log_confidences_encoded(encoded)[0]
        order = top_k_indices(log_probs, k)
        return [(int(loc), float(np.exp(log_probs[loc]))) for loc in order]

    def predict(self, history: Sequence[SessionFeatures]) -> int:
        """Single most-likely next location."""
        return self.top_k(history, 1)[0][0]

    # ------------------------------------------------------------------
    # Batched multi-instance queries (the fleet serving surface)
    # ------------------------------------------------------------------
    def encode_histories(
        self, histories: Sequence[Sequence[SessionFeatures]]
    ) -> np.ndarray:
        """Encode many query windows into one ``(n, steps, width)`` batch.

        All windows must share one length — that is the batching boundary
        the fleet layer groups on (DESIGN.md §7).
        """
        lengths = {len(h) for h in histories}
        if len(lengths) > 1:
            raise ValueError(
                f"histories must share one window length to batch, got {sorted(lengths)}"
            )
        return np.stack([self.spec.encode_sequence(h) for h in histories])

    def top_k_batch(
        self, histories: Sequence[Sequence[SessionFeatures]], k: int
    ) -> List[List[Tuple[int, float]]]:
        """Top-k predictions for many windows in one fused dispatch.

        The whole batch runs through the graph-free inference kernel — one
        GEMM stack for the group instead of one per query — and is ranked
        row-wise in log space.  Predictions match calling :meth:`top_k`
        once per window: identical rankings, confidences equal to within
        BLAS shape-dependent round-off (DESIGN.md §7).
        """
        if not histories:
            return []
        log_probs = self.log_confidences_encoded(self.encode_histories(histories))
        order = top_k_indices(log_probs, k, axis=-1)
        return [
            [(int(loc), float(np.exp(row_logp[loc]))) for loc in row_order]
            for row_logp, row_order in zip(log_probs, order)
        ]

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def top_k_accuracy(self, X: np.ndarray, y: np.ndarray, k: int) -> float:
        """Top-k accuracy over an encoded dataset (log-space ranking)."""
        if len(X) == 0:
            return float("nan")
        log_probs = self.log_confidences_encoded(X)
        top = top_k_indices(log_probs, k, axis=-1)
        hits = (top == np.asarray(y)[:, None]).any(axis=1)
        return float(hits.mean())
