"""Corpus persistence: save/load traces so experiments can share datasets.

Real evaluation pipelines snapshot the processed dataset; this module does
the same for the synthetic corpus — AP sessions round-trip through a
compressed ``.npz`` (columnar arrays), and trajectories export to CSV for
inspection with standard tools.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.data.sessions import APSession, LocationSession

_COLUMNS = (
    "user_id",
    "day_index",
    "day_of_week",
    "entry_minute",
    "duration_minute",
    "building_id",
    "ap_id",
)


def save_ap_sessions(
    sessions_by_user: Dict[int, List[APSession]], path: Union[str, Path]
) -> int:
    """Write all users' AP sessions to a compressed npz; returns byte size."""
    rows = [
        (s.user_id, s.day_index, s.day_of_week, s.entry_minute, s.duration_minute,
         s.building_id, s.ap_id)
        for sessions in sessions_by_user.values()
        for s in sessions
    ]
    table = np.array(rows, dtype=np.int64).reshape(len(rows), len(_COLUMNS))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, sessions=table, columns=np.array(_COLUMNS))
    return path.stat().st_size


def load_ap_sessions(path: Union[str, Path]) -> Dict[int, List[APSession]]:
    """Inverse of :func:`save_ap_sessions`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        table = archive["sessions"]
    result: Dict[int, List[APSession]] = {}
    for row in table:
        session = APSession(
            user_id=int(row[0]),
            day_index=int(row[1]),
            day_of_week=int(row[2]),
            entry_minute=int(row[3]),
            duration_minute=int(row[4]),
            building_id=int(row[5]),
            ap_id=int(row[6]),
        )
        result.setdefault(session.user_id, []).append(session)
    for sessions in result.values():
        sessions.sort(key=lambda s: (s.day_index, s.entry_minute))
    return result


def export_trajectory_csv(
    trajectory: Sequence[LocationSession], path: Union[str, Path]
) -> int:
    """Write one trajectory to CSV; returns the number of rows written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["user_id", "day_index", "day_of_week", "entry_minute", "duration_minute", "location_id"]
        )
        for session in trajectory:
            writer.writerow(
                [
                    session.user_id,
                    session.day_index,
                    session.day_of_week,
                    session.entry_minute,
                    session.duration_minute,
                    session.location_id,
                ]
            )
    return len(trajectory)
