"""Routine-driven mobility simulator for campus users.

Substitutes for the paper's real student traces (DESIGN.md §2).  Each user
gets a :class:`UserProfile` — home dorm, class schedule, dining and
extracurricular preferences, plus two behavioural knobs the paper's analysis
depends on:

* ``routine_strength`` ∈ (0, 1): probability of following the schedule on
  any given slot.  Drives *mobility predictability* (paper Fig 3c).
* ``sociability`` ∈ (0, 1): propensity for extra discretionary visits.
  Drives *degree of mobility* (paper Fig 3b).

A day is simulated as a contiguous chain of building visits from midnight
to midnight (the device is always associated somewhere), which yields the
cross-sequence time correlation (``e_t = e_{t-1} + d_{t-1}``) that the
paper's time-based inversion attack exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.campus import Building, BuildingKind, CampusTopology

MINUTES_PER_DAY = 24 * 60


@dataclass(frozen=True)
class Visit:
    """One building-level stay: the atomic unit of a mobility trajectory."""

    user_id: int
    day_index: int
    day_of_week: int
    entry_minute: int
    duration_minute: int
    building_id: int

    @property
    def exit_minute(self) -> int:
        return self.entry_minute + self.duration_minute


@dataclass
class UserProfile:
    """A user's weekly routine and behavioural parameters."""

    user_id: int
    home_dorm: int
    class_slots: Dict[int, List[Tuple[int, int, int]]]
    """Per weekday (0=Mon..4=Fri): list of (start_minute, duration, building)."""
    dining_halls: List[int]
    hangouts: List[int]
    """Gym/library/other buildings for discretionary time."""
    explore_pool: List[int]
    """Personal Zipf-weighted pool for off-routine excursions; real users
    deviate to a handful of familiar places, not uniformly over campus."""
    weekday_haunts: Dict[int, List[int]]
    """Per day-of-week preferred discretionary buildings.  Real schedules
    are weekly-periodic: the Monday coffee spot differs from the Thursday
    lab, but each recurs week over week.  This gives users *many* distinct
    locations overall (diluting the marginal prior) while keeping each
    day's itinerary predictable (which the inversion attack exploits)."""
    routine_strength: float
    sociability: float

    def scheduled_buildings(self) -> List[int]:
        """All buildings appearing anywhere in the user's routine."""
        result = {self.home_dorm, *self.dining_halls, *self.hangouts}
        for slots in self.class_slots.values():
            result.update(building for _, _, building in slots)
        return sorted(result)


class RoutineMobilityModel:
    """Generates contiguous daily visit chains for a population of users."""

    def __init__(self, campus: CampusTopology, rng: np.random.Generator) -> None:
        self.campus = campus
        self.rng = rng

    # ------------------------------------------------------------------
    # Profile generation
    # ------------------------------------------------------------------
    def make_profile(
        self,
        user_id: int,
        routine_strength: Optional[float] = None,
        sociability: Optional[float] = None,
        explore_pool_size: Optional[int] = None,
    ) -> UserProfile:
        """Sample a user's weekly routine.

        Behavioural knobs default to wide uniform ranges so a population
        exhibits the diversity of predictability/mobility the paper's
        per-user analyses (Fig 3b/3c) require.  ``explore_pool_size``
        overrides how many buildings the personal excursion pool holds
        (capped by campus size) — mobility regimes use it to widen or
        narrow off-routine wandering.
        """
        rng = self.rng
        dorms = self.campus.buildings_of_kind(BuildingKind.DORM)
        academics = self.campus.buildings_of_kind(BuildingKind.ACADEMIC)
        dinings = self.campus.buildings_of_kind(BuildingKind.DINING)
        gyms = self.campus.buildings_of_kind(BuildingKind.GYM)
        libraries = self.campus.buildings_of_kind(BuildingKind.LIBRARY)

        home = int(rng.choice([b.building_id for b in dorms]))
        n_courses = int(rng.integers(3, 6))
        course_buildings = rng.choice(
            [b.building_id for b in academics], size=min(n_courses, len(academics)), replace=False
        )

        # Courses meet Mon/Wed/Fri or Tue/Thu in fixed slots, like a real
        # timetable; this is the source of weekly periodicity.
        class_slots: Dict[int, List[Tuple[int, int, int]]] = {d: [] for d in range(5)}
        slot_starts = [9 * 60, 10 * 60 + 30, 13 * 60, 14 * 60 + 30, 16 * 60]
        available = {d: list(slot_starts) for d in range(5)}
        for course_idx, building in enumerate(course_buildings):
            days = (0, 2, 4) if course_idx % 2 == 0 else (1, 3)
            usable = [s for s in slot_starts if all(s in available[d] for d in days)]
            if not usable:
                continue
            start = int(rng.choice(usable))
            duration = int(rng.choice([50, 75, 110]))
            for day in days:
                class_slots[day].append((start, duration, int(building)))
                available[day].remove(start)
        for day in class_slots:
            class_slots[day].sort()

        dining_ids = [b.building_id for b in dinings]
        n_dining = min(len(dining_ids), int(rng.integers(1, 3)))
        dining_halls = list(rng.choice(dining_ids, size=n_dining, replace=False).astype(int))

        hangout_pool = [b.building_id for b in gyms + libraries]
        n_hang = min(len(hangout_pool), int(rng.integers(1, 4)))
        hangouts = list(rng.choice(hangout_pool, size=n_hang, replace=False).astype(int))

        if explore_pool_size is None:
            explore_pool_size = int(rng.integers(8, 16))
        n_explore = max(1, min(self.campus.num_buildings, explore_pool_size))
        explore_pool = list(
            rng.choice(self.campus.num_buildings, size=n_explore, replace=False).astype(int)
        )
        weekday_haunts = {
            day: list(
                rng.choice(
                    explore_pool, size=min(len(explore_pool), 3), replace=False
                ).astype(int)
            )
            for day in range(7)
        }

        return UserProfile(
            user_id=user_id,
            home_dorm=home,
            class_slots=class_slots,
            dining_halls=dining_halls,
            hangouts=hangouts,
            explore_pool=explore_pool,
            weekday_haunts=weekday_haunts,
            routine_strength=(
                float(rng.uniform(0.60, 0.98)) if routine_strength is None else routine_strength
            ),
            sociability=float(rng.uniform(0.1, 0.9)) if sociability is None else sociability,
        )

    # ------------------------------------------------------------------
    # Trace generation
    # ------------------------------------------------------------------
    def simulate(self, profile: UserProfile, num_days: int, start_weekday: int = 0) -> List[Visit]:
        """Simulate ``num_days`` of contiguous visits for one user."""
        visits: List[Visit] = []
        for day in range(num_days):
            weekday = (start_weekday + day) % 7
            visits.extend(self._simulate_day(profile, day, weekday))
        return visits

    def _simulate_day(self, profile: UserProfile, day_index: int, weekday: int) -> List[Visit]:
        rng = self.rng
        is_weekend = weekday >= 5
        # The day is a chain of (building, planned duration) stops; entry
        # times fall out of the chain so consecutive visits are contiguous.
        stops: List[Tuple[int, int]] = []

        wake = int(rng.normal(8 * 60, 30)) if not is_weekend else int(rng.normal(10 * 60, 45))
        wake = int(np.clip(wake, 6 * 60, 12 * 60))
        stops.append((profile.home_dorm, wake))

        current = profile.home_dorm
        if not is_weekend:
            cursor = wake
            for start, duration, building in profile.class_slots.get(weekday, []):
                start_jitter = start + int(rng.normal(0, 6))
                if start_jitter > cursor:
                    filler = self._filler_building(profile, weekday, current)
                    stops.append((filler, start_jitter - cursor))
                    current = filler
                    cursor = start_jitter
                attend = rng.random() < profile.routine_strength
                building_actual = (
                    building if attend else self._deviation_building(profile, weekday, current)
                )
                stops.append((building_actual, duration))
                current = building_actual
                cursor += duration
            evening = self._evening_stops(profile, weekday, current)
            stops.extend(evening)
        else:
            cursor = wake
            n_outings = 1 + int(rng.binomial(3, profile.sociability))
            for _ in range(n_outings):
                building = self._filler_building(profile, weekday, current)
                duration = int(np.clip(rng.normal(90, 40), 20, 300))
                stops.append((building, duration))
                current = building
                cursor += duration

        # Materialize the chain into visits; the final dorm stay absorbs the
        # remainder of the day so each day spans exactly 24 hours.
        visits: List[Visit] = []
        cursor = 0
        for building, duration in stops:
            duration = max(10, int(duration))
            if cursor >= MINUTES_PER_DAY - 10:
                break
            duration = min(duration, MINUTES_PER_DAY - cursor)
            visits.append(
                Visit(
                    user_id=profile.user_id,
                    day_index=day_index,
                    day_of_week=weekday,
                    entry_minute=cursor,
                    duration_minute=duration,
                    building_id=building,
                )
            )
            cursor += duration
        if cursor < MINUTES_PER_DAY:
            visits.append(
                Visit(
                    user_id=profile.user_id,
                    day_index=day_index,
                    day_of_week=weekday,
                    entry_minute=cursor,
                    duration_minute=MINUTES_PER_DAY - cursor,
                    building_id=profile.home_dorm,
                )
            )
        return _merge_consecutive(visits)

    def _evening_stops(
        self, profile: UserProfile, weekday: int, current: int
    ) -> List[Tuple[int, int]]:
        """Dinner / hangout / library stops after the last class.

        Choices are proximity weighted from ``current``: the dining hall
        near the last class wins, the gym near the dining hall follows.
        This spatial Markov structure is what makes the *previous* location
        informative about the next one — the signal model-inversion
        attacks recover.
        """
        rng = self.rng
        stops: List[Tuple[int, int]] = []
        if profile.dining_halls and rng.random() < profile.routine_strength:
            dining = self._near_choice(profile.dining_halls, current)
            stops.append((dining, int(np.clip(rng.normal(45, 15), 15, 90))))
            current = dining
        if profile.hangouts and rng.random() < profile.sociability:
            hangout = self._near_choice(profile.hangouts, current)
            stops.append((hangout, int(np.clip(rng.normal(80, 30), 20, 180))))
            current = hangout
        if rng.random() < profile.sociability * 0.5:
            stops.append(
                (
                    self._deviation_building(profile, weekday, current),
                    int(np.clip(rng.normal(60, 25), 15, 150)),
                )
            )
        return stops

    def _near_choice(self, pool: Sequence[int], current: int, tau: float = 4.0) -> int:
        """Pick from ``pool`` with probability decaying in walking time.

        ``tau`` is the decay scale in minutes; a building 4 minutes closer
        is ~e times likelier.  Deterministic-ish for well-separated pools,
        which keeps per-user transitions learnable.
        """
        pool = list(pool)
        if len(pool) == 1:
            return int(pool[0])
        distances = np.array(
            [self.campus.walking_minutes(current, b) for b in pool]
        )
        weights = np.exp(-distances / tau)
        weights = weights / weights.sum()
        return int(self.rng.choice(pool, p=weights))

    def _filler_building(self, profile: UserProfile, weekday: int, current: int) -> int:
        """A building for unscheduled daytime time.

        With probability ``routine_strength`` the user goes to one of the
        day's haunts, proximity weighted from the current building;
        otherwise to an excursion.
        """
        rng = self.rng
        if rng.random() < profile.routine_strength:
            return self._near_choice(profile.weekday_haunts[weekday], current)
        return self._deviation_building(profile, weekday, current)

    def _deviation_building(self, profile: UserProfile, weekday: int, current: int) -> int:
        """An off-routine excursion.

        Mostly the current weekday's haunts (weekly periodicity, proximity
        weighted), sometimes the wider personal explore pool, rarely
        anywhere on campus.  This reproduces the heavy-but-wide visit
        distribution of real traces: "users tend to spend a majority of
        their time at a single location" (paper §IV-B5) while still
        touching many distinct buildings.
        """
        rng = self.rng
        roll = rng.random()
        if roll < 0.10:
            return int(rng.integers(0, self.campus.num_buildings))
        if roll < 0.35:
            pool = profile.explore_pool
            weights = 1.0 / np.arange(1, len(pool) + 1)
            return int(rng.choice(pool, p=weights / weights.sum()))
        return self._near_choice(profile.weekday_haunts[weekday], current)


def _merge_consecutive(visits: List[Visit]) -> List[Visit]:
    """Merge back-to-back visits to the same building into one."""
    merged: List[Visit] = []
    for visit in visits:
        if merged and merged[-1].building_id == visit.building_id:
            prev = merged[-1]
            merged[-1] = Visit(
                user_id=prev.user_id,
                day_index=prev.day_index,
                day_of_week=prev.day_of_week,
                entry_minute=prev.entry_minute,
                duration_minute=prev.duration_minute + visit.duration_minute,
                building_id=prev.building_id,
            )
        else:
            merged.append(visit)
    return merged


def simulate_population(
    campus: CampusTopology,
    rng: np.random.Generator,
    num_users: int,
    num_days: int,
    start_weekday: int = 0,
) -> Tuple[List[UserProfile], Dict[int, List[Visit]]]:
    """Generate profiles and traces for ``num_users`` users.

    Returns (profiles, traces) where ``traces[user_id]`` is the user's
    chronologically ordered visit list.
    """
    model = RoutineMobilityModel(campus, rng)
    profiles = [model.make_profile(uid) for uid in range(num_users)]
    traces = {p.user_id: model.simulate(p, num_days, start_weekday) for p in profiles}
    return profiles, traces
