"""End-to-end corpus generation: campus -> traces -> trajectories -> datasets.

:class:`MobilityCorpus` is the reproduction's stand-in for the paper's
processed campus dataset: it holds contributor users (who train the general
model ``M_G``) and personal users (disjoint set ``P`` who build personalized
models), with trajectories available at both spatial levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.data.campus import CampusTopology
from repro.data.dataset import SequenceDataset
from repro.data.features import FeatureSpec, SpatialLevel
from repro.data.mobility import RoutineMobilityModel, UserProfile, Visit
from repro.data.sessions import APSession, extract_trajectory, visits_to_ap_sessions


@dataclass
class CorpusConfig:
    """Scale knobs for corpus generation (paper values in parentheses)."""

    num_buildings: int = 40  # (156)
    num_contributors: int = 24  # (200)
    num_personal_users: int = 10  # (100)
    num_days: int = 8 * 7  # 8 weeks; paper trains on Sept-Nov (~9 weeks)
    seed: int = 7
    mean_ap_dwell: float = 70.0

    def scaled(self, **overrides) -> "CorpusConfig":
        """Return a copy with some fields overridden."""
        params = {**self.__dict__, **overrides}
        return CorpusConfig(**params)


@dataclass
class MobilityCorpus:
    """Generated campus data, split into contributors and personal users."""

    config: CorpusConfig
    campus: CampusTopology
    profiles: Dict[int, UserProfile]
    contributor_ids: List[int]
    personal_ids: List[int]
    ap_sessions: Dict[int, List[APSession]]

    _trajectory_cache: Dict[Tuple[int, str], List] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def spec(self, level: SpatialLevel) -> FeatureSpec:
        """Feature spec for the requested spatial level.

        The location domain is the *whole campus* (all buildings or all
        APs), implementing the paper's domain equalization: every personal
        model shares the general model's location domain.
        """
        num = (
            self.campus.num_buildings
            if level == SpatialLevel.BUILDING
            else self.campus.num_aps
        )
        return FeatureSpec(num_locations=num)

    def trajectory(self, user_id: int, level: SpatialLevel):
        """The user's trajectory at the requested level (cached)."""
        key = (user_id, level.value)
        if key not in self._trajectory_cache:
            self._trajectory_cache[key] = extract_trajectory(
                self.ap_sessions[user_id], level.value
            )
        return self._trajectory_cache[key]

    def user_dataset(self, user_id: int, level: SpatialLevel) -> SequenceDataset:
        """Windowed dataset for one user."""
        return SequenceDataset.from_trajectory(self.trajectory(user_id, level), self.spec(level))

    def contributor_dataset(self, level: SpatialLevel) -> SequenceDataset:
        """Pooled dataset over all contributors (trains the general model)."""
        return SequenceDataset.concatenate(
            [self.user_dataset(uid, level) for uid in self.contributor_ids]
        )

    def personal_datasets(self, level: SpatialLevel) -> Dict[int, SequenceDataset]:
        """Per-user datasets for the personal (attack-target) population."""
        return {uid: self.user_dataset(uid, level) for uid in self.personal_ids}


def generate_corpus(
    config: CorpusConfig | None = None,
    personal_profile_fn: Optional[
        Callable[[RoutineMobilityModel, int], UserProfile]
    ] = None,
) -> MobilityCorpus:
    """Generate a full synthetic corpus from a config (deterministic).

    ``personal_profile_fn`` optionally replaces profile sampling for the
    *personal* users only (contributors always follow the campus default,
    so the general model is trained on a typical population).  This is the
    hook :func:`repro.data.regimes.generate_regime_corpus` uses to sweep
    mobility regimes.
    """
    config = config or CorpusConfig()
    rng = np.random.default_rng(config.seed)
    campus = CampusTopology.generate(rng, num_buildings=config.num_buildings)
    model = RoutineMobilityModel(campus, rng)

    total_users = config.num_contributors + config.num_personal_users
    profiles: Dict[int, UserProfile] = {}
    ap_sessions: Dict[int, List[APSession]] = {}
    for user_id in range(total_users):
        is_personal = user_id >= config.num_contributors
        if is_personal and personal_profile_fn is not None:
            profile = personal_profile_fn(model, user_id)
        else:
            profile = model.make_profile(user_id)
        profiles[user_id] = profile
        visits = model.simulate(profile, config.num_days)
        ap_sessions[user_id] = visits_to_ap_sessions(
            visits, campus, rng, mean_ap_dwell=config.mean_ap_dwell
        )

    contributor_ids = list(range(config.num_contributors))
    personal_ids = list(range(config.num_contributors, total_users))
    return MobilityCorpus(
        config=config,
        campus=campus,
        profiles=profiles,
        contributor_ids=contributor_ids,
        personal_ids=personal_ids,
        ap_sessions=ap_sessions,
    )
