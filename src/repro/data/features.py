"""Feature discretization and one-hot encoding (paper §IV-A).

The processed dataset consists of sequences of four features per session:

* **session-entry** ``e`` — discretized into 30-minute bins (48 bins/day);
* **session-duration** ``d`` — discretized into 10-minute bins, capped at
  4 hours (24 bins), because "less than 10% of users spend more time in a
  single building";
* **location** ``l`` — building id or AP id depending on spatial level;
* **day-of-week** ``w`` — 7 values.

:class:`FeatureSpec` fixes the one-hot layout ``[entry | duration |
location | day]`` and exposes the block offsets, which the gradient-descent
inversion attack needs in order to softmax-soften each block independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.sessions import LocationSession

ENTRY_BIN_MINUTES = 30
DURATION_BIN_MINUTES = 10
DURATION_CAP_MINUTES = 240


class SpatialLevel(str, Enum):
    """Spatial resolution of the location variable (paper Fig 3a)."""

    BUILDING = "building"
    AP = "ap"


@dataclass(frozen=True)
class SessionFeatures:
    """Discretized features of one session: the tuple x_t of the paper."""

    entry_bin: int
    duration_bin: int
    location: int
    day_of_week: int

    def as_tuple(self) -> Tuple[int, int, int, int]:
        return (self.entry_bin, self.duration_bin, self.location, self.day_of_week)


def discretize_entry(entry_minute: int) -> int:
    """Map minutes-from-midnight to a 30-minute bin in [0, 48)."""
    if not 0 <= entry_minute < 24 * 60:
        raise ValueError(f"entry minute out of range: {entry_minute}")
    return entry_minute // ENTRY_BIN_MINUTES


def discretize_duration(duration_minute: int) -> int:
    """Map a duration to a 10-minute bin, capping at 4 hours."""
    if duration_minute < 0:
        raise ValueError(f"negative duration: {duration_minute}")
    capped = min(duration_minute, DURATION_CAP_MINUTES - 1)
    return capped // DURATION_BIN_MINUTES


def entry_bin_to_minute(entry_bin: int) -> int:
    """Representative minute (bin start) of an entry bin."""
    return entry_bin * ENTRY_BIN_MINUTES


def duration_bin_to_minute(duration_bin: int) -> int:
    """Representative minute (bin midpoint) of a duration bin."""
    return duration_bin * DURATION_BIN_MINUTES + DURATION_BIN_MINUTES // 2


@dataclass(frozen=True)
class FeatureSpec:
    """One-hot layout for a session feature tuple.

    The encoded vector is the concatenation
    ``[entry(48) | duration(24) | location(L) | day(7)]`` and has dimension
    :attr:`width`.
    """

    num_locations: int
    entry_bins: int = (24 * 60) // ENTRY_BIN_MINUTES
    duration_bins: int = DURATION_CAP_MINUTES // DURATION_BIN_MINUTES
    days: int = 7

    @property
    def entry_offset(self) -> int:
        return 0

    @property
    def duration_offset(self) -> int:
        return self.entry_bins

    @property
    def location_offset(self) -> int:
        return self.entry_bins + self.duration_bins

    @property
    def day_offset(self) -> int:
        return self.entry_bins + self.duration_bins + self.num_locations

    @property
    def width(self) -> int:
        return self.entry_bins + self.duration_bins + self.num_locations + self.days

    def blocks(self) -> Dict[str, Tuple[int, int]]:
        """Return {feature: (offset, size)} for every block."""
        return {
            "entry": (self.entry_offset, self.entry_bins),
            "duration": (self.duration_offset, self.duration_bins),
            "location": (self.location_offset, self.num_locations),
            "day": (self.day_offset, self.days),
        }

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def featurize(self, session: LocationSession) -> SessionFeatures:
        """Discretize one session into its feature tuple."""
        if not 0 <= session.location_id < self.num_locations:
            raise ValueError(
                f"location {session.location_id} outside domain [0, {self.num_locations})"
            )
        return SessionFeatures(
            entry_bin=discretize_entry(session.entry_minute),
            duration_bin=discretize_duration(session.duration_minute),
            location=session.location_id,
            day_of_week=session.day_of_week,
        )

    def encode(self, features: SessionFeatures) -> np.ndarray:
        """One-hot encode a feature tuple into a vector of :attr:`width`."""
        vec = np.zeros(self.width)
        vec[self.entry_offset + features.entry_bin] = 1.0
        vec[self.duration_offset + features.duration_bin] = 1.0
        vec[self.location_offset + features.location] = 1.0
        vec[self.day_offset + features.day_of_week] = 1.0
        return vec

    def decode(self, vector: np.ndarray) -> SessionFeatures:
        """Invert :meth:`encode` (argmax per block, tolerating soft inputs)."""
        vector = np.asarray(vector)
        if vector.shape != (self.width,):
            raise ValueError(f"expected vector of width {self.width}, got {vector.shape}")
        return SessionFeatures(
            entry_bin=int(np.argmax(vector[self.entry_offset : self.entry_offset + self.entry_bins])),
            duration_bin=int(
                np.argmax(vector[self.duration_offset : self.duration_offset + self.duration_bins])
            ),
            location=int(
                np.argmax(
                    vector[self.location_offset : self.location_offset + self.num_locations]
                )
            ),
            day_of_week=int(np.argmax(vector[self.day_offset : self.day_offset + self.days])),
        )

    def encode_sequence(self, sessions: Sequence[SessionFeatures]) -> np.ndarray:
        """Encode an ordered window of sessions into ``(len, width)``."""
        return np.stack([self.encode(s) for s in sessions])

    def encode_windows(
        self, windows: Sequence[Sequence[SessionFeatures]]
    ) -> np.ndarray:
        """Encode many same-length windows into ``(n, len, width)`` at once.

        Vectorized equivalent of stacking :meth:`encode_sequence` per
        window: the one-hot scatter runs as four fancy-indexed writes
        over all sessions instead of one numpy allocation per session.
        The values are bit-identical (0.0/1.0 one-hots either way) — this
        is the encoding stage of the stacked serving path (DESIGN.md
        §12), where per-session Python would otherwise dominate the tick.
        """
        n = len(windows)
        if n == 0:
            return np.zeros((0, 0, self.width))
        steps = len(windows[0])
        if any(len(w) != steps for w in windows):
            raise ValueError("windows must share one length to batch-encode")
        flat = np.zeros((n * steps, self.width))
        rows = np.arange(n * steps)
        sessions = [s for window in windows for s in window]
        entry = np.fromiter((s.entry_bin for s in sessions), dtype=np.intp, count=n * steps)
        duration = np.fromiter((s.duration_bin for s in sessions), dtype=np.intp, count=n * steps)
        location = np.fromiter((s.location for s in sessions), dtype=np.intp, count=n * steps)
        day = np.fromiter((s.day_of_week for s in sessions), dtype=np.intp, count=n * steps)
        flat[rows, self.entry_offset + entry] = 1.0
        flat[rows, self.duration_offset + duration] = 1.0
        flat[rows, self.location_offset + location] = 1.0
        flat[rows, self.day_offset + day] = 1.0
        return flat.reshape(n, steps, self.width)


def location_marginals(
    featurized: Sequence[SessionFeatures], num_locations: int, smoothing: float = 0.0
) -> np.ndarray:
    """Empirical marginal distribution of the location variable.

    This is the prior ``p`` of the inversion attack (paper §III-B2):
    ``p_i`` reflects how often location ``i`` is visited.  ``smoothing`` adds
    Laplace mass so unseen locations keep non-zero probability.
    """
    counts = np.full(num_locations, smoothing, dtype=np.float64)
    for features in featurized:
        counts[features.location] += 1.0
    total = counts.sum()
    if total == 0:
        return np.full(num_locations, 1.0 / num_locations)
    return counts / total
