"""Synthetic campus topology: buildings, access points, walking graph.

The paper's evaluation uses a campus WiFi dataset with 156 buildings and
5104 APs.  That dataset is proprietary, so this module generates a synthetic
campus with the same structure (DESIGN.md §2): typed buildings (dorms,
academic, dining, gym, library), a set of APs per building, and a walking
graph (networkx) whose geometry drives transition plausibility in the
mobility simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Tuple

import networkx as nx
import numpy as np


class BuildingKind(str, Enum):
    """Functional category of a campus building."""

    DORM = "dorm"
    ACADEMIC = "academic"
    DINING = "dining"
    GYM = "gym"
    LIBRARY = "library"


# Fraction of campus buildings in each category; loosely follows a typical
# residential campus (plenty of academic space, a handful of dining halls).
_KIND_MIX: List[Tuple[BuildingKind, float]] = [
    (BuildingKind.DORM, 0.30),
    (BuildingKind.ACADEMIC, 0.45),
    (BuildingKind.DINING, 0.10),
    (BuildingKind.GYM, 0.05),
    (BuildingKind.LIBRARY, 0.10),
]

# APs per building by kind: large academic buildings and libraries carry the
# densest deployments, matching the heavy-tailed AP counts of real campuses.
_APS_PER_BUILDING: Dict[BuildingKind, Tuple[int, int]] = {
    BuildingKind.DORM: (4, 10),
    BuildingKind.ACADEMIC: (4, 12),
    BuildingKind.DINING: (2, 6),
    BuildingKind.GYM: (2, 5),
    BuildingKind.LIBRARY: (6, 14),
}


@dataclass(frozen=True)
class Building:
    """A campus building with its AP deployment."""

    building_id: int
    kind: BuildingKind
    position: Tuple[float, float]
    ap_ids: Tuple[int, ...]

    @property
    def num_aps(self) -> int:
        return len(self.ap_ids)


@dataclass
class CampusTopology:
    """The full campus: buildings, APs, and a walking graph.

    Attributes
    ----------
    buildings:
        All buildings, indexed by ``building_id`` (list position == id).
    ap_to_building:
        Maps each global AP id to its building id.
    graph:
        networkx graph over building ids; edge weights are walking minutes.
    """

    buildings: List[Building]
    ap_to_building: Dict[int, int]
    graph: nx.Graph
    _distance_cache: Dict[int, Dict[int, float]] = field(default_factory=dict, repr=False)

    @property
    def num_buildings(self) -> int:
        return len(self.buildings)

    @property
    def num_aps(self) -> int:
        return len(self.ap_to_building)

    def buildings_of_kind(self, kind: BuildingKind) -> List[Building]:
        return [b for b in self.buildings if b.kind == kind]

    def walking_minutes(self, src: int, dst: int) -> float:
        """Shortest-path walking time between two buildings (cached)."""
        if src == dst:
            return 0.0
        if src not in self._distance_cache:
            self._distance_cache[src] = nx.single_source_dijkstra_path_length(
                self.graph, src, weight="weight"
            )
        return self._distance_cache[src][dst]

    @classmethod
    def generate(
        cls,
        rng: np.random.Generator,
        num_buildings: int = 40,
        campus_extent_minutes: float = 20.0,
    ) -> "CampusTopology":
        """Generate a random campus.

        Buildings are placed uniformly in a square whose diagonal takes
        ``campus_extent_minutes`` to walk; the graph connects each building
        to its nearest neighbours so walking times are realistic.
        """
        if num_buildings < len(_KIND_MIX):
            raise ValueError(
                f"need at least {len(_KIND_MIX)} buildings to cover every kind; "
                f"got {num_buildings}"
            )
        kinds = _assign_kinds(rng, num_buildings)
        side = campus_extent_minutes / np.sqrt(2.0)
        positions = rng.uniform(0.0, side, size=(num_buildings, 2))

        buildings: List[Building] = []
        ap_to_building: Dict[int, int] = {}
        next_ap = 0
        for bid in range(num_buildings):
            lo, hi = _APS_PER_BUILDING[kinds[bid]]
            count = int(rng.integers(lo, hi + 1))
            ap_ids = tuple(range(next_ap, next_ap + count))
            for ap in ap_ids:
                ap_to_building[ap] = bid
            next_ap += count
            buildings.append(
                Building(
                    building_id=bid,
                    kind=kinds[bid],
                    position=(float(positions[bid, 0]), float(positions[bid, 1])),
                    ap_ids=ap_ids,
                )
            )

        graph = _nearest_neighbour_graph(positions)
        return cls(buildings=buildings, ap_to_building=ap_to_building, graph=graph)


def _assign_kinds(rng: np.random.Generator, num_buildings: int) -> List[BuildingKind]:
    """Assign kinds following ``_KIND_MIX``, guaranteeing one of each."""
    kinds = [kind for kind, _ in _KIND_MIX]
    remaining = num_buildings - len(kinds)
    weights = np.array([w for _, w in _KIND_MIX])
    weights = weights / weights.sum()
    extra = rng.choice(len(_KIND_MIX), size=remaining, p=weights)
    kinds.extend(_KIND_MIX[i][0] for i in extra)
    rng.shuffle(kinds)
    return kinds


def _nearest_neighbour_graph(positions: np.ndarray, k: int = 4) -> nx.Graph:
    """Connect each building to its ``k`` nearest neighbours.

    Adds a spanning tree over the same distances first so the graph is
    always connected.
    """
    n = len(positions)
    deltas = positions[:, None, :] - positions[None, :, :]
    dist = np.sqrt((deltas**2).sum(axis=-1))

    complete = nx.Graph()
    for i in range(n):
        for j in range(i + 1, n):
            complete.add_edge(i, j, weight=float(dist[i, j]))
    graph = nx.minimum_spanning_tree(complete)
    for i in range(n):
        for j in np.argsort(dist[i])[1 : k + 1]:
            graph.add_edge(i, int(j), weight=float(dist[i, j]))
    return graph
