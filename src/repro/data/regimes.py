"""Parameterized mobility regimes beyond the campus default (DESIGN.md §8).

The paper evaluates on one well-behaved campus population.  A production
fleet serves populations that differ wildly along the two axes the paper's
per-user analyses identify — *predictability* (Fig 3c: routine strength)
and *degree of mobility* (Fig 3b: how many places, how often).  A
:class:`MobilityRegime` is a named point on those axes: a distribution
over the existing :class:`~repro.data.mobility.UserProfile` knobs plus two
structural transforms (time-shifted schedules, resized excursion pools),
so regime corpora come out of the *same* simulator with the same
determinism guarantees.

Regimes apply to the **personal** (served/attacked) users only; the
contributor population that trains the general model always follows the
campus default.  That mirrors production: the cloud model is trained on a
typical population, then personalized for whoever shows up.

Presets (:data:`REGIMES`):

* ``campus``       — the paper's default distribution (baseline).
* ``commuter``     — rigid timetable, few discretionary stops: the most
  predictable population a fleet will see.
* ``shift_worker`` — campus-like routine strength, but the schedule is
  shifted toward evening/night; tests that predictors track *when*
  structure occurs, not just that it exists.
* ``tourist``      — weak routine, high sociability, wide excursion pool:
  low-predictability visitors.
* ``nomad``        — almost no routine, excursions over the whole campus:
  the adversarial floor for personalization.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.data.corpus import CorpusConfig, MobilityCorpus, generate_corpus
from repro.data.mobility import MINUTES_PER_DAY, RoutineMobilityModel, UserProfile


@dataclass(frozen=True)
class MobilityRegime:
    """A named distribution over user-profile knobs.

    ``routine_strength`` / ``sociability`` are uniform sampling ranges for
    the corresponding :class:`UserProfile` fields.  ``explore_pool_size``
    bounds the personal off-routine excursion pool (capped by campus
    size).  ``slot_shift_minutes`` moves every scheduled class/work slot
    later in the day (clamped so slots stay inside one day), which is how
    shift-worker populations are modeled without touching the simulator.
    """

    name: str
    routine_strength: Tuple[float, float]
    sociability: Tuple[float, float]
    explore_pool_size: Tuple[int, int]
    slot_shift_minutes: int = 0
    description: str = ""


REGIMES: Dict[str, MobilityRegime] = {
    regime.name: regime
    for regime in (
        MobilityRegime(
            name="campus",
            routine_strength=(0.60, 0.98),
            sociability=(0.10, 0.90),
            explore_pool_size=(8, 15),
            description="the paper's default population (baseline)",
        ),
        MobilityRegime(
            name="commuter",
            routine_strength=(0.88, 0.985),
            sociability=(0.05, 0.30),
            explore_pool_size=(4, 7),
            description="rigid timetable, few discretionary stops",
        ),
        MobilityRegime(
            name="shift_worker",
            routine_strength=(0.80, 0.95),
            sociability=(0.10, 0.50),
            explore_pool_size=(6, 10),
            slot_shift_minutes=8 * 60,
            description="strong routine shifted toward evening/night",
        ),
        MobilityRegime(
            name="tourist",
            routine_strength=(0.15, 0.40),
            sociability=(0.60, 0.95),
            explore_pool_size=(14, 26),
            description="weak routine, wide excursion pool",
        ),
        MobilityRegime(
            name="nomad",
            routine_strength=(0.02, 0.15),
            sociability=(0.30, 0.70),
            explore_pool_size=(24, 48),
            description="near-random movement over the whole campus",
        ),
    )
}


def sample_regime_profile(
    model: RoutineMobilityModel, regime: MobilityRegime, user_id: int
) -> UserProfile:
    """Sample one user profile from a regime's knob distribution.

    Draws from the simulator's own generator, so a regime corpus is as
    deterministic as the default one: same config + same regime ⇒ the
    same profiles and traces.
    """
    rng = model.rng
    lo, hi = regime.explore_pool_size
    profile = model.make_profile(
        user_id,
        routine_strength=float(rng.uniform(*regime.routine_strength)),
        sociability=float(rng.uniform(*regime.sociability)),
        explore_pool_size=int(rng.integers(lo, hi + 1)),
    )
    if not regime.slot_shift_minutes:
        return profile
    class_slots = {
        day: sorted(
            (
                # Clamp so a shifted slot still ends before midnight;
                # late slots stack into a contiguous evening shift.
                min(
                    start + regime.slot_shift_minutes,
                    MINUTES_PER_DAY - duration - 10,
                ),
                duration,
                building,
            )
            for start, duration, building in slots
        )
        for day, slots in profile.class_slots.items()
    }
    return replace(profile, class_slots=class_slots)


def resolve_regime(regime: Union[str, MobilityRegime, None]) -> MobilityRegime:
    """Accept a regime, a preset name, or None (→ campus baseline)."""
    if regime is None:
        return REGIMES["campus"]
    if isinstance(regime, MobilityRegime):
        return regime
    try:
        return REGIMES[regime]
    except KeyError:
        raise KeyError(
            f"unknown regime {regime!r}; presets: {sorted(REGIMES)}"
        ) from None


def generate_regime_corpus(
    config: Optional[CorpusConfig] = None,
    regime: Union[str, MobilityRegime, None] = None,
) -> MobilityCorpus:
    """Generate a corpus whose personal users follow ``regime``.

    Contributors (the general-model training population) keep the campus
    default, so every regime corpus shares one realistic cloud model and
    only the *served* population changes — the axis the scenario matrix
    (:func:`repro.eval.scenarios.run_scenario_suite`) sweeps.
    """
    resolved = resolve_regime(regime)
    return generate_corpus(
        config,
        personal_profile_fn=lambda model, user_id: sample_regime_profile(
            model, resolved, user_id
        ),
    )
