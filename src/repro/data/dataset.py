"""Sequence datasets for next-location prediction.

The paper's task (§IV-A): given two consecutive sessions
``x_{t-2}, x_{t-1}``, predict the next location ``l_t``.  This module turns
a user's trajectory into sliding windows of that shape, encodes them with a
:class:`~repro.data.features.FeatureSpec`, and provides the chronological
80/20 split and the training-data-size subsets used in Tables III/IV.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.features import FeatureSpec, SessionFeatures
from repro.data.sessions import LocationSession

HISTORY_LENGTH = 2


@dataclass(frozen=True)
class Window:
    """One supervised sample: two history sessions and the next location.

    ``contiguous`` records whether the raw sessions satisfy the continuity
    assumption ``e_{t-1} = e_{t-2} + d_{t-2}`` the time-based attack
    exploits (true for within-day chains, false across midnight).
    """

    user_id: int
    history: Tuple[SessionFeatures, SessionFeatures]
    target: int
    day_index: int
    contiguous: bool


@dataclass
class SequenceDataset:
    """An ordered collection of windows plus its encoding spec."""

    spec: FeatureSpec
    windows: List[Window] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.windows)

    def __iter__(self):
        return iter(self.windows)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_trajectory(
        cls, sessions: Sequence[LocationSession], spec: FeatureSpec
    ) -> "SequenceDataset":
        """Build windows from one user's chronologically ordered trajectory."""
        ordered = sorted(sessions, key=lambda s: (s.day_index, s.entry_minute))
        windows: List[Window] = []
        for i in range(len(ordered) - HISTORY_LENGTH):
            first, second, nxt = ordered[i], ordered[i + 1], ordered[i + 2]
            contiguous = (
                first.day_index == second.day_index
                and first.exit_minute == second.entry_minute
            )
            windows.append(
                Window(
                    user_id=first.user_id,
                    history=(spec.featurize(first), spec.featurize(second)),
                    target=nxt.location_id,
                    day_index=nxt.day_index,
                    contiguous=contiguous,
                )
            )
        return cls(spec=spec, windows=windows)

    @classmethod
    def concatenate(cls, datasets: Sequence["SequenceDataset"]) -> "SequenceDataset":
        """Pool several users' datasets (for general-model training)."""
        if not datasets:
            raise ValueError("cannot concatenate zero datasets")
        spec = datasets[0].spec
        for ds in datasets[1:]:
            if ds.spec != spec:
                raise ValueError("all datasets must share one FeatureSpec")
        windows = [w for ds in datasets for w in ds.windows]
        return cls(spec=spec, windows=windows)

    # ------------------------------------------------------------------
    # Encoding / views
    # ------------------------------------------------------------------
    def encode(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(X, y)``: X is (n, 2, width), y is (n,) int targets."""
        if not self.windows:
            width = self.spec.width
            return np.zeros((0, HISTORY_LENGTH, width)), np.zeros((0,), dtype=np.int64)
        X = np.stack([self.spec.encode_sequence(w.history) for w in self.windows])
        y = np.array([w.target for w in self.windows], dtype=np.int64)
        return X, y

    def split(self, train_fraction: float = 0.8) -> Tuple["SequenceDataset", "SequenceDataset"]:
        """Chronological split: the first fraction trains, the rest tests."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        cut = int(len(self.windows) * train_fraction)
        return (
            SequenceDataset(spec=self.spec, windows=self.windows[:cut]),
            SequenceDataset(spec=self.spec, windows=self.windows[cut:]),
        )

    def limit_days(self, num_days: int) -> "SequenceDataset":
        """Keep only windows whose target day index is below ``num_days``.

        Used for the Table IV training-data-size sweep (2/4/6/8 weeks).
        """
        kept = [w for w in self.windows if w.day_index < num_days]
        return SequenceDataset(spec=self.spec, windows=kept)

    def limit_weeks(self, num_weeks: int) -> "SequenceDataset":
        return self.limit_days(num_weeks * 7)

    def split_by_user(
        self, train_fraction: float = 0.8
    ) -> Tuple["SequenceDataset", "SequenceDataset"]:
        """Chronological split *within each user*, then pooled.

        A plain :meth:`split` of a pooled multi-user dataset would place
        whole users in the test set; this variant keeps every user's early
        windows in train and late windows in test, matching the paper's
        80/20 protocol for the general model.
        """
        train_parts: List[Window] = []
        test_parts: List[Window] = []
        for user_ds in self.per_user().values():
            train_ds, test_ds = user_ds.split(train_fraction)
            train_parts.extend(train_ds.windows)
            test_parts.extend(test_ds.windows)
        return (
            SequenceDataset(spec=self.spec, windows=train_parts),
            SequenceDataset(spec=self.spec, windows=test_parts),
        )

    def per_user(self) -> Dict[int, "SequenceDataset"]:
        """Split a pooled dataset back into per-user datasets."""
        by_user: Dict[int, List[Window]] = {}
        for window in self.windows:
            by_user.setdefault(window.user_id, []).append(window)
        return {
            uid: SequenceDataset(spec=self.spec, windows=windows)
            for uid, windows in by_user.items()
        }

    # ------------------------------------------------------------------
    # Statistics used by the per-user analyses (Fig 3b)
    # ------------------------------------------------------------------
    def location_visit_count(self) -> int:
        """Number of location visits covered by this dataset's windows."""
        return len(self.windows) + HISTORY_LENGTH if self.windows else 0

    def distinct_locations(self) -> int:
        """Number of distinct locations appearing as targets or history."""
        locations = {w.target for w in self.windows}
        for window in self.windows:
            locations.update(f.location for f in window.history)
        return len(locations)
