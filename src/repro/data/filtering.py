"""Trace filtering utilities (paper §IV-A).

The paper filters its WiFi dataset "to consist of only on-campus students
by assessing whether users stay in a dorm on a typical weekday night."
This module reproduces that preprocessing step for synthetic (or any)
trajectories, plus basic quality filters real pipelines need.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.data.campus import BuildingKind, CampusTopology
from repro.data.mobility import Visit

NIGHT_START_MINUTE = 2 * 60  # 02:00: everyone who sleeps on campus is home
DEFAULT_MIN_NIGHT_FRACTION = 0.5


def stays_in_dorm_at_night(
    visits: Sequence[Visit],
    campus: CampusTopology,
    min_night_fraction: float = DEFAULT_MIN_NIGHT_FRACTION,
) -> bool:
    """Whether the user spends typical weekday nights in a dorm.

    A weekday "counts" if the visit covering 02:00 is in a dorm building;
    the user passes if at least ``min_night_fraction`` of observed weekday
    nights count.
    """
    weekday_nights = 0
    dorm_nights = 0
    by_day: Dict[int, List[Visit]] = {}
    for visit in visits:
        by_day.setdefault(visit.day_index, []).append(visit)
    for day_visits in by_day.values():
        if day_visits[0].day_of_week >= 5:
            continue
        weekday_nights += 1
        covering = next(
            (
                v
                for v in day_visits
                if v.entry_minute <= NIGHT_START_MINUTE < v.exit_minute
            ),
            None,
        )
        if covering is None:
            continue
        if campus.buildings[covering.building_id].kind == BuildingKind.DORM:
            dorm_nights += 1
    if weekday_nights == 0:
        return False
    return dorm_nights / weekday_nights >= min_night_fraction


def filter_on_campus_students(
    traces: Dict[int, List[Visit]],
    campus: CampusTopology,
    min_night_fraction: float = DEFAULT_MIN_NIGHT_FRACTION,
) -> Dict[int, List[Visit]]:
    """Keep only users who sleep on campus (the paper's student filter)."""
    return {
        user_id: visits
        for user_id, visits in traces.items()
        if stays_in_dorm_at_night(visits, campus, min_night_fraction)
    }


def filter_sparse_users(
    traces: Dict[int, List[Visit]], min_visits: int
) -> Dict[int, List[Visit]]:
    """Drop users with fewer than ``min_visits`` total visits.

    Sparse devices (visitors, forgotten IoT gear) produce unusable
    trajectories; real pipelines drop them before model training.
    """
    return {uid: visits for uid, visits in traces.items() if len(visits) >= min_visits}


def observed_days(visits: Sequence[Visit]) -> int:
    """Number of distinct days with at least one visit."""
    return len({v.day_index for v in visits})
