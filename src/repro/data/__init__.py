"""``repro.data`` — synthetic campus-WiFi mobility substrate.

Replaces the paper's proprietary campus dataset (DESIGN.md §2): campus
topology, routine-driven mobility simulation, AP session generation,
trajectory extraction, feature discretization, and windowed datasets.
"""

from repro.data.campus import Building, BuildingKind, CampusTopology
from repro.data.corpus import CorpusConfig, MobilityCorpus, generate_corpus
from repro.data.filtering import (
    filter_on_campus_students,
    filter_sparse_users,
    observed_days,
    stays_in_dorm_at_night,
)
from repro.data.io import export_trajectory_csv, load_ap_sessions, save_ap_sessions
from repro.data.dataset import HISTORY_LENGTH, SequenceDataset, Window
from repro.data.features import (
    DURATION_BIN_MINUTES,
    DURATION_CAP_MINUTES,
    ENTRY_BIN_MINUTES,
    FeatureSpec,
    SessionFeatures,
    SpatialLevel,
    discretize_duration,
    discretize_entry,
    duration_bin_to_minute,
    entry_bin_to_minute,
    location_marginals,
)
from repro.data.mobility import (
    MINUTES_PER_DAY,
    RoutineMobilityModel,
    UserProfile,
    Visit,
    simulate_population,
)
from repro.data.regimes import (
    REGIMES,
    MobilityRegime,
    generate_regime_corpus,
    resolve_regime,
    sample_regime_profile,
)
from repro.data.sessions import (
    APSession,
    LocationSession,
    extract_trajectory,
    visits_to_ap_sessions,
)

__all__ = [
    "APSession",
    "Building",
    "BuildingKind",
    "CampusTopology",
    "CorpusConfig",
    "DURATION_BIN_MINUTES",
    "DURATION_CAP_MINUTES",
    "ENTRY_BIN_MINUTES",
    "FeatureSpec",
    "HISTORY_LENGTH",
    "LocationSession",
    "MINUTES_PER_DAY",
    "MobilityCorpus",
    "MobilityRegime",
    "REGIMES",
    "RoutineMobilityModel",
    "SequenceDataset",
    "SessionFeatures",
    "SpatialLevel",
    "UserProfile",
    "Visit",
    "Window",
    "discretize_duration",
    "export_trajectory_csv",
    "filter_on_campus_students",
    "filter_sparse_users",
    "load_ap_sessions",
    "observed_days",
    "save_ap_sessions",
    "stays_in_dorm_at_night",
    "discretize_entry",
    "duration_bin_to_minute",
    "entry_bin_to_minute",
    "extract_trajectory",
    "generate_corpus",
    "generate_regime_corpus",
    "location_marginals",
    "resolve_regime",
    "sample_regime_profile",
    "simulate_population",
    "visits_to_ap_sessions",
]
