"""WiFi session events and trajectory extraction.

Real campus datasets arrive as per-AP association events; the paper extracts
building-level trajectories from them using "well known methods" (their
ref [10], Trivedi et al.).  We mirror that pipeline:

1. :func:`visits_to_ap_sessions` expands each building visit into one or
   more AP sub-sessions (a device roams between APs inside a building).
2. :func:`extract_trajectory` re-aggregates AP sessions into a trajectory at
   either spatial level (paper Fig 3a evaluates both): consecutive sessions
   in the same location are merged, exactly like the sessionization step of
   the real pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.data.campus import CampusTopology
from repro.data.mobility import Visit


@dataclass(frozen=True)
class APSession:
    """One device-to-AP association interval."""

    user_id: int
    day_index: int
    day_of_week: int
    entry_minute: int
    duration_minute: int
    building_id: int
    ap_id: int

    @property
    def exit_minute(self) -> int:
        return self.entry_minute + self.duration_minute


@dataclass(frozen=True)
class LocationSession:
    """One stay at a location (building or AP, per the chosen level)."""

    user_id: int
    day_index: int
    day_of_week: int
    entry_minute: int
    duration_minute: int
    location_id: int

    @property
    def exit_minute(self) -> int:
        return self.entry_minute + self.duration_minute


def visits_to_ap_sessions(
    visits: Sequence[Visit],
    campus: CampusTopology,
    rng: np.random.Generator,
    mean_ap_dwell: float = 70.0,
) -> List[APSession]:
    """Expand building visits into AP-level sessions.

    Long stays roam across the building's APs (split into segments with mean
    dwell ``mean_ap_dwell`` minutes); short stays associate with a single AP.
    Users prefer a consistent "favourite" AP per building — real devices
    re-associate with the strongest AP for their usual spot — which keeps
    AP-level behaviour learnable.
    """
    sessions: List[APSession] = []
    favourite: Dict[tuple, int] = {}
    for visit in visits:
        building = campus.buildings[visit.building_id]
        key = (visit.user_id, visit.building_id)
        if key not in favourite:
            favourite[key] = int(rng.choice(building.ap_ids))
        segments = _split_duration(visit.duration_minute, mean_ap_dwell, rng)
        cursor = visit.entry_minute
        for i, segment in enumerate(segments):
            if i == 0 or rng.random() < 0.6:
                ap = favourite[key]
            else:
                ap = int(rng.choice(building.ap_ids))
            sessions.append(
                APSession(
                    user_id=visit.user_id,
                    day_index=visit.day_index,
                    day_of_week=visit.day_of_week,
                    entry_minute=cursor,
                    duration_minute=segment,
                    building_id=visit.building_id,
                    ap_id=ap,
                )
            )
            cursor += segment
    return sessions


def extract_trajectory(
    ap_sessions: Sequence[APSession], level: str
) -> List[LocationSession]:
    """Aggregate AP sessions into a location trajectory.

    ``level`` is ``"building"`` or ``"ap"``.  Consecutive sessions at the
    same location are merged (sessionization); the result is chronologically
    ordered and contiguous within each day.
    """
    if level not in ("building", "ap"):
        raise ValueError(f"level must be 'building' or 'ap', got {level!r}")
    result: List[LocationSession] = []
    for session in sorted(ap_sessions, key=lambda s: (s.day_index, s.entry_minute)):
        location = session.building_id if level == "building" else session.ap_id
        if (
            result
            and result[-1].location_id == location
            and result[-1].day_index == session.day_index
            and result[-1].exit_minute == session.entry_minute
        ):
            prev = result[-1]
            result[-1] = LocationSession(
                user_id=prev.user_id,
                day_index=prev.day_index,
                day_of_week=prev.day_of_week,
                entry_minute=prev.entry_minute,
                duration_minute=prev.duration_minute + session.duration_minute,
                location_id=prev.location_id,
            )
        else:
            result.append(
                LocationSession(
                    user_id=session.user_id,
                    day_index=session.day_index,
                    day_of_week=session.day_of_week,
                    entry_minute=session.entry_minute,
                    duration_minute=session.duration_minute,
                    location_id=location,
                )
            )
    return result


def _split_duration(total: int, mean_segment: float, rng: np.random.Generator) -> List[int]:
    """Split ``total`` minutes into >=1 segments with the given mean."""
    if total <= mean_segment:
        return [total]
    n_segments = max(1, int(round(total / mean_segment)))
    cuts = np.sort(rng.uniform(0, total, size=n_segments - 1)).astype(int)
    bounds = [0, *cuts.tolist(), total]
    segments = [bounds[i + 1] - bounds[i] for i in range(len(bounds) - 1)]
    return [s for s in segments if s > 0] or [total]
