"""Command-line interface: ``python -m repro <command>``.

Commands mirror the reproduction workflow:

* ``corpus``     — generate a synthetic campus corpus and save it to disk;
* ``demo``       — run the end-to-end train/personalize/attack/defend story;
* ``experiment`` — regenerate one paper table/figure by id;
* ``fleet``      — simulate fleet-scale serving: batched vs. looped queries,
  on one cloud or a sharded cluster (``--shards``), optionally scattered
  onto worker processes (``--workers``);
* ``serve-load`` — open-loop generated traffic (Poisson arrivals, diurnal
  curves, flash crowds) through the service front door: admission control,
  micro-batching, and the latency/SLO book;
* ``scenarios``  — stress matrix: mobility regimes × chaos policies;
* ``audit``      — privacy audit matrix: inversion adversaries attack the
  live deployment through the serving stack, across defenses and regimes;
* ``list``       — list the available experiment ids.

Examples::

    python -m repro corpus --buildings 30 --contributors 10 --days 42 -o corpus.npz
    python -m repro demo --seed 7
    python -m repro experiment table3 --scale tiny
    python -m repro fleet --scale tiny --fast
    python -m repro fleet --scale tiny --fast --shards 4 --placement hash
    python -m repro fleet --scale tiny --fast --store disk
    python -m repro serve-load --scale tiny --fast
    python -m repro serve-load --scale tiny --fast --shards 2 --policy lossy_network
    python -m repro serve-load --scale tiny --fast --devices-per-user 8 \\
        --rate 0.1 --flash-rate 0.3 --flash-start 40 --flash-duration 20
    python -m repro scenarios --scale tiny --regimes campus commuter tourist \\
        --policies none lossy_network churn --fast
    python -m repro scenarios --scale tiny --shards 2 --policies none shard_outage --fast
    python -m repro scenarios --scale tiny --shards 2 --policies hostile \\
        --resilience default --deadline 15 --fast
    python -m repro audit --scale tiny --fast
    python -m repro audit --scale tiny --fast --defense none temperature \\
        --adversary A1 A2 --regimes campus commuter
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.data import CorpusConfig, generate_corpus, save_ap_sessions
from repro.pelican.placement import PLACEMENT_POLICIES
from repro.pelican.storage import STORE_KINDS
from repro.eval import (
    ExperimentScale,
    Pipeline,
    render_accuracy_grid,
    render_attack_methods,
    render_bar_chart,
    render_overhead,
    render_personalization,
    render_scatter,
    render_training_sweep,
    run_adversary_comparison,
    run_attack_methods,
    run_defense_on_personalization,
    run_defense_on_spatial_levels,
    run_mobility_degree_study,
    run_overhead_comparison,
    run_personalization_comparison,
    run_predictability_study,
    run_prior_comparison,
    run_spatial_comparison,
    run_temperature_sweep,
    run_training_size_sweep,
)

EXPERIMENTS: Dict[str, tuple] = {
    "table2": (run_attack_methods, render_attack_methods, "attack runtimes + Fig 2a accuracy"),
    "fig2b": (run_adversary_comparison, lambda r: render_accuracy_grid(r, "adversary"), "adversaries A1/A2/A3"),
    "fig2c": (run_prior_comparison, lambda r: render_accuracy_grid(r, "prior"), "prior knowledge modes"),
    "fig3a": (run_spatial_comparison, lambda r: render_accuracy_grid(r, "level"), "building vs AP leakage"),
    "fig3b": (run_mobility_degree_study, render_scatter, "degree of mobility vs leakage"),
    "fig3c": (run_predictability_study, render_scatter, "predictability vs leakage"),
    "table3": (run_personalization_comparison, render_personalization, "personalization methods"),
    "table4": (run_training_size_sweep, render_training_sweep, "training-data size sweep"),
    "overhead": (run_overhead_comparison, render_overhead, "cloud vs device compute"),
    "fig5a": (run_defense_on_personalization, lambda r: render_accuracy_grid(r, "method"), "defense per TL method"),
    "fig5b": (
        run_temperature_sweep,
        lambda r: render_bar_chart({f"T={t:g}": v for t, v in r.items()}),
        "privacy temperature sweep",
    ),
    "fig5c": (run_defense_on_spatial_levels, lambda r: render_accuracy_grid(r, "level"), "defense per spatial level"),
}

_SCALES: Dict[str, Callable[[], ExperimentScale]] = {
    "tiny": ExperimentScale.tiny,
    "small": ExperimentScale.small,
    "paper": ExperimentScale.paper,
}


def _cmd_corpus(args: argparse.Namespace) -> int:
    config = CorpusConfig(
        num_buildings=args.buildings,
        num_contributors=args.contributors,
        num_personal_users=args.personal,
        num_days=args.days,
        seed=args.seed,
    )
    corpus = generate_corpus(config)
    size = save_ap_sessions(corpus.ap_sessions, args.output)
    print(
        f"wrote {args.output}: {corpus.campus.num_buildings} buildings, "
        f"{corpus.campus.num_aps} APs, "
        f"{len(corpus.contributor_ids) + len(corpus.personal_ids)} users, "
        f"{size} bytes"
    )
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    """Compact train -> personalize -> attack -> defend walkthrough."""
    import numpy as np

    from repro.attacks import (
        AdversaryClass,
        PriorMethod,
        TimeBasedAttack,
        attack_user,
        build_prior,
        prune_locations,
    )
    from repro.data import SpatialLevel
    from repro.models import (
        GeneralModelConfig,
        NextLocationPredictor,
        PersonalizationConfig,
        PersonalizationMethod,
        personalize,
        train_general_model,
    )
    from repro.pelican import apply_privacy, leakage_reduction

    corpus = generate_corpus(
        CorpusConfig(
            num_buildings=25, num_contributors=8, num_personal_users=1, num_days=35,
            seed=args.seed,
        )
    )
    spec = corpus.spec(SpatialLevel.BUILDING)
    train, _ = corpus.contributor_dataset(SpatialLevel.BUILDING).split_by_user(0.8)
    print("training general model...")
    general, _ = train_general_model(
        train, GeneralModelConfig(hidden_size=32, epochs=10, patience=4),
        np.random.default_rng(args.seed),
    )
    uid = corpus.personal_ids[0]
    user_train, user_test = corpus.user_dataset(uid, SpatialLevel.BUILDING).split(0.8)
    print(f"personalizing for user {uid} (TL feature extraction)...")
    personal, _ = personalize(
        general, user_train, PersonalizationMethod.TL_FE,
        PersonalizationConfig(epochs=12, patience=5), np.random.default_rng(args.seed + 1),
    )
    predictor = NextLocationPredictor(personal, spec)
    X, y = user_test.encode()
    print(f"personal model top-3 accuracy: {predictor.top_k_accuracy(X, y, 3):.2%}")

    prior = build_prior(PriorMethod.TRUE, spec.num_locations, train_dataset=user_train)
    attack = TimeBasedAttack(candidate_locations=prune_locations(predictor, user_test))
    undefended = attack_user(
        attack, predictor, user_test, AdversaryClass.A1, prior, max_instances=20
    )
    print(f"inversion attack top-3 accuracy: {undefended.accuracy(3):.2%}")

    defended_model = personal.copy(np.random.default_rng(args.seed + 2))
    apply_privacy(defended_model, 1e-3)
    defended_pred = NextLocationPredictor(defended_model, spec)
    defended = attack_user(
        TimeBasedAttack(candidate_locations=prune_locations(defended_pred, user_test)),
        defended_pred, user_test, AdversaryClass.A1, prior, max_instances=20,
    )
    reduction = leakage_reduction(undefended.accuracy(1), defended.accuracy(1))
    print(
        f"with Pelican privacy layer (T=1e-3): attack top-1 "
        f"{undefended.accuracy(1):.2%} -> {defended.accuracy(1):.2%} "
        f"({reduction:.0f}% leakage reduction); service accuracy unchanged: "
        f"{defended_pred.top_k_accuracy(X, y, 3):.2%}"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.name not in EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; try: python -m repro list", file=sys.stderr)
        return 2
    runner, renderer, description = EXPERIMENTS[args.name]
    print(f"[{args.name}] {description} (scale={args.scale})")
    pipeline = Pipeline(_SCALES[args.scale]())
    result = runner(pipeline)
    print(renderer(result))
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Stand up a fleet and compare batched vs. looped query serving."""
    from repro.eval import render_fleet, run_fleet_throughput

    if args.capacity < 0:
        print(f"--capacity must be >= 0, got {args.capacity}", file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.workers < 0:
        print(f"--workers must be >= 0, got {args.workers}", file=sys.stderr)
        return 2
    if args.workers and args.shards == 1:
        print("--workers requires --shards > 1 (nothing to scatter)", file=sys.stderr)
        return 2
    scale = _SCALES[args.scale]()
    capacity = args.capacity if args.capacity > 0 else None
    shards = f", {args.shards} shards ({args.placement})" if args.shards > 1 else ""
    if args.workers:
        shards += f", {args.workers} workers"
    print(
        f"[fleet] building deployment at scale={args.scale} "
        f"({'fast setup, ' if args.fast else ''}"
        f"{args.queries_per_user} queries/user, registry capacity "
        f"{capacity if capacity is not None else 'unbounded'}{shards})..."
    )
    result = run_fleet_throughput(
        scale,
        queries_per_user=args.queries_per_user,
        registry_capacity=capacity,
        fast_setup=args.fast,
        num_shards=args.shards,
        placement=args.placement,
        resilience=args.resilience,
        deadline=args.deadline,
        stacked=args.stacked,
        workers=args.workers,
        store=args.store,
        delta_updates=args.delta_updates,
    )
    print(render_fleet(result))
    return 0 if result.parity else 1


def _cmd_serve_load(args: argparse.Namespace) -> int:
    """Generate open-loop traffic and serve it through the front door."""
    from repro.eval import render_service_load, run_service_load

    if args.capacity < 0:
        print(f"--capacity must be >= 0, got {args.capacity}", file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.workers < 0:
        print(f"--workers must be >= 0, got {args.workers}", file=sys.stderr)
        return 2
    if args.workers and args.shards == 1:
        print("--workers requires --shards > 1 (nothing to scatter)", file=sys.stderr)
        return 2
    capacity = args.capacity if args.capacity > 0 else None
    queue_capacity = args.queue_capacity if args.queue_capacity > 0 else None
    shards = f", {args.shards} shards ({args.placement})" if args.shards > 1 else ""
    if args.workers:
        shards += f", {args.workers} workers"
    print(
        f"[serve-load] generating {args.devices_per_user} devices/user of "
        f"{'/'.join(args.regimes)} traffic at rate {args.rate:g}/s over "
        f"{args.horizon:g}s at scale={args.scale} "
        f"({'fast setup, ' if args.fast else ''}window {args.window:g}s, "
        f"max batch {args.max_batch}, chaos {args.policy}{shards})..."
    )
    result = run_service_load(
        _SCALES[args.scale](),
        regimes=args.regimes,
        rate=args.rate,
        horizon=args.horizon,
        devices_per_user=args.devices_per_user,
        diurnal_amplitude=args.diurnal_amplitude,
        diurnal_period=args.diurnal_period,
        flash_rate=args.flash_rate,
        flash_start=args.flash_start,
        flash_duration=args.flash_duration,
        update_prob=args.update_prob,
        window=args.window,
        max_batch=args.max_batch,
        queue_capacity=queue_capacity,
        policy=args.policy,
        resilience=args.resilience,
        deadline=args.deadline,
        registry_capacity=capacity,
        num_shards=args.shards,
        placement=args.placement,
        workers=args.workers,
        store=args.store,
        stacked=args.stacked,
        fast_setup=args.fast,
    )
    print(render_service_load(result))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    """Run the regimes × chaos-policies stress matrix and print it."""
    from repro.eval import render_scenarios, run_scenario_suite

    if args.capacity < 0:
        print(f"--capacity must be >= 0, got {args.capacity}", file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    capacity = args.capacity if args.capacity > 0 else None
    shards = f", {args.shards} shards" if args.shards > 1 else ""
    print(
        f"[scenarios] {len(args.regimes)} regimes x {len(args.policies)} policies "
        f"at scale={args.scale} ({'fast setup, ' if args.fast else ''}"
        f"{args.queries_per_user} queries/user/tick, chaos seed "
        f"{args.chaos_seed}{shards})..."
    )
    suite = run_scenario_suite(
        _SCALES[args.scale](),
        regimes=args.regimes,
        policies=args.policies,
        queries_per_user=args.queries_per_user,
        registry_capacity=capacity,
        fast_setup=args.fast,
        chaos_seed=args.chaos_seed,
        num_shards=args.shards,
        placement=args.placement,
        resilience=args.resilience,
        deadline=args.deadline,
    )
    print(render_scenarios(suite))
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    """Run the privacy audit matrix and print it (DESIGN.md §10)."""
    from repro.attacks import AdversaryClass
    from repro.eval import AUDIT_ATTACKS, render_audit, run_audit_suite

    if args.capacity < 0:
        print(f"--capacity must be >= 0, got {args.capacity}", file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    probe_attack = AUDIT_ATTACKS[args.attack]()
    unsupported = [
        a for a in args.adversary if not probe_attack.supports(AdversaryClass(a))
    ]
    if unsupported:
        print(
            f"--attack {args.attack} cannot plan for adversary "
            f"class(es) {' '.join(unsupported)} (multi-step window); "
            "use the time_based attack for A3",
            file=sys.stderr,
        )
        return 2
    capacity = args.capacity if args.capacity > 0 else None
    shards = f", {args.shards} shards" if args.shards > 1 else ""
    print(
        f"[audit] {len(args.regimes)} regimes x {len(args.defense)} defenses x "
        f"{len(args.adversary)} adversaries at scale={args.scale} "
        f"({'fast setup, ' if args.fast else ''}{args.attack} attack, "
        f"chaos policy {args.policy}{shards})..."
    )
    report = run_audit_suite(
        _SCALES[args.scale](),
        regimes=args.regimes,
        defenses=args.defense,
        adversaries=args.adversary,
        attack=args.attack,
        policy=args.policy,
        chaos_seed=args.chaos_seed,
        queries_per_user=args.queries_per_user,
        registry_capacity=capacity,
        num_shards=args.shards,
        placement=args.placement,
        fast_setup=args.fast,
        resilience=args.resilience,
        deadline=args.deadline,
    )
    print(render_audit(report))
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    for name, (_, _, description) in EXPERIMENTS.items():
        print(f"{name:<10} {description}")
    return 0


def _add_resilience_args(subparser: argparse.ArgumentParser) -> None:
    """The shared ``--resilience``/``--deadline`` pair (DESIGN.md §11)."""
    from repro.pelican.resilience import RESILIENCE_POLICIES

    subparser.add_argument(
        "--resilience", choices=sorted(RESILIENCE_POLICIES), default="none",
        help="fault-handling policy: retry budgets, breakers, deadlines, "
        "degradation (default: none — byte-identical to no policy)",
    )
    subparser.add_argument(
        "--deadline", type=float, default=None,
        help="per-query deadline in simulated seconds; overrides the "
        "resilience policy's own (default: policy deadline)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Preserving Privacy in Personalized Models for "
        "Distributed Mobile Services' (ICDCS 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    corpus = sub.add_parser("corpus", help="generate and save a synthetic corpus")
    corpus.add_argument("--buildings", type=int, default=40)
    corpus.add_argument("--contributors", type=int, default=24)
    corpus.add_argument("--personal", type=int, default=10)
    corpus.add_argument("--days", type=int, default=56)
    corpus.add_argument("--seed", type=int, default=7)
    corpus.add_argument("-o", "--output", default="corpus.npz")
    corpus.set_defaults(func=_cmd_corpus)

    demo = sub.add_parser("demo", help="run the end-to-end demo")
    demo.add_argument("--seed", type=int, default=7)
    demo.set_defaults(func=_cmd_demo)

    experiment = sub.add_parser("experiment", help="regenerate one paper table/figure")
    experiment.add_argument("name", help="experiment id (see: python -m repro list)")
    experiment.add_argument("--scale", choices=sorted(_SCALES), default="tiny")
    experiment.set_defaults(func=_cmd_experiment)

    fleet = sub.add_parser(
        "fleet", help="fleet-scale serving simulation (batched vs. looped queries)"
    )
    fleet.add_argument("--scale", choices=sorted(_SCALES), default="tiny")
    fleet.add_argument(
        "--queries-per-user", type=int, default=32,
        help="concurrent queries issued per onboarded user (default 32)",
    )
    fleet.add_argument(
        "--capacity", type=int, default=64,
        help="cloud registry live-model capacity per shard; 0 means unbounded (default 64)",
    )
    fleet.add_argument(
        "--shards", type=int, default=1,
        help="cloud shard count; >1 serves through a placement-routed cluster (default 1)",
    )
    fleet.add_argument(
        "--placement", choices=sorted(PLACEMENT_POLICIES), default="hash",
        help="user->shard placement policy when --shards > 1 (default hash)",
    )
    fleet.add_argument(
        "--workers", type=int, default=0,
        help="worker processes serving the shards; 0 = in-process serial "
        "(default 0, needs --shards > 1, answers are bit-identical)",
    )
    fleet.add_argument(
        "--fast", action="store_true",
        help="cut training epochs so setup takes seconds (serving-only results)",
    )
    fleet.add_argument(
        "--stacked", action="store_true",
        help="serve cloud groups via cross-model stacked dispatch (same answers)",
    )
    fleet.add_argument(
        "--store", choices=sorted(STORE_KINDS), default="memory",
        help="durable blob-store tier behind the registry: memory, disk "
        "(mmap-backed segments), or tiered (hot cache over disk); answers "
        "and signatures are bit-identical across tiers (default memory)",
    )
    fleet.add_argument(
        "--delta-updates", action="store_true",
        help="ship cloud redeploys as weight deltas against the prior blob "
        "(opt-in: books fewer network bytes by design)",
    )
    _add_resilience_args(fleet)
    fleet.set_defaults(func=_cmd_fleet)

    from repro.data.regimes import REGIMES
    from repro.pelican.chaos import CHAOS_POLICIES

    serve_load = sub.add_parser(
        "serve-load",
        help="open-loop generated traffic through the service front door "
        "(admission control, micro-batching, latency/SLO book)",
    )
    serve_load.add_argument("--scale", choices=sorted(_SCALES), default="tiny")
    serve_load.add_argument(
        "--regimes", nargs="+", choices=sorted(REGIMES), default=["campus"],
        help="traffic regime slices; users partition round-robin across "
        "them (default: campus)",
    )
    serve_load.add_argument(
        "--rate", type=float, default=0.05,
        help="mean arrivals per device per simulated second (default 0.05)",
    )
    serve_load.add_argument(
        "--horizon", type=float, default=120.0,
        help="length of the arrival window in simulated seconds (default 120)",
    )
    serve_load.add_argument(
        "--devices-per-user", type=int, default=4,
        help="independently-arriving simulated devices per onboarded user (default 4)",
    )
    serve_load.add_argument(
        "--diurnal-amplitude", type=float, default=0.0,
        help="sinusoidal rate modulation depth in [0,1]; 0 = flat (default 0)",
    )
    serve_load.add_argument(
        "--diurnal-period", type=float, default=0.0,
        help="period of the diurnal curve in simulated seconds (default 0 = flat)",
    )
    serve_load.add_argument(
        "--flash-rate", type=float, default=0.0,
        help="extra arrivals per device per second during the flash crowd "
        "(default 0 = no crowd)",
    )
    serve_load.add_argument(
        "--flash-start", type=float, default=0.0,
        help="flash-crowd window start in traffic time (default 0)",
    )
    serve_load.add_argument(
        "--flash-duration", type=float, default=20.0,
        help="flash-crowd window length in simulated seconds (default 20)",
    )
    serve_load.add_argument(
        "--update-prob", type=float, default=0.0,
        help="per-user probability of one mid-run model update (default 0)",
    )
    serve_load.add_argument(
        "--window", type=float, default=0.05,
        help="micro-batching window in simulated seconds; a pending batch "
        "flushes after this long or at --max-batch requests, whichever "
        "first (default 0.05)",
    )
    serve_load.add_argument(
        "--max-batch", type=int, default=16,
        help="admission queue flush size (default 16)",
    )
    serve_load.add_argument(
        "--queue-capacity", type=int, default=256,
        help="pending-queue bound; arrivals past it are rejected at the "
        "door, 0 means unbounded (default 256)",
    )
    serve_load.add_argument(
        "--policy", choices=sorted(CHAOS_POLICIES), default="none",
        help="chaos policy the serving stack runs under (default: none)",
    )
    serve_load.add_argument(
        "--capacity", type=int, default=64,
        help="cloud registry live-model capacity per shard; 0 means unbounded (default 64)",
    )
    serve_load.add_argument(
        "--shards", type=int, default=1,
        help="cloud shard count; >1 serves through a placement-routed cluster (default 1)",
    )
    serve_load.add_argument(
        "--placement", choices=sorted(PLACEMENT_POLICIES), default="hash",
        help="user->shard placement policy when --shards > 1 (default hash)",
    )
    serve_load.add_argument(
        "--workers", type=int, default=0,
        help="worker processes serving the shards; 0 = in-process serial "
        "(default 0, needs --shards > 1, answers are bit-identical)",
    )
    serve_load.add_argument(
        "--store", choices=sorted(STORE_KINDS), default="memory",
        help="durable blob-store tier behind the registry (default memory)",
    )
    serve_load.add_argument(
        "--stacked", action="store_true",
        help="serve cloud groups via cross-model stacked dispatch (same answers)",
    )
    serve_load.add_argument(
        "--fast", action="store_true",
        help="cut training epochs so setup takes seconds (serving-only results)",
    )
    _add_resilience_args(serve_load)
    serve_load.set_defaults(func=_cmd_serve_load)

    scenarios = sub.add_parser(
        "scenarios", help="stress matrix: mobility regimes x chaos policies"
    )
    scenarios.add_argument("--scale", choices=sorted(_SCALES), default="tiny")
    scenarios.add_argument(
        "--regimes", nargs="+", choices=sorted(REGIMES),
        default=["campus", "commuter", "tourist"],
        help="mobility regimes for the served population (default: campus commuter tourist)",
    )
    scenarios.add_argument(
        "--policies", nargs="+", choices=sorted(CHAOS_POLICIES),
        default=["none", "lossy_network", "churn"],
        help="chaos policies to replay the workload under (default: none lossy_network churn)",
    )
    scenarios.add_argument(
        "--queries-per-user", type=int, default=4,
        help="query ticks per onboarded user (default 4)",
    )
    scenarios.add_argument(
        "--capacity", type=int, default=2,
        help="cloud registry live-model capacity per shard; 0 means unbounded (default 2)",
    )
    scenarios.add_argument(
        "--shards", type=int, default=1,
        help="cloud shard count; >1 replays every cell on a sharded cluster (default 1)",
    )
    scenarios.add_argument(
        "--placement", choices=sorted(PLACEMENT_POLICIES), default="hash",
        help="user->shard placement policy when --shards > 1 (default hash)",
    )
    scenarios.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for every fault draw (default 0)",
    )
    scenarios.add_argument(
        "--fast", action="store_true",
        help="cut training epochs so setup takes seconds (serving-only results)",
    )
    _add_resilience_args(scenarios)
    scenarios.set_defaults(func=_cmd_scenarios)

    from repro.eval.audit import AUDIT_ATTACKS, AUDIT_DEFENSES

    audit = sub.add_parser(
        "audit",
        help="privacy audit matrix: adversaries attack the live deployment "
        "through the serving stack",
    )
    audit.add_argument("--scale", choices=sorted(_SCALES), default="tiny")
    audit.add_argument(
        "--regimes", nargs="+", choices=sorted(REGIMES), default=["campus"],
        help="mobility regimes for the audited population (default: campus)",
    )
    audit.add_argument(
        "--defense", nargs="+", choices=sorted(AUDIT_DEFENSES),
        default=["none", "temperature"],
        help="defenses to audit under (default: none temperature)",
    )
    audit.add_argument(
        "--adversary", nargs="+", choices=["A1", "A2", "A3"], default=["A1"],
        help="adversary knowledge classes, paper Table I (default: A1)",
    )
    audit.add_argument(
        "--attack", choices=sorted(AUDIT_ATTACKS), default="time_based",
        help="enumeration attack to replay at fleet scale (default: time_based)",
    )
    audit.add_argument(
        "--policy", choices=sorted(CHAOS_POLICIES), default="none",
        help="chaos policy the audited deployment runs under (default: none)",
    )
    audit.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed for every fault draw (default 0)",
    )
    audit.add_argument(
        "--queries-per-user", type=int, default=2,
        help="benign query ticks per onboarded user (default 2)",
    )
    audit.add_argument(
        "--capacity", type=int, default=2,
        help="cloud registry live-model capacity per shard; 0 means unbounded (default 2)",
    )
    audit.add_argument(
        "--shards", type=int, default=1,
        help="cloud shard count; >1 audits a placement-routed cluster (default 1)",
    )
    audit.add_argument(
        "--placement", choices=sorted(PLACEMENT_POLICIES), default="hash",
        help="user->shard placement policy when --shards > 1 (default hash)",
    )
    audit.add_argument(
        "--fast", action="store_true",
        help="cut training epochs so setup takes seconds (serving-only results)",
    )
    _add_resilience_args(audit)
    audit.set_defaults(func=_cmd_audit)

    lister = sub.add_parser("list", help="list experiment ids")
    lister.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
