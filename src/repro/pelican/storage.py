"""Tiered blob stores backing :class:`~repro.pelican.registry.ModelRegistry`.

The registry durably holds one serialized checkpoint per registered user
(paper §V-A3: personalized models uploaded for cloud serving).  A plain
in-memory dict caps registered-user count by RAM long before the serving
path saturates, so the store is an interface with three implementations
(DESIGN.md §14):

* :class:`MemoryBlobStore` — the historical dict semantics, still the
  default.  Blobs live on the heap; resident memory is O(total blob bytes).
* :class:`DiskBlobStore` — append-only segment files plus an in-memory
  ``{user_id: (segment, offset, length)}`` index.  Reads are served through
  ``mmap`` (page-cache backed, zero-copy via :meth:`BlobStore.view`), so
  resident memory stays O(index), not O(blobs).
* :class:`TieredBlobStore` — a bounded hot ``bytes`` cache layered over a
  disk tier with deterministic LRU demotion.

All three expose the mutable-mapping API the fleet/cluster/parallel layers
already use on the shared store (``items``/``get``/``update``/indexing), so
any store slots in wherever a ``Dict[int, bytes]`` was accepted.  Stores are
byte-transparent: the bytes read back are exactly the bytes written, which
is why store choice cannot move responses or signatures.
"""

from __future__ import annotations

import mmap
import shutil
import tempfile
from collections import OrderedDict
from collections.abc import MutableMapping
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

#: Store kinds accepted by :func:`make_blob_store` and the ``--store`` knob.
STORE_KINDS = ("memory", "disk", "tiered")

#: Documented accounting estimate for one disk-index entry: a dict slot, an
#: int key, and a three-int tuple.  Used by ``resident_bytes`` so the
#: benchmark gate is deterministic rather than allocator-dependent.
INDEX_ENTRY_BYTES = 120


class BlobStore(MutableMapping):
    """Mutable mapping of ``user_id -> bytes`` with residency accounting."""

    kind: str = "abstract"

    @property
    def total_bytes(self) -> int:
        """Physical bytes of all live blobs (O(1) running counter)."""
        raise NotImplementedError

    def resident_bytes(self) -> int:
        """Heap bytes this store keeps resident between calls."""
        raise NotImplementedError

    def view(self, user_id: int) -> Union[bytes, memoryview]:
        """A read-only buffer over one blob; may avoid copying.

        Unlike ``__getitem__`` (which always returns picklable ``bytes``),
        a view may alias an ``mmap`` — callers must not hold it across
        writes to the same store.
        """
        return self[user_id]

    def close(self) -> None:
        """Release file handles / maps; remove owned scratch directories."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(entries={len(self)}, total_bytes={self.total_bytes})"


class MemoryBlobStore(BlobStore):
    """Heap-resident store with the exact semantics of the historical dict."""

    kind = "memory"

    def __init__(self, initial: Optional[Dict[int, bytes]] = None) -> None:
        self._data: Dict[int, bytes] = {}
        self._total = 0
        if initial:
            self.update(initial)

    @property
    def total_bytes(self) -> int:
        return self._total

    def resident_bytes(self) -> int:
        return self._total

    def __setitem__(self, user_id: int, blob: bytes) -> None:
        blob = bytes(blob)
        prior = self._data.get(user_id)
        self._data[user_id] = blob
        self._total += len(blob) - (0 if prior is None else len(prior))

    def __getitem__(self, user_id: int) -> bytes:
        return self._data[user_id]

    def __delitem__(self, user_id: int) -> None:
        blob = self._data.pop(user_id)
        self._total -= len(blob)

    def __iter__(self) -> Iterator[int]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, user_id: object) -> bool:
        return user_id in self._data


class DiskBlobStore(BlobStore):
    """Append-only segment files with an in-memory location index.

    Writes append to the active segment (rolling at ``segment_bytes``);
    overwrites simply append a new copy and repoint the index, leaving the
    old bytes as garbage — redeploys are rare relative to reads, so no
    compaction is needed at simulation scale.  Reads map the owning segment
    once and slice it, so steady-state resident memory is the index alone.

    Pickling or deep-copying a disk store snapshots the index and drops the
    open handles/maps (they reopen lazily).  The copy shares the segment
    files, so exactly one copy may keep writing — the read-replica pattern
    the parallel layer uses.
    """

    kind = "disk"

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        segment_bytes: int = 16 * 1024 * 1024,
    ) -> None:
        self._owns_dir = directory is None
        self._dir = Path(
            tempfile.mkdtemp(prefix="repro-blobstore-") if directory is None else directory
        )
        self._dir.mkdir(parents=True, exist_ok=True)
        self._segment_bytes = int(segment_bytes)
        self._index: Dict[int, Tuple[int, int, int]] = {}
        self._segment_sizes: Dict[int, int] = {}
        self._active = 0
        self._total = 0
        self._writer = None
        self._maps: Dict[int, Tuple[int, mmap.mmap]] = {}
        self._retired: List[mmap.mmap] = []

    # -- write path ----------------------------------------------------
    def _segment_path(self, segment: int) -> Path:
        return self._dir / f"segment-{segment:05d}.blob"

    def _open_writer(self):
        if self._writer is None:
            self._writer = open(self._segment_path(self._active), "ab")
        return self._writer

    def __setitem__(self, user_id: int, blob: bytes) -> None:
        data = bytes(blob)
        size = self._segment_sizes.get(self._active, 0)
        if size > 0 and size + len(data) > self._segment_bytes:
            if self._writer is not None:
                self._writer.close()
                self._writer = None
            self._active += 1
            size = 0
        writer = self._open_writer()
        # No flush here: the read path flushes before (re)mapping the
        # active segment, so bulk registration streams through the OS
        # buffer at full speed.
        writer.write(data)
        prior = self._index.get(user_id)
        # Overwrites repoint in place, preserving dict insertion order.
        self._index[user_id] = (self._active, size, len(data))
        self._segment_sizes[self._active] = size + len(data)
        self._total += len(data) - (0 if prior is None else prior[2])

    # -- read path -----------------------------------------------------
    def _map_segment(self, segment: int, needed: int) -> mmap.mmap:
        cached = self._maps.get(segment)
        if cached is not None and cached[0] >= needed:
            return cached[1]
        if segment == self._active and self._writer is not None:
            self._writer.flush()
        size = self._segment_sizes[segment]
        with open(self._segment_path(segment), "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), size, access=mmap.ACCESS_READ)
        if cached is not None:
            # A view handed out earlier may still alias the old map; close
            # it only at store close.
            self._retired.append(cached[1])
        self._maps[segment] = (size, mapped)
        return mapped

    def view(self, user_id: int) -> memoryview:
        segment, offset, length = self._index[user_id]
        mapped = self._map_segment(segment, offset + length)
        return memoryview(mapped)[offset : offset + length]

    def __getitem__(self, user_id: int) -> bytes:
        return bytes(self.view(user_id))

    def __delitem__(self, user_id: int) -> None:
        _, _, length = self._index.pop(user_id)
        self._total -= length

    def __iter__(self) -> Iterator[int]:
        return iter(self._index)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, user_id: object) -> bool:
        return user_id in self._index

    # -- accounting ----------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self._total

    def resident_bytes(self) -> int:
        return len(self._index) * INDEX_ENTRY_BYTES

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        for mapped in [m for _, m in self._maps.values()] + self._retired:
            try:
                mapped.close()
            except BufferError:
                # A caller still holds a view over this map; leave it to
                # process teardown rather than invalidating their buffer.
                pass
        self._maps.clear()
        self._retired.clear()
        if self._owns_dir:
            shutil.rmtree(self._dir, ignore_errors=True)

    def __getstate__(self):
        if self._writer is not None:
            # Replicas read the files directly; whatever the index claims
            # must be on disk before the snapshot is taken.
            self._writer.flush()
        state = self.__dict__.copy()
        state["_writer"] = None
        state["_maps"] = {}
        state["_retired"] = []
        # A restored copy is a read replica over shared files; it must not
        # delete them on close.
        state["_owns_dir"] = False
        return state

    def __deepcopy__(self, memo):
        clone = type(self).__new__(type(self))
        clone.__dict__.update(self.__getstate__())
        clone._index = dict(self._index)
        clone._segment_sizes = dict(self._segment_sizes)
        return clone


class TieredBlobStore(BlobStore):
    """Bounded hot ``bytes`` cache over a disk tier.

    Writes go through to disk and admit the blob to the hot tier; reads
    promote on hit and admit on miss.  When the hot tier exceeds
    ``hot_bytes``, least-recently-used entries demote (they remain on
    disk), so demotion depends only on the access sequence — deterministic
    across runs.
    """

    kind = "tiered"

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        hot_bytes: int = 4 * 1024 * 1024,
        disk: Optional[DiskBlobStore] = None,
    ) -> None:
        self._disk = DiskBlobStore(directory) if disk is None else disk
        self._hot_bytes = int(hot_bytes)
        self._hot: "OrderedDict[int, bytes]" = OrderedDict()
        self._hot_total = 0
        self.hot_hits = 0
        self.hot_misses = 0

    def _admit(self, user_id: int, blob: bytes) -> None:
        prior = self._hot.pop(user_id, None)
        if prior is not None:
            self._hot_total -= len(prior)
        self._hot[user_id] = blob
        self._hot_total += len(blob)
        while self._hot_total > self._hot_bytes and self._hot:
            _, demoted = self._hot.popitem(last=False)
            self._hot_total -= len(demoted)

    def __setitem__(self, user_id: int, blob: bytes) -> None:
        data = bytes(blob)
        self._disk[user_id] = data
        self._admit(user_id, data)

    def __getitem__(self, user_id: int) -> bytes:
        hot = self._hot.get(user_id)
        if hot is not None:
            self._hot.move_to_end(user_id)
            self.hot_hits += 1
            return hot
        blob = self._disk[user_id]
        self.hot_misses += 1
        self._admit(user_id, blob)
        return blob

    def __delitem__(self, user_id: int) -> None:
        del self._disk[user_id]
        prior = self._hot.pop(user_id, None)
        if prior is not None:
            self._hot_total -= len(prior)

    def __iter__(self) -> Iterator[int]:
        return iter(self._disk)

    def __len__(self) -> int:
        return len(self._disk)

    def __contains__(self, user_id: object) -> bool:
        return user_id in self._disk

    @property
    def total_bytes(self) -> int:
        return self._disk.total_bytes

    def resident_bytes(self) -> int:
        return self._hot_total + self._disk.resident_bytes()

    def close(self) -> None:
        self._hot.clear()
        self._hot_total = 0
        self._disk.close()


def make_blob_store(
    kind: str = "memory",
    directory: Optional[Union[str, Path]] = None,
    hot_bytes: int = 4 * 1024 * 1024,
) -> BlobStore:
    """Build a store by kind (``memory`` / ``disk`` / ``tiered``)."""
    if kind == "memory":
        return MemoryBlobStore()
    if kind == "disk":
        return DiskBlobStore(directory)
    if kind == "tiered":
        return TieredBlobStore(directory, hot_bytes=hot_bytes)
    raise ValueError(f"unknown blob store kind {kind!r}; expected one of {STORE_KINDS}")
