"""Parallel cluster serving: scatter-gather shard replay onto persistent
worker processes (DESIGN.md §13).

A :class:`~repro.pelican.cluster.Cluster` executes its shards serially in
one process; this module puts each shard's full serving stack — its
``Fleet`` with Pelican, channel, registry, and chaos state — on a
persistent worker process and drives ticks over pipes, while the parent
keeps everything cluster-scoped: placement, outage windows, the
authoritative durable blob store, and the cluster-level chaos book.

**Determinism contract.**  A ``workers=N`` run reproduces the serial
run's responses and ``totals_signature()`` bit-for-bit, at any worker
count, under null chaos and under shard-outage/failover chaos:

* Shard state travels by pickle, which round-trips floats and numpy
  arrays exactly, and every shard keeps the derived seeds it was built
  with (``shard_policy`` stream-6 seeds included) — nothing reseeds from
  pids, time, or worker identity.
* Each worker processes its pipe FIFO, and the parent sends commands in
  exactly the serial iteration order, so every per-shard operation
  sequence — registry LRU order, flaky-registry fetch counters, channel
  draw indices, float accumulation order — is the serial one.
* Cross-shard work (failover) is split at the accounting boundary: the
  fallback worker serves, bills its own channel/report, and returns the
  home endpoints' ``(queries, seconds)`` deltas; the parent forwards
  them to the home worker in serial group order.  The two shards'
  mutations are disjoint, so applying the home-side bill after the tick
  gather leaves every float accumulator bit-identical to the serial
  interleaving.
* Blob-store writes (onboard/update) return the serialized checkpoint to
  the parent, which owns the authoritative store and pushes fresh blobs
  to a worker only when a failover actually needs them there.

**Shipping cost.**  The bulk of a shard's pickled weight barely changes
between sessions, so both sides keep replicas and only deltas travel:

* The durable blob store and the post-training cloud (trained general
  model + published checkpoint) are immutable or parent-owned; workers
  hold persistent replicas and ``init`` ships only the *store delta*
  (blobs whose bytes differ from the worker's replica) plus, once per
  pool lifetime, the static cloud state.
* Per-user device state (``endpoint.predictor``, ``local_dataset``)
  changes only when the user is (re)deployed — batched serving reads
  model weights without mutating them.  Each side ships a user's
  objects only when they were replaced since the other side last saw
  them: the parent tracks replacement by object identity (its objects
  persist across sessions), the worker by the onboard/update commands
  it executed.
* Registry live models never travel at all: a live entry rebuilds
  bit-identically from its durable blob (the registry's documented
  cold-load contract), so pickles carry only the LRU *order* and each
  side rehydrates from its own store — from a replica cache when the
  blob is unchanged, via ``rebuild_personal_model`` otherwise.

Every replica is content-identical to the serial objects at each
session boundary, so parity is unaffected — only the megabytes moved.

The pool does not compose with a non-null resilience policy: breakers
and the degradation ladder read cross-shard registry state mid-tick,
which has no deterministic decomposition onto isolated workers —
``Cluster`` rejects the combination up front.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import traceback
from collections import OrderedDict
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.pelican.clock import FleetEvent, QueryRequest, QueryResponse
from repro.pelican.deployment import (
    DeploymentMode,
    QueryStats,
    account_query_exchange,
    rebuild_personal_model,
)
from repro.pelican.dispatch import (
    ProbePayload,
    dispatch_model_batch,
    group_requests,
    probe_response,
    serve_probe_group,
)
from repro.pelican.fleet import Fleet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pelican.cluster import Cluster

__all__ = ["ShardWorkerPool", "default_start_method"]


def default_start_method() -> str:
    """``fork`` where the platform offers it, else ``spawn``.

    Both are bit-identical — all shard state travels over the pipe by
    pickle either way, so a forked worker inherits nothing it uses — but
    fork starts in milliseconds while spawn re-imports the world.
    ``REPRO_PARALLEL_START`` overrides (the spawn parity test uses it).
    """
    override = os.environ.get("REPRO_PARALLEL_START")
    if override:
        return override
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class _WorkerFailure:
    """An exception shipped back over the pipe instead of a result."""

    def __init__(self, message: str, trace: str) -> None:
        self.message = message
        self.trace = trace


def _check(result: Any) -> Any:
    if isinstance(result, _WorkerFailure):
        raise RuntimeError(
            f"shard worker failed: {result.message}\n{result.trace}"
        )
    return result


class _RemoteEndpointBill:
    """Billing stand-in for a home endpoint owned by another worker.

    Exposes exactly the single accounting boundary
    (:meth:`~repro.pelican.deployment.ServiceEndpoint.record_query_exchange`)
    over a scratch :class:`~repro.pelican.deployment.QueryStats`: the
    fallback worker books the channel side for real and captures the
    endpoint-side deltas here, to be replayed onto the true endpoint by
    its own worker.
    """

    __slots__ = ("stats",)

    def __init__(self) -> None:
        self.stats = QueryStats()

    def record_query_exchange(
        self, count: int, channel: Any = None, label: str = "query"
    ) -> float:
        return account_query_exchange(self.stats, count, channel, label)


def _failover_serve(
    fallback: Fleet, requests: List[QueryRequest]
) -> Tuple[List[Optional[QueryResponse]], List[Tuple[int, int, float]], int]:
    """The fallback-shard half of ``Cluster._serve_failover``.

    Identical group loop, registry resolution, channel billing, and
    report accumulation — but the home endpoints live in another
    process, so their ``(user, queries, seconds)`` deltas are captured
    per group (serial group order) and returned for the parent to route
    home.  Returns ``(responses, endpoint bills, failover query count)``.
    """
    responses: List[Optional[QueryResponse]] = [None] * len(requests)
    bills: List[Tuple[int, int, float]] = []
    failover_queries = 0
    for (user_id, _, k, is_probe), indices in group_requests(requests).items():
        model = fallback.registry.get(user_id)
        histories = [requests[i].history for i in indices]
        endpoint = _RemoteEndpointBill()
        if is_probe:
            results, num_probes = serve_probe_group(
                model,
                fallback.pelican.spec,
                histories,
                fallback.report,
                endpoint,
                channel=fallback.pelican.channel,
                label="failover-probe",
            )
            failover_queries += num_probes
            for i, confidences in zip(indices, results):
                responses[i] = probe_response(user_id, i, confidences)
        else:
            results, report = dispatch_model_batch(
                model, fallback.pelican.spec, histories, k
            )
            fallback.report.cloud_compute += report
            endpoint.record_query_exchange(
                len(indices),
                channel=fallback.pelican.channel,
                label="failover-query",
            )
            fallback.report.batches += 1
            fallback.report.queries += len(indices)
            failover_queries += len(indices)
            for i, top in zip(indices, results):
                responses[i] = QueryResponse(
                    user_id=user_id, time=0.0, seq=i, top_k=tuple(top)
                )
        bills.append(
            (user_id, endpoint.stats.queries, endpoint.stats.simulated_network_seconds)
        )
    fallback._sync_network()
    return responses, bills, failover_queries


class _WorkerState:
    """Everything one worker process keeps alive across sessions.

    ``shards`` holds the current session's fleets; the rest are the
    session-spanning replicas the shipping protocol strips from pickles:
    ``store`` mirrors the cluster's durable blob store (brought current
    by each init's delta), ``static`` each shard's immutable
    post-training cloud, ``devices`` each user's device-side objects
    (predictor + local dataset, replaced only by onboard/update), and
    ``models`` the rehydrated live registry models keyed by user.
    ``dirty`` collects the users this session (re)deployed, whose fresh
    device objects must ship back in the dump.
    """

    def __init__(self) -> None:
        self.shards: Dict[int, Fleet] = {}
        self.store: Dict[int, bytes] = {}
        self.static: Dict[int, Tuple[Any, Optional[bytes]]] = {}
        self.devices: Dict[int, Tuple[Any, Any]] = {}
        self.models: Dict[int, Any] = {}
        self.dirty: Set[int] = set()


def _strip_for_pickle(
    shards: Dict[int, Fleet], ship_user: Callable[[int], bool]
) -> List[Tuple[Any, str, Any]]:
    """Detach everything the other side can reconstruct, so a pickle
    carries only per-session serving state: the cloud and blob store
    (replicated), every registry's live models (``_live`` keeps its LRU
    *order*, values rebuild from blobs), and — unless ``ship_user`` says
    the user was replaced — each user's device objects.  Returns the
    stash for :func:`_restore_after_pickle`; always pair the two in
    ``try``/``finally`` — the fleets are live objects on both sides."""
    stash: List[Tuple[Any, str, Any]] = []

    def strip(obj: Any, attr: str, replacement: Any) -> None:
        stash.append((obj, attr, getattr(obj, attr)))
        setattr(obj, attr, replacement)

    for fleet in shards.values():
        pelican = fleet.pelican
        strip(pelican, "cloud", None)
        strip(pelican, "_general_blob", None)
        strip(fleet.registry, "_blobs", {})
        strip(fleet, "_registry_store", None)
        strip(
            fleet.registry,
            "_live",
            OrderedDict((user_id, None) for user_id in fleet.registry._live),
        )
        for user_id, slot in pelican.users.items():
            if not ship_user(user_id):
                strip(slot.endpoint, "predictor", None)
                strip(slot, "local_dataset", None)
    return stash


def _restore_after_pickle(stash: List[Tuple[Any, str, Any]]) -> None:
    for obj, attr, value in reversed(stash):
        setattr(obj, attr, value)


def _rehydrate_live(
    registry: Any, store: Dict[int, bytes], models: Dict[int, Any]
) -> None:
    """Fill a shipped registry's ``_live`` placeholders back in, in the
    shipped LRU order: from the ``models`` replica when present, else by
    the registry's own cold-load deserializer — bit-identical by the
    rebuild contract, and unbooked (this is transport plumbing, not a
    served cold load)."""
    live = registry._live
    for user_id in live:
        model = models.get(user_id)
        if model is None:
            model = rebuild_personal_model(
                store[user_id], np.random.default_rng(registry.seed + user_id)
            )
            models[user_id] = model
        live[user_id] = model


def _handle(state: _WorkerState, command: Tuple) -> Any:
    """Execute one parent command against this worker's shards."""
    kind = command[0]
    shards = state.shards
    if kind == "serve":
        _, shard_id, requests = command
        return shards[shard_id].serve(requests)
    if kind == "failover":
        _, shard_id, requests, blobs = command
        fallback = shards[shard_id]
        # Fresh checkpoints this worker's store replica is missing —
        # pushed lazily by the parent, only when a failover needs them.
        # ``registry._blobs`` *is* ``state.store`` here, so the push
        # updates the persistent replica too; any model replica built
        # from the superseded bytes must go with it.
        fallback.registry._blobs.update(blobs)
        for user_id in blobs:
            state.models.pop(user_id, None)
        return _failover_serve(fallback, requests)
    if kind == "bill":
        _, shard_id, bills = command
        pelican = shards[shard_id].pelican
        for user_id, queries, seconds in bills:
            stats = pelican.users[user_id].endpoint.stats
            stats.queries += queries
            stats.simulated_network_seconds += seconds
        return "ok"
    if kind == "evict":
        _, shard_id, user_id = command
        return shards[shard_id].registry.evict(user_id)
    if kind == "onboard":
        _, shard_id, user_id, dataset, options = command
        user = shards[shard_id].onboard(user_id, dataset, **options)
        state.dirty.add(user_id)
        return _deploy_summary(shards[shard_id], user_id, user)
    if kind == "update":
        _, shard_id, user_id, dataset = command
        user = shards[shard_id].update(user_id, dataset)
        state.dirty.add(user_id)
        return _deploy_summary(shards[shard_id], user_id, user)
    if kind == "init":
        _, new_shards, statics, store_delta = command
        state.static.update(statics)
        state.store.update(store_delta)
        # A delta entry means the parent's blob changed since this
        # worker last held it — any model rehydrated from the old bytes
        # is superseded.
        for user_id in store_delta:
            state.models.pop(user_id, None)
        state.dirty.clear()
        shards.clear()
        shards.update(new_shards)
        for shard_id, fleet in shards.items():
            cloud, general_blob = state.static[shard_id]
            fleet.pelican.cloud = cloud
            fleet.pelican._general_blob = general_blob
            fleet.registry._blobs = state.store
            fleet._registry_store = state.store
            for user_id, slot in fleet.pelican.users.items():
                if slot.endpoint.predictor is None:
                    predictor, local_dataset = state.devices[user_id]
                    slot.endpoint.predictor = predictor
                    slot.local_dataset = local_dataset
                else:  # replaced since this worker last saw the user
                    state.devices[user_id] = (
                        slot.endpoint.predictor, slot.local_dataset
                    )
            _rehydrate_live(fleet.registry, state.store, state.models)
        return "ok"
    if kind == "dump":
        # Re-sync the replicas from the session's final state (live sets
        # shrink under LRU churn; device objects change on redeploy),
        # then pickle here (not in conn.send) so the strip/restore
        # brackets the serialization — the parent re-attaches its own
        # copies of everything stripped.
        state.models = {}
        for fleet in shards.values():
            state.models.update(fleet.registry._live)
            for user_id, slot in fleet.pelican.users.items():
                state.devices[user_id] = (slot.endpoint.predictor, slot.local_dataset)
        stash = _strip_for_pickle(shards, lambda user_id: user_id in state.dirty)
        try:
            return pickle.dumps(dict(shards), protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            _restore_after_pickle(stash)
    raise ValueError(f"unknown worker command {kind!r}")


def _deploy_summary(
    shard: Fleet, user_id: int, user: Any
) -> Tuple[DeploymentMode, Optional[bytes]]:
    """What the parent needs from a worker-side onboard/update: the
    deployment mode (outage routing) and, for cloud deployments, the
    fresh checkpoint blob (authoritative-store delta)."""
    mode = user.endpoint.mode
    blob = shard.registry._blobs.get(user_id) if mode == DeploymentMode.CLOUD else None
    return mode, blob


def _worker_main(conn) -> None:
    """Worker process command loop: recv, execute, reply, FIFO forever.

    The strict one-reply-per-command discipline over one pipe is the
    backbone of the determinism argument — each worker's operation order
    is exactly the order the parent sent, which is exactly the serial
    iteration order.
    """
    state = _WorkerState()
    while True:
        try:
            command = conn.recv()
        except EOFError:
            break
        if command[0] == "stop":
            conn.send("ok")
            break
        try:
            result = _handle(state, command)
        except BaseException as exc:  # ship, don't die: parent re-raises
            conn.send(_WorkerFailure(repr(exc), traceback.format_exc()))
        else:
            conn.send(result)
    conn.close()


class ShardWorkerPool:
    """Persistent worker processes serving a cluster's shards.

    Created lazily by :class:`~repro.pelican.cluster.Cluster` when
    ``workers > 0``; shards are assigned round-robin to
    ``min(workers, num_shards)`` processes.  Work happens inside a
    :meth:`session`: shard serving state is shipped to the workers (the
    session-invariant heavyweights — blob store, trained cloud — stay
    on worker-side replicas and only deltas travel), commands are
    scattered per tick, and on exit the fleets are pulled back and
    swapped into the cluster, so the parent is authoritative again
    between public calls — ``signature()``, ``merged_chaos()``, and the
    golden tests read parent state only.
    """

    def __init__(self, cluster: "Cluster", start_method: Optional[str] = None) -> None:
        self.cluster = cluster
        self.num_workers = min(cluster.workers, cluster.num_shards)
        self.start_method = start_method or default_start_method()
        context = multiprocessing.get_context(self.start_method)
        self._conns = []
        self._processes = []
        for index in range(self.num_workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child_conn,),
                daemon=True,
                name=f"repro-shard-worker-{index}",
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._processes.append(process)
        self._stale: List[Set[int]] = [set() for _ in range(self.num_workers)]
        self._modes: Dict[int, DeploymentMode] = {}
        self._foreign_live: Dict[int, Set[int]] = {}
        # Parent's view of each worker's persistent blob-store replica
        # (content, not identity: worker-side registrations produce
        # equal-but-distinct bytes) — drives the per-session store delta.
        self._replica: List[Dict[int, bytes]] = [{} for _ in range(self.num_workers)]
        # Which (cloud, general blob) pair each worker already holds per
        # shard, compared by identity — both are immutable after
        # ``initial_training``, so one ship per pool lifetime suffices.
        self._static_sent: List[Dict[int, Tuple[Any, Optional[bytes]]]] = [
            {} for _ in range(self.num_workers)
        ]
        # The parent-side originals stripped during the current session's
        # ship, re-attached to the dumped fleets at collect.
        self._session_static: Dict[int, Tuple[Any, Optional[bytes]]] = {}
        # Per-user device objects (predictor, local dataset) as the home
        # worker last saw them, compared by identity — the parent's
        # objects persist across sessions, and every replacement path
        # (parent-side onboard/update between sessions, worker-side
        # deploys adopted at collect) swaps in new objects.
        self._user_state: Dict[int, Tuple[Any, Any]] = {}
        # Parent-side rehydration cache for registry live models:
        # user -> (blob the model was rebuilt from, model).  Keyed by
        # blob identity — ``cluster.store`` values are replaced, never
        # mutated, so an identical object means an identical model.
        self._model_cache: Dict[int, Tuple[bytes, Any]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def owner(self, shard_id: int) -> int:
        """The worker index hosting ``shard_id`` (round-robin)."""
        return shard_id % self.num_workers

    @contextmanager
    def session(self):
        """Ship shard state out, yield for scattered work, pull it back."""
        self._ship()
        try:
            yield self
        finally:
            self._collect()

    def _ship(self) -> None:
        cluster = self.cluster
        by_worker: List[Dict[int, Fleet]] = [{} for _ in range(self.num_workers)]
        for shard_id, shard in enumerate(cluster.shards):
            by_worker[self.owner(shard_id)][shard_id] = shard
        self._session_static = {}
        for worker, (conn, shards) in enumerate(zip(self._conns, by_worker)):
            replica = self._replica[worker]
            delta: Dict[int, bytes] = {}
            for user_id, blob in cluster.store.items():
                held = replica.get(user_id)
                if held is not blob and held != blob:
                    delta[user_id] = blob
            statics: Dict[int, Tuple[Any, Optional[bytes]]] = {}
            sent = self._static_sent[worker]
            ship_users: Set[int] = set()
            for shard_id, fleet in shards.items():
                static = (fleet.pelican.cloud, fleet.pelican._general_blob)
                self._session_static[shard_id] = static
                held_static = sent.get(shard_id)
                if (
                    held_static is None
                    or held_static[0] is not static[0]
                    or held_static[1] is not static[1]
                ):
                    statics[shard_id] = static
                    sent[shard_id] = static
                for user_id, slot in fleet.pelican.users.items():
                    devices = (slot.endpoint.predictor, slot.local_dataset)
                    held = self._user_state.get(user_id)
                    if (
                        held is None
                        or held[0] is not devices[0]
                        or held[1] is not devices[1]
                    ):
                        ship_users.add(user_id)
                        self._user_state[user_id] = devices
            stash = _strip_for_pickle(shards, lambda user_id: user_id in ship_users)
            try:
                payload = pickle.dumps(
                    ("init", shards, statics, delta),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            finally:
                _restore_after_pickle(stash)
            conn.send_bytes(payload)
            replica.update(delta)
        for conn in self._conns:
            _check(conn.recv())
        # Every worker's replica is brought up to the authoritative store
        # by the init delta, so nothing is stale until the first
        # worker-side (re)deploy of this session.
        self._stale = [set() for _ in range(self.num_workers)]
        self._modes = {
            user_id: user.endpoint.mode for user_id, user in cluster.users.items()
        }
        # Exact foreign residency at session start; maintained as a
        # superset during the session (LRU churn on a worker can only
        # shrink true residency, and evict no-ops on non-residents).
        self._foreign_live = {}
        for shard_id, shard in enumerate(cluster.shards):
            for user_id in shard.registry.resident_ids:
                if cluster.placement.shard_for(user_id) != shard_id:
                    self._foreign_live.setdefault(user_id, set()).add(shard_id)

    def _collect(self) -> None:
        cluster = self.cluster
        for conn in self._conns:
            conn.send(("dump",))
        dumped: Dict[int, Fleet] = {}
        for conn in self._conns:
            dumped.update(pickle.loads(_check(conn.recv())))
        for shard_id, fleet in dumped.items():
            # Re-attach the parent-side originals the ship stripped: the
            # shared cloud/general blob (same objects, so cross-shard
            # sharing survives), the authoritative store
            # (content-identical: all deltas flowed through the parent),
            # and the shared resilience book.
            cloud, general_blob = self._session_static[shard_id]
            fleet.pelican.cloud = cloud
            fleet.pelican._general_blob = general_blob
            fleet.registry._blobs = cluster.store
            fleet._registry_store = cluster.store
            fleet.resilience_stats = cluster.resilience_stats
            # Device objects: the parent's own copies for untouched
            # users, the worker's fresh ones (shipped in the dump) for
            # users the session (re)deployed.
            for user_id, slot in fleet.pelican.users.items():
                if slot.endpoint.predictor is None:
                    predictor, local_dataset = self._user_state[user_id]
                    slot.endpoint.predictor = predictor
                    slot.local_dataset = local_dataset
                else:
                    self._user_state[user_id] = (
                        slot.endpoint.predictor, slot.local_dataset
                    )
            # Live registry models: rehydrate each shipped LRU slot from
            # the authoritative blob, reusing the cached rebuild when
            # the blob object is unchanged.
            live = fleet.registry._live
            for user_id in live:
                blob = cluster.store[user_id]
                cached = self._model_cache.get(user_id)
                if cached is None or cached[0] is not blob:
                    model = rebuild_personal_model(
                        blob,
                        np.random.default_rng(fleet.registry.seed + user_id),
                    )
                    self._model_cache[user_id] = (blob, model)
                else:
                    model = cached[1]
                live[user_id] = model
            cluster.shards[shard_id] = fleet
        cluster.report.shard_reports = [shard.report for shard in cluster.shards]

    def shutdown(self) -> None:
        """Stop the worker processes; safe to call more than once."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
                conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
            finally:
                conn.close()
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
        self._conns = []
        self._processes = []

    # ------------------------------------------------------------------
    # Scattered serving
    # ------------------------------------------------------------------
    def _send(self, shard_id: int, command: Tuple) -> Any:
        self._conns[self.owner(shard_id)].send(command)

    def _recv(self, shard_id: int) -> Any:
        return _check(self._conns[self.owner(shard_id)].recv())

    def scatter(self, requests: Sequence[QueryRequest]) -> List[QueryResponse]:
        """Parallel ``Cluster.serve``: all shards' sub-batches in flight
        at once, merged through the shared one-slot-per-request gather."""
        cluster = self.cluster
        responses: List[Optional[QueryResponse]] = [None] * len(requests)
        order = list(cluster._by_shard(requests).items())
        for shard_id, indices in order:
            self._send(shard_id, ("serve", shard_id, [requests[i] for i in indices]))
        for shard_id, indices in order:
            served = self._recv(shard_id)
            cluster._merge_shard(shard_id, indices, served, responses, renumber=True)
        return [r for r in responses if r is not None]

    def serve_tick(
        self, time: float, requests: List[QueryRequest]
    ) -> List[Optional[QueryResponse]]:
        """One coalesced clock tick on the pool — ``Cluster._serve_tick``
        with the same routing decisions but scattered execution.

        Three phases: (A) route every shard's sub-batch and send its
        commands in serial iteration order — alive shards serve, downed
        shards split into device-local serving on the home worker plus
        per-fallback failover commands; (B) gather replies in send
        order; (C) forward the failover bills to the home workers.  The
        per-worker FIFO plus the disjointness of the deferred bills make
        the final state bit-identical to the serial tick (DESIGN.md §13).
        """
        cluster = self.cluster
        responses: List[Optional[QueryResponse]] = [None] * len(requests)
        sends: List[Tuple[str, int, int, List[int]]] = []
        for shard_id, indices in cluster._by_shard(requests).items():
            if not cluster._down(shard_id, time):
                sub = [requests[i] for i in indices]
                self._send(shard_id, ("serve", shard_id, sub))
                sends.append(("serve", shard_id, shard_id, indices))
                continue
            # Outage split, mirroring Cluster._serve_despite_outage
            # (no breakers, no ladder: workers require null resilience).
            local: List[int] = []
            by_fallback: "OrderedDict[int, List[int]]" = OrderedDict()
            for i in indices:
                request = requests[i]
                if self._modes[request.user_id] != DeploymentMode.CLOUD:
                    local.append(i)
                    continue
                target = cluster._failover_target(request.user_id, shard_id, time)
                if target is None:
                    # Full-cluster outage: the legacy serve-on-downed-home
                    # path, counted exactly like the serial tick.
                    target = shard_id
                    if not isinstance(request.history, ProbePayload):
                        cluster.resilience_stats.unprotected_outage_queries += 1
                else:
                    self._foreign_live.setdefault(request.user_id, set()).add(target)
                by_fallback.setdefault(target, []).append(i)
            if local:
                self._send(
                    shard_id, ("serve", shard_id, [requests[i] for i in local])
                )
                sends.append(("serve", shard_id, shard_id, local))
            for fallback_id, fallback_indices in by_fallback.items():
                users = {requests[i].user_id for i in fallback_indices}
                worker = self.owner(fallback_id)
                blobs = {
                    user_id: cluster.store[user_id]
                    for user_id in sorted(users)
                    if user_id in self._stale[worker]
                }
                self._stale[worker] -= users
                self._replica[worker].update(blobs)
                self._send(
                    fallback_id,
                    (
                        "failover",
                        fallback_id,
                        [requests[i] for i in fallback_indices],
                        blobs,
                    ),
                )
                sends.append(("failover", fallback_id, shard_id, fallback_indices))
        pending_bills: List[Tuple[int, List[Tuple[int, int, float]]]] = []
        for kind, served_id, home_id, indices in sends:
            result = self._recv(served_id)
            if kind == "serve":
                served = result
            else:
                served, bills, failover_queries = result
                cluster.chaos.failover_queries += failover_queries
                if bills:
                    pending_bills.append((home_id, bills))
            cluster._merge_shard(served_id, indices, served, responses)
        for home_id, bills in pending_bills:
            self._send(home_id, ("bill", home_id, bills))
        for home_id, _ in pending_bills:
            self._recv(home_id)
        return responses

    # ------------------------------------------------------------------
    # Lifecycle events (during a session)
    # ------------------------------------------------------------------
    def onboard_event(self, event: FleetEvent) -> None:
        home_id = self.cluster.placement.shard_for(event.user_id)
        self._send(
            home_id,
            ("onboard", home_id, event.user_id, event.payload, dict(event.options)),
        )
        mode, blob = self._recv(home_id)
        self._register_deploy(event.user_id, home_id, mode, blob)

    def update_event(self, event: FleetEvent) -> None:
        home_id = self.cluster.placement.shard_for(event.user_id)
        self._send(home_id, ("update", home_id, event.user_id, event.payload))
        mode, blob = self._recv(home_id)
        self._register_deploy(event.user_id, home_id, mode, blob)

    def _register_deploy(
        self,
        user_id: int,
        home_id: int,
        mode: DeploymentMode,
        blob: Optional[bytes],
    ) -> None:
        """Parent-side bookkeeping after a worker (re)deployed a model:
        authoritative-store delta, staleness marks for the other workers'
        store replicas, and the targeted cross-shard invalidation."""
        cluster = self.cluster
        self._modes[user_id] = mode
        if blob is not None:
            cluster.store[user_id] = blob
            home_worker = self.owner(home_id)
            for worker in range(self.num_workers):
                if worker != home_worker:
                    self._stale[worker].add(user_id)
            # Shards co-hosted with the home shard share its store
            # replica, so the home worker is fresh by construction —
            # its replica holds these exact bytes (it produced them).
            self._stale[home_worker].discard(user_id)
            self._replica[home_worker][user_id] = blob
        # Targeted invalidation (the serial _invalidate_elsewhere
        # contract): only shards a failover may have left a live copy
        # on are probed, and evict books only when the copy is still
        # resident — bit-identical eviction logs either way.
        for shard_id in sorted(self._foreign_live.pop(user_id, set())):
            if shard_id != home_id:
                self._send(shard_id, ("evict", shard_id, user_id))
                self._recv(shard_id)
