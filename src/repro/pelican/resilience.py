"""Deterministic fault *handling* over the serving stack (DESIGN.md §11).

The chaos layer (DESIGN.md §8) injects faults; this module governs how
the system reacts to them.  A :class:`ResiliencePolicy` bundles four
mechanisms, all running on the simulated event clock and all drawing
from ``default_rng((seed, stream, key))`` exactly like chaos draws:

* **Retry budgets + exponential backoff** — lossy transfers and flaky
  cold loads may spend at most ``retry_budget`` retries each; every
  retry also pays seeded-jitter exponential backoff seconds, and a
  retry the budget cannot cover surfaces as a typed
  :class:`RetryBudgetExhausted` (caught and counted, never silently
  absorbed as more retry seconds).
* **Per-shard circuit breakers** — a closed/open/half-open
  :class:`ShardBreaker` per cloud shard, keyed off a sliding failure
  window on the event clock.  Open breakers redirect failover *before*
  a doomed cold load is paid; every transition lands in a
  deterministic log.
* **Deadlines + load shedding** — each query carries a
  simulated-seconds deadline; chaos-deferred work that cannot meet it
  is shed up front (:func:`shed_late_queries`) and counted, never
  silently slow.
* **A graceful-degradation ladder** — personal model → stale cached
  copy → general model → per-user Markov prior
  (:class:`~repro.models.markov.MarkovChainModel`), used when a query
  has *no* alive shard to fail over to.  Degraded answers are flagged
  on :class:`~repro.pelican.clock.QueryResponse` so accuracy splits
  fresh-vs-degraded.

The guarantees mirror §8's: the null policy is byte-identical to
running without the resilience layer, same-seed runs are
bit-deterministic, and everything the layer did is a deterministic
:class:`ResilienceStats` overlay on the fleet/cluster signature.
Audit probes are exempt from shedding and the ladder — probe answers
must stay fault-timing invariant (DESIGN.md §10), so a full outage
serves them through the legacy home-shard path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import SequenceDataset
from repro.data.features import FeatureSpec
from repro.models.architecture import NextLocationModel
from repro.models.markov import MarkovChainModel
from repro.pelican.clock import EventKind, FleetSchedule, QueryResponse
from repro.pelican.device import rebuild_general_model
from repro.pelican.dispatch import ProbePayload

# Stable stream ids for per-decision RNG derivation, disjoint from the
# chaos layer's 1–6 (chaos.py).  Never renumber: committed golden runs
# depend on them.
_STREAM_TRANSFER_BACKOFF = 7
_STREAM_COLD_LOAD_BACKOFF = 8
_STREAM_SHARD_SEED = 9

#: Measurement deadline (simulated seconds) used for availability/SLO
#: columns when neither the CLI nor the policy specifies one — so the
#: no-resilience baseline cells are scored against the same bar.
DEFAULT_QUERY_DEADLINE = 15.0

#: Degradation-ladder tier names, in the order the ladder walks them.
DEGRADE_TIERS = ("stale", "general", "prior")


class RetryBudgetExhausted(RuntimeError):
    """A transfer wanted one more retry than its budget allows.

    The typed surface for budget exhaustion: raised at the decision
    point, caught by the owning component, and recorded as a denial in
    :class:`ResilienceStats` — instead of the unbounded retry seconds
    the chaos layer alone would have paid.
    """

    def __init__(self, kind: str, key: Tuple[int, ...], budget: int) -> None:
        super().__init__(
            f"{kind} retry budget ({budget}) exhausted at draw key {key}"
        )
        self.kind = kind
        self.key = key
        self.budget = budget


@dataclass(frozen=True)
class ResiliencePolicy:
    """Seeded knobs for one fault-handling discipline.

    Every knob defaults to *off* — the null policy changes nothing and
    is byte-identical to running without the resilience layer (the
    same null-identity contract :class:`~repro.pelican.chaos.ChaosPolicy`
    holds).
    """

    name: str = "none"
    seed: int = 0
    #: Max retries any single transfer / cold load may consume.  ``None``
    #: leaves the chaos layer's own caps untouched (unbounded budget).
    retry_budget: Optional[int] = None
    #: Exponential backoff paid per retry: attempt ``a`` costs
    #: ``backoff_base * backoff_multiplier**a`` seconds, scaled by
    #: ``1 + backoff_jitter * u`` with ``u`` a seeded uniform draw.
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.1
    #: Circuit breaker: ``breaker_threshold`` failures inside a sliding
    #: ``breaker_window`` (simulated seconds) open a shard's breaker for
    #: ``breaker_cooldown`` seconds, after which it half-opens.  ``None``
    #: threshold disables breakers.
    breaker_threshold: Optional[int] = None
    breaker_window: float = 40.0
    breaker_cooldown: float = 30.0
    #: Per-query deadline in simulated seconds; chaos-deferred queries
    #: that would exceed it are shed.  ``None`` disables shedding.
    deadline: Optional[float] = None
    #: Degradation-ladder tiers to walk (subset of :data:`DEGRADE_TIERS`,
    #: in order) when a query has no alive shard.  Empty = ladder off;
    #: full-outage queries then shed (or, with the whole policy null,
    #: fall back to the legacy serve-on-downed-home behaviour).
    degrade_tiers: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for tier in self.degrade_tiers:
            if tier not in DEGRADE_TIERS:
                raise ValueError(
                    f"unknown degradation tier {tier!r}; tiers: {DEGRADE_TIERS}"
                )

    @property
    def is_null(self) -> bool:
        """True when this policy can never change a run."""
        return (
            self.retry_budget is None
            and self.breaker_threshold is None
            and self.deadline is None
            and not self.degrade_tiers
        )

    def rng(self, stream: int, *keys: int) -> np.random.Generator:
        """A generator keyed by (seed, stream, keys) — the same
        order-independent determinism scheme as chaos draws."""
        return np.random.default_rng((self.seed, stream, *(int(k) for k in keys)))

    # ------------------------------------------------------------------
    def capped_attempts(
        self,
        rng: np.random.Generator,
        probability: float,
        chaos_cap: int,
        kind: str,
        key: Tuple[int, ...],
        stats: Optional["ResilienceStats"],
    ) -> int:
        """Draw one fault's retry count under the budget.

        Replays the chaos layer's retry loop with the cap lowered to the
        budget; when the cap binds *and* the next draw would still have
        retried, the denial surfaces as a (caught) typed
        :class:`RetryBudgetExhausted`.  With ``retry_budget >= chaos_cap``
        the draw sequence is identical to the unbudgeted loop.
        """
        cap = chaos_cap if self.retry_budget is None else min(chaos_cap, self.retry_budget)
        attempt = 0
        while attempt < cap and rng.random() < probability:
            attempt += 1
        if (
            self.retry_budget is not None
            and attempt == cap
            and cap < chaos_cap
            and rng.random() < probability
        ):
            try:
                raise RetryBudgetExhausted(kind, key, self.retry_budget)
            except RetryBudgetExhausted as exhausted:
                if stats is not None:
                    stats.record_denial(exhausted)
        if attempt and stats is not None and self.retry_budget is not None:
            stats.retries_spent += attempt
        return attempt

    def backoff_cost(self, rng: np.random.Generator, attempts: int) -> float:
        """Total backoff seconds for ``attempts`` consecutive retries."""
        total = 0.0
        for a in range(attempts):
            total += (
                self.backoff_base
                * self.backoff_multiplier**a
                * (1.0 + self.backoff_jitter * float(rng.random()))
            )
        return total


#: Named disciplines the CLI/scenario matrix selects by name.
RESILIENCE_POLICIES: Dict[str, ResiliencePolicy] = {
    policy.name: policy
    for policy in (
        ResiliencePolicy(name="none"),
        ResiliencePolicy(
            name="default",
            retry_budget=2,
            backoff_base=0.05,
            breaker_threshold=3,
            breaker_window=40.0,
            breaker_cooldown=30.0,
            deadline=15.0,
            degrade_tiers=DEGRADE_TIERS,
        ),
        ResiliencePolicy(
            name="strict",
            retry_budget=1,
            backoff_base=0.02,
            breaker_threshold=2,
            breaker_window=40.0,
            breaker_cooldown=60.0,
            deadline=5.0,
            degrade_tiers=DEGRADE_TIERS,
        ),
    )
}


def resilience_policy(
    name: str, seed: int = 0, deadline: Optional[float] = None
) -> ResiliencePolicy:
    """A preset policy by name, reseeded (and re-deadlined) for this run."""
    try:
        preset = RESILIENCE_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown resilience policy {name!r}; presets: "
            f"{sorted(RESILIENCE_POLICIES)}"
        ) from None
    policy = replace(preset, seed=seed)
    if deadline is not None:
        policy = replace(policy, deadline=float(deadline))
    return policy


def shard_resilience(policy: ResiliencePolicy, shard_id: int) -> ResiliencePolicy:
    """Per-shard reseeding of a cluster resilience policy.

    Mirrors :func:`~repro.pelican.chaos.shard_policy`: each shard's
    backoff jitter draws from a seed stably derived from
    ``(policy seed, shard-seed stream, shard id)``, so shards jitter
    independently while the cluster stays reproducible from one seed.
    """
    derived = int(
        np.random.default_rng((policy.seed, _STREAM_SHARD_SEED, shard_id)).integers(
            0, 2**31 - 1
        )
    )
    return replace(policy, seed=derived)


@dataclass
class ResilienceStats:
    """Everything the resilience layer did to one run (all deterministic).

    One instance is shared across a cluster's shards, so the overlay in
    the cluster signature needs no merging.  ``breaker_log`` records
    every breaker transition as ``(time, shard, from, to)`` in event
    order — the determinism tests compare it exactly.
    """

    retries_spent: int = 0
    retries_denied: int = 0
    backoff_seconds: float = 0.0
    shed_queries: int = 0
    degraded_stale: int = 0
    degraded_general: int = 0
    degraded_prior: int = 0
    #: Queries answered by the ladder because no shard was alive.
    full_outage_queries: int = 0
    #: Full-outage queries served on the downed home shard because no
    #: resilience ladder was configured (the legacy PR-4 hole).  Tracked
    #: even under the null policy so baselines can be penalized.
    unprotected_outage_queries: int = 0
    breaker_opens: int = 0
    #: Failover routing decisions redirected by an open breaker.
    breaker_redirects: int = 0
    breaker_log: List[Tuple[float, int, str, str]] = field(default_factory=list)
    #: Typed denials, ``(kind, *key)`` per exhausted budget, in order.
    denial_log: List[Tuple[Any, ...]] = field(default_factory=list)

    def record_denial(self, exhausted: RetryBudgetExhausted) -> None:
        self.retries_denied += 1
        self.denial_log.append((exhausted.kind, *exhausted.key))

    def count_degraded(self, tier: str, num: int) -> None:
        if tier == "stale":
            self.degraded_stale += num
        elif tier == "general":
            self.degraded_general += num
        elif tier == "prior":
            self.degraded_prior += num
        else:
            raise ValueError(f"unknown degradation tier {tier!r}")

    @property
    def degraded_queries(self) -> int:
        return self.degraded_stale + self.degraded_general + self.degraded_prior

    def signature(self) -> Dict[str, Any]:
        """Deterministic projection, merged into fleet/cluster signatures."""
        return {
            "retries_spent": self.retries_spent,
            "retries_denied": self.retries_denied,
            "backoff_seconds": self.backoff_seconds,
            "shed_queries": self.shed_queries,
            "degraded_stale": self.degraded_stale,
            "degraded_general": self.degraded_general,
            "degraded_prior": self.degraded_prior,
            "full_outage_queries": self.full_outage_queries,
            "unprotected_outage_queries": self.unprotected_outage_queries,
            "breaker_opens": self.breaker_opens,
            "breaker_redirects": self.breaker_redirects,
            "breaker_log": tuple(self.breaker_log),
            "denial_log": tuple(self.denial_log),
        }


@dataclass
class ShardBreaker:
    """One shard's closed/open/half-open circuit breaker.

    State moves on the simulated event clock only: ``breaker_threshold``
    distinct-tick failures inside the sliding ``breaker_window`` open
    the breaker; after ``breaker_cooldown`` it half-opens, and the next
    outcome (success/failure) closes or reopens it.  All transitions are
    appended to the shared :class:`ResilienceStats` log.
    """

    shard_id: int
    policy: ResiliencePolicy
    stats: ResilienceStats
    state: str = "closed"
    _failures: List[float] = field(default_factory=list)
    _opened_at: float = 0.0

    def allow(self, time: float) -> bool:
        """May this shard be tried at ``time``?  (Open → half-open on
        cooldown expiry; the half-open probe is allowed through.)"""
        if self.state == "open":
            if time >= self._opened_at + self.policy.breaker_cooldown:
                self._move(time, "half_open")
                return True
            return False
        return True

    def record_failure(self, time: float) -> None:
        if self.state == "open":
            return
        if self.state == "half_open":
            self._open(time)
            return
        if self._failures and self._failures[-1] == time:
            return  # one strike per clock tick
        self._failures.append(time)
        self._failures = [
            t for t in self._failures if t > time - self.policy.breaker_window
        ]
        threshold = self.policy.breaker_threshold
        if threshold is not None and len(self._failures) >= threshold:
            self._open(time)

    def record_success(self, time: float) -> None:
        if self.state == "half_open":
            self._failures.clear()
            self._move(time, "closed")

    def _open(self, time: float) -> None:
        self._failures.clear()
        self._opened_at = time
        self.stats.breaker_opens += 1
        self._move(time, "open")

    def _move(self, time: float, to: str) -> None:
        self.stats.breaker_log.append((float(time), self.shard_id, self.state, to))
        self.state = to


class DegradationLadder:
    """The full-outage fallback chain: stale copy → general model → prior.

    Used only when a cloud query has *no* alive shard (every failover
    candidate and the home shard down or breaker-open).  The tiers:

    * ``stale`` — a personal-model copy still resident in some shard's
      live cache (read without accounting or LRU effects via
      :meth:`~repro.pelican.registry.ModelRegistry.peek`), modeling a
      front-door cache of recently served models.  The durable store is
      unreachable in a full outage, so only already-hot copies qualify.
    * ``general`` — the published general model, rebuilt once per
      cluster from its blob and reused.
    * ``prior`` — a per-user order-2 Markov chain fit on the user's own
      onboarding data (``models/markov.py``), cached per user.

    Resolution is pure lookup + deterministic rebuilds, so degraded
    answers are bit-deterministic like everything else.
    """

    def __init__(self, policy: ResiliencePolicy, spec: FeatureSpec, seed: int) -> None:
        self.policy = policy
        self.spec = spec
        self.seed = seed
        self._general: Optional[NextLocationModel] = None
        self._priors: Dict[int, MarkovChainModel] = {}

    def resolve(
        self,
        user_id: int,
        stale_lookup: Callable[[int], Optional[NextLocationModel]],
        general_blob: Optional[bytes],
        dataset: Optional[SequenceDataset],
    ) -> Tuple[Optional[Any], Optional[str]]:
        """The first tier that can answer, as ``(model, tier_name)``.

        ``(None, None)`` means every configured tier came up empty — the
        caller sheds the query (counted, never silently dropped).
        """
        for tier in self.policy.degrade_tiers:
            if tier == "stale":
                model = stale_lookup(user_id)
                if model is not None:
                    return model, "stale"
            elif tier == "general":
                if general_blob is not None:
                    return self._general_model(general_blob), "general"
            elif tier == "prior":
                if dataset is not None and dataset.windows:
                    return self._prior(user_id, dataset), "prior"
        return None, None

    def _general_model(self, blob: bytes) -> NextLocationModel:
        if self._general is None:
            self._general = rebuild_general_model(
                blob, np.random.default_rng(self.seed)
            )
        return self._general

    def _prior(self, user_id: int, dataset: SequenceDataset) -> MarkovChainModel:
        model = self._priors.get(user_id)
        if model is None:
            model = MarkovChainModel(self.spec.num_locations, order=2).fit(dataset)
            self._priors[user_id] = model
        return model


# ----------------------------------------------------------------------
# Deadlines / availability
# ----------------------------------------------------------------------
def shed_late_queries(
    original: FleetSchedule,
    perturbed: FleetSchedule,
    policy: ResiliencePolicy,
    stats: ResilienceStats,
) -> FleetSchedule:
    """Shed perturbed queries that already blew their deadline.

    A query deferred (offline window, dragged behind a straggler) past
    ``policy.deadline`` simulated seconds after its scheduled time
    cannot be answered in time, so it is removed from the schedule up
    front and counted — never served silently late.  Probes (audit
    answers are timing-exempt, DESIGN.md §10) and lifecycle events pass
    through untouched.  Returns ``perturbed`` itself when nothing sheds.
    """
    if policy.deadline is None:
        return perturbed
    scheduled = {event.seq: event.time for event in original.ordered()}
    kept = FleetSchedule()
    shed = 0
    for event in perturbed.ordered():
        if (
            event.kind is EventKind.QUERY
            and not isinstance(event.payload, ProbePayload)
            and event.time - scheduled.get(event.seq, event.time) > policy.deadline
        ):
            shed += 1
            continue
        kept.add(event)
    if not shed:
        return perturbed
    stats.shed_queries += shed
    return kept


@dataclass(frozen=True)
class AvailabilityReport:
    """Availability/SLO accounting for one run against one deadline.

    ``penalized`` subtracts answers that only happened through the
    unprotected serve-on-downed-home hole — a no-resilience baseline
    should not get availability credit for them.
    """

    total: int
    answered: int
    on_time: int
    shed: int
    penalized: int
    deadline: float

    @property
    def availability(self) -> float:
        """Fraction of scheduled queries answered at all (degraded tiers
        included, unprotected answers penalized)."""
        if not self.total:
            return 1.0
        return max(0, self.answered - self.penalized) / self.total

    @property
    def slo_attainment(self) -> float:
        """Fraction answered within the deadline (same penalty)."""
        if not self.total:
            return 1.0
        return max(0, self.on_time - self.penalized) / self.total


def measure_availability(
    schedule: FleetSchedule,
    responses: Sequence[QueryResponse],
    deadline: float,
    penalized: int = 0,
) -> AvailabilityReport:
    """Score a run's responses against the *original* schedule.

    Response times carry the perturbed (effective) serve time, so
    latency is ``response.time - scheduled time``; a shed query simply
    has no response.  Probe events are excluded from the denominator.
    """
    scheduled = {
        event.seq: event.time
        for event in schedule.ordered()
        if event.kind is EventKind.QUERY
        and not isinstance(event.payload, ProbePayload)
    }
    answered = on_time = 0
    for response in responses:
        start = scheduled.get(response.seq)
        if start is None:
            continue
        answered += 1
        if response.time - start <= deadline:
            on_time += 1
    return AvailabilityReport(
        total=len(scheduled),
        answered=answered,
        on_time=on_time,
        shed=len(scheduled) - answered,
        penalized=min(penalized, answered),
        deadline=float(deadline),
    )
