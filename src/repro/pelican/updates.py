"""Phase 4 — model updates (paper §V-A4).

As new personal data accumulates, the transfer-learning process is
re-invoked with the personal model's current parameters as the starting
point, then the refreshed model is redeployed.  General-model refreshes are
supported too, but they force a full re-personalization, which is why the
paper schedules them infrequently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import SequenceDataset
from repro.models.architecture import NextLocationModel
from repro.models.personalize import PersonalizationConfig
from repro.nn import Adam, fit
from repro.nn.profiler import flop_counter
from repro.pelican.cloud import ResourceReport


@dataclass
class UpdateResult:
    """Outcome of one incremental personal-model update."""

    model: NextLocationModel
    report: ResourceReport
    epochs_run: int


def update_personal_model(
    personal_model: NextLocationModel,
    new_dataset: SequenceDataset,
    config: PersonalizationConfig,
    rng: np.random.Generator,
) -> UpdateResult:
    """Incrementally refresh a personal model with newly collected data.

    Parameters are initialized from the deployed personal model (no
    retraining from scratch); only the parameters that were trainable
    during the original personalization (``requires_grad=True``) are
    updated, so a TL-FE model keeps its general representation frozen.
    """
    updated = _clone_preserving_freeze(personal_model, rng)
    X, y = new_dataset.encode()
    trainable = updated.trainable_parameters()
    if not trainable:
        raise ValueError("personal model has no trainable parameters to update")
    optimizer = Adam(trainable, lr=config.learning_rate, weight_decay=config.weight_decay)
    with flop_counter() as counter:
        result = fit(
            updated,
            X,
            y,
            epochs=config.epochs,
            batch_size=config.batch_size,
            optimizer=optimizer,
            rng=rng,
            grad_clip=config.grad_clip,
            patience=config.patience,
        )
    updated.eval()
    return UpdateResult(
        model=updated,
        report=ResourceReport.from_counter(counter),
        epochs_run=result.epochs_run,
    )


def _clone_preserving_freeze(
    model: NextLocationModel, rng: np.random.Generator
) -> NextLocationModel:
    """Deep-copy a model, keeping each parameter's requires_grad flag."""
    clone = model.copy(rng)
    frozen_flags = {name: param.requires_grad for name, param in model.named_parameters()}
    for name, param in clone.named_parameters():
        param.requires_grad = frozen_flags[name]
    return clone
