"""The deterministic event clock (DESIGN.md §7), shard-agnostic.

This module owns the workload description (:class:`FleetSchedule` and its
event/request/response types) and the replay loop
(:func:`replay_schedule`) that both serving layers share:
:class:`~repro.pelican.fleet.Fleet` runs it against one cloud,
:class:`~repro.pelican.cluster.Cluster` against N shards.  The semantics
are identical in both: events execute in ``(time, seq)`` order, a maximal
run of consecutive QUERY events sharing one clock tick is *concurrent*
(one serving batch), and any other event flushes the pending batch at its
sequence position.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.data.dataset import SequenceDataset
from repro.data.features import SessionFeatures


class EventKind(str, enum.Enum):
    """What a fleet event asks the system to do."""

    ONBOARD = "onboard"
    UPDATE = "update"
    QUERY = "query"


@dataclass(frozen=True)
class QueryRequest:
    """One device asking for its user's next-location prediction.

    ``history`` is normally a window of session features; the privacy
    audit layer (DESIGN.md §10) instead passes a
    :class:`~repro.pelican.dispatch.ProbePayload` carrying a whole batch
    of adversarial black-box probes — same event, same clock, same
    dispatcher, different kernel.
    """

    user_id: int
    history: Any  # Tuple[SessionFeatures, ...] or a ProbePayload
    k: int = 3


@dataclass(frozen=True)
class QueryResponse:
    """The served answer, tagged with the originating event.

    Prediction queries fill ``top_k``; probe queries (DESIGN.md §10)
    leave it empty and fill ``confidences`` — the observed-output
    confidence per probe, which is what the honest-but-curious provider
    gets to see.  ``degraded`` names the resilience tier that answered
    (``"stale"`` / ``"general"`` / ``"prior"``, DESIGN.md §11) when the
    personal model was unreachable; ``None`` marks a fresh answer.
    """

    user_id: int
    time: float
    seq: int
    top_k: Tuple[Tuple[int, float], ...]
    confidences: Optional[Tuple[float, ...]] = None
    degraded: Optional[str] = None


@dataclass(frozen=True)
class FleetEvent:
    """One scheduled action.  ``seq`` breaks same-time ties (DESIGN.md §7)."""

    time: float
    seq: int
    kind: EventKind
    user_id: int
    payload: Any = None
    options: Tuple[Tuple[str, Any], ...] = ()


class FleetSchedule:
    """A deterministic workload: events replayed in ``(time, seq)`` order.

    ``seq`` is assigned at build time, so two schedules constructed by the
    same code are identical — including how same-time ties resolve.
    Consecutive QUERY events sharing a clock tick are served as one batch;
    an ONBOARD/UPDATE at the same tick splits the batch at its position.
    """

    def __init__(self) -> None:
        self._events: List[FleetEvent] = []
        self._seqs: set = set()
        self._next_seq = 0

    def __len__(self) -> int:
        return len(self._events)

    def add(self, event: FleetEvent) -> "FleetSchedule":
        """Insert a pre-built event, enforcing ``seq`` uniqueness.

        Same-time ties are broken *only* by ``seq``, so two events sharing
        one would replay in dict/list-iteration order — silently, and
        differently after an innocent refactor.  The chaos layer
        (:func:`~repro.pelican.chaos.perturb_schedule`) rebuilds schedules
        through this entry point with the original sequence numbers
        preserved.
        """
        if event.seq in self._seqs:
            raise ValueError(
                f"duplicate event seq {event.seq}: same-time ordering is defined "
                "by seq alone, so every event in a schedule needs a unique one"
            )
        self._seqs.add(event.seq)
        self._next_seq = max(self._next_seq, event.seq + 1)
        self._events.append(event)
        return self

    def onboard(
        self, time: float, user_id: int, dataset: SequenceDataset, **options: Any
    ) -> "FleetSchedule":
        """Schedule a device onboarding (options mirror ``Fleet.onboard``)."""
        self._append(EventKind.ONBOARD, time, user_id, dataset, options)
        return self

    def update(
        self, time: float, user_id: int, dataset: SequenceDataset
    ) -> "FleetSchedule":
        """Schedule an incremental personal-model update."""
        self._append(EventKind.UPDATE, time, user_id, dataset, {})
        return self

    def query(
        self,
        time: float,
        user_id: int,
        history: Sequence[SessionFeatures],
        k: int = 3,
    ) -> "FleetSchedule":
        """Schedule one service query."""
        self._append(EventKind.QUERY, time, user_id, tuple(history), {"k": k})
        return self

    def probe(self, time: float, user_id: int, payload: Any) -> "FleetSchedule":
        """Schedule one audit probe batch (DESIGN.md §10).

        ``payload`` is a :class:`~repro.pelican.dispatch.ProbePayload`
        carrying many black-box probes against ``user_id``'s model.  The
        event is an ordinary QUERY on the clock — it coalesces, defers
        under chaos, and routes across shards exactly like prediction
        traffic — with ``k = 0`` marking full-confidence release (the
        provider observes every confidence vector it serves, so no top-k
        truncation applies to its own probes).
        """
        self._append(EventKind.QUERY, time, user_id, payload, {"k": 0})
        return self

    @property
    def next_seq(self) -> int:
        """The sequence number the next builder call will assign."""
        return self._next_seq

    def _append(
        self,
        kind: EventKind,
        time: float,
        user_id: int,
        payload: Any,
        options: Dict[str, Any],
    ) -> None:
        self.add(
            FleetEvent(
                time=float(time),
                # Monotone counter, not len(): builder calls interleave
                # safely with pre-built events inserted through add().
                seq=self._next_seq,
                kind=kind,
                user_id=user_id,
                payload=payload,
                options=tuple(sorted(options.items())),
            )
        )

    def ordered(self) -> List[FleetEvent]:
        """Events in replay order."""
        return sorted(self._events, key=lambda e: (e.time, e.seq))


def replay_schedule(
    schedule: FleetSchedule,
    serve: Callable[[float, List[QueryRequest]], List[QueryResponse]],
    onboard: Callable[[FleetEvent], Any],
    update: Callable[[FleetEvent], Any],
) -> List[QueryResponse]:
    """Replay a schedule on the simulated event clock.

    ``serve`` receives ``(tick_time, requests)`` for each coalesced batch
    (all requests share the tick by construction) and must return one
    response per request in order; ``onboard``/``update`` receive their
    raw events.  Responses come back in event order, re-tagged with each
    originating event's ``(time, seq)``.

    This is the single definition of the clock semantics —
    :meth:`Fleet.run <repro.pelican.fleet.Fleet.run>` and
    :meth:`Cluster.run <repro.pelican.cluster.Cluster.run>` both replay
    through it, which is what makes a K-shard run comparable tick-for-tick
    with the single-cloud run on the same schedule.
    """
    responses: List[QueryResponse] = []
    pending: List[FleetEvent] = []

    def flush() -> None:
        if not pending:
            return
        batch = [
            QueryRequest(
                user_id=e.user_id,
                history=e.payload,
                k=dict(e.options).get("k", 3),
            )
            for e in pending
        ]
        for event, response in zip(pending, serve(pending[0].time, batch)):
            if response is None:
                # A shed slot (resilience load shedding, DESIGN.md §11):
                # the query was counted, not answered.
                continue
            responses.append(
                QueryResponse(
                    user_id=response.user_id,
                    time=event.time,
                    seq=event.seq,
                    top_k=response.top_k,
                    confidences=response.confidences,
                    degraded=response.degraded,
                )
            )
        pending.clear()

    for event in schedule.ordered():
        if event.kind is EventKind.QUERY:
            if pending and pending[-1].time != event.time:
                flush()
            pending.append(event)
            continue
        flush()
        if event.kind is EventKind.ONBOARD:
            onboard(event)
        elif event.kind is EventKind.UPDATE:
            update(event)
    flush()
    return responses
