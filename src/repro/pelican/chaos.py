"""Fault injection over the fleet serving layer (DESIGN.md §8).

Real fleets see device churn, lossy links, straggler updates, and a cloud
whose checkpoint store occasionally times out.  This module replays those
conditions on top of the deterministic event clock, without giving up the
properties PR 2 established:

* **Bit determinism.**  Every fault decision is drawn from an RNG keyed by
  ``(policy seed, stream, stable event identifiers)`` — never by wall
  clock or call order across components — so the same policy, seed, and
  schedule reproduce the identical faulty run: same responses, same
  :meth:`~repro.pelican.fleet.FleetReport.signature`, same chaos counters.
* **Cost-only faults.**  Faults change *when* events execute and *what*
  they cost (retried packets, re-fetched checkpoints), never the answers:
  a deferred query is served by the same model state it would have seen at
  its effective time, and every retry flows through the existing
  accounting boundaries (the channel totals, the registry's load seconds),
  so clean and faulty runs are signature-comparable field by field.
* **Null identity.**  A :class:`ChaosPolicy` with all probabilities at
  zero is byte-for-byte indistinguishable from running without the chaos
  layer — the fuzz harness (``tests/pelican/test_fleet_fuzz.py``) holds
  this invariant over generated schedules.

What is simulated vs real: packet loss is modeled as per-transfer retry
*cost* (extra round trips and resent bytes), not as data corruption;
offline windows defer a device's events to the window's end (its event
queue is serial, so ordering within a user is preserved); cold-load
failures re-charge the storage fetch.  Nothing is ever dropped — a
production system would eventually serve these requests, and keeping them
makes accuracy comparable across chaos policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.pelican.accounting import overlay_signature
from repro.pelican.device import CLOUD_SERVER, LOW_END_PHONE, DeviceProfile
from repro.pelican.fleet import (
    EventKind,
    Fleet,
    FleetEvent,
    FleetSchedule,
    QueryResponse,
)
from repro.pelican.registry import ModelRegistry
from repro.pelican.storage import BlobStore
from repro.pelican.resilience import (
    _STREAM_COLD_LOAD_BACKOFF,
    _STREAM_TRANSFER_BACKOFF,
    ResiliencePolicy,
    ResilienceStats,
    shed_late_queries,
)
from repro.pelican.system import Pelican
from repro.pelican.transport import Channel

# Stable stream ids for per-decision RNG derivation.  Never renumber:
# committed golden runs depend on them.
_STREAM_TRANSFER = 1
_STREAM_COLD_LOAD = 2
_STREAM_OFFLINE = 3
_STREAM_STRAGGLER = 4
_STREAM_SHARD_OUTAGE = 5
_STREAM_SHARD_SEED = 6


@dataclass(frozen=True)
class ChaosPolicy:
    """Seeded fault-injection knobs for one hostile condition.

    All probabilities default to zero — the null policy injects nothing
    and is exactly equivalent to running without the chaos layer.
    """

    name: str = "none"
    seed: int = 0
    #: Per-attempt chance a transfer fails and must be resent (costing one
    #: extra round trip plus the payload bytes), up to ``max_retries``.
    drop_probability: float = 0.0
    max_retries: int = 3
    #: Expected offline windows per device over the schedule horizon; any
    #: event falling inside a window is deferred to the window's end.
    offline_window_rate: float = 0.0
    offline_window_duration: float = 10.0
    #: Chance an UPDATE event arrives late (a straggler device).
    straggler_probability: float = 0.0
    straggler_delay: float = 20.0
    #: Per-attempt chance a registry cold load fails and re-fetches, up to
    #: ``max_cold_load_attempts`` total attempts.
    cold_load_failure_probability: float = 0.0
    max_cold_load_attempts: int = 3
    #: Expected outage windows per cloud *shard* over the schedule horizon
    #: (cluster-level, DESIGN.md §9): queries homed on a downed shard
    #: re-route to a failover shard after a durable-store cold load, while
    #: onboard/update events defer to the window's end.  Ignored by the
    #: single-cloud :class:`ChaosFleet`, which has nowhere to fail over.
    shard_outage_rate: float = 0.0
    shard_outage_duration: float = 25.0

    @property
    def is_null(self) -> bool:
        """True when no fault can ever fire under this policy."""
        return (
            self.drop_probability <= 0.0
            and self.offline_window_rate <= 0.0
            and self.straggler_probability <= 0.0
            and self.cold_load_failure_probability <= 0.0
            and self.shard_outage_rate <= 0.0
        )

    def rng(self, stream: int, *keys: int) -> np.random.Generator:
        """A generator keyed by (seed, stream, keys): order-independent
        determinism — the same decision point always sees the same draws,
        no matter what other chaos components did before it."""
        return np.random.default_rng((self.seed, stream, *(int(k) for k in keys)))


#: Named hostile conditions the scenario matrix crosses with regimes.
CHAOS_POLICIES: Dict[str, ChaosPolicy] = {
    policy.name: policy
    for policy in (
        ChaosPolicy(name="none"),
        ChaosPolicy(name="lossy_network", drop_probability=0.25, max_retries=4),
        ChaosPolicy(
            name="flaky_cloud",
            cold_load_failure_probability=0.35,
            max_cold_load_attempts=3,
            straggler_probability=0.5,
            straggler_delay=15.0,
        ),
        ChaosPolicy(
            name="churn",
            offline_window_rate=2.0,
            offline_window_duration=12.0,
            straggler_probability=0.3,
            straggler_delay=20.0,
        ),
        ChaosPolicy(
            name="shard_outage",
            shard_outage_rate=1.5,
            shard_outage_duration=25.0,
        ),
        ChaosPolicy(
            name="hostile",
            drop_probability=0.25,
            max_retries=4,
            offline_window_rate=2.0,
            offline_window_duration=12.0,
            straggler_probability=0.5,
            straggler_delay=20.0,
            cold_load_failure_probability=0.35,
            max_cold_load_attempts=3,
            shard_outage_rate=1.0,
            shard_outage_duration=20.0,
        ),
        # A long total outage over a lossy network: outage windows are
        # longer than typical schedule horizons, so with a couple of
        # shards the whole cluster is regularly dark at once — the
        # condition the resilience layer's degradation ladder exists for
        # (DESIGN.md §11).
        ChaosPolicy(
            name="blackout",
            drop_probability=0.3,
            max_retries=4,
            shard_outage_rate=2.0,
            shard_outage_duration=120.0,
        ),
    )
}


def chaos_policy(name: str, seed: int = 0) -> ChaosPolicy:
    """A preset policy by name, reseeded for this run."""
    try:
        preset = CHAOS_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown chaos policy {name!r}; presets: {sorted(CHAOS_POLICIES)}"
        ) from None
    return replace(preset, seed=seed)


@dataclass
class ChaosStats:
    """Everything the chaos layer did to one run (all deterministic)."""

    transfer_retries: int = 0
    retry_bytes: int = 0
    retry_seconds: float = 0.0
    cold_load_failures: int = 0
    cold_load_retry_seconds: float = 0.0
    offline_windows: int = 0
    deferred_events: int = 0
    straggler_updates: int = 0
    shard_outage_windows: int = 0
    failover_queries: int = 0

    def signature(self) -> Dict[str, Any]:
        """Deterministic projection, merged into the fleet signature."""
        return {
            "transfer_retries": self.transfer_retries,
            "retry_bytes": self.retry_bytes,
            "retry_seconds": self.retry_seconds,
            "cold_load_failures": self.cold_load_failures,
            "cold_load_retry_seconds": self.cold_load_retry_seconds,
            "offline_windows": self.offline_windows,
            "deferred_events": self.deferred_events,
            "straggler_updates": self.straggler_updates,
            "shard_outage_windows": self.shard_outage_windows,
            "failover_queries": self.failover_queries,
        }

    def merged(self, *others: "ChaosStats") -> Dict[str, Any]:
        """Field-wise sum of this and ``others``' signatures.

        The cluster layer aggregates its own counters with every shard's
        through this — all ints/floats, so plain addition.
        """
        total = dict(self.signature())
        for other in others:
            for key, value in other.signature().items():
                total[key] += value
        return total


@dataclass
class FaultyChannel(Channel):
    """A :class:`Channel` whose transfers may need packet-level retries.

    Each of a record's ``count`` logical transfers independently draws its
    retry count (keyed by a monotone per-channel transfer index), and every
    retry resends the payload and pays one extra round trip — so lossy
    links inflate both byte and second totals through the *existing*
    accounting, keeping faulty runs signature-comparable with clean ones.
    With ``drop_probability`` zero the behaviour (and the books) are
    identical to the base channel.
    """

    policy: ChaosPolicy = field(default_factory=ChaosPolicy)
    chaos: ChaosStats = field(default_factory=ChaosStats)
    #: Optional fault-handling policy (DESIGN.md §11): caps each
    #: transfer's retries at the budget and charges seeded-jitter
    #: exponential backoff into the resilience book.  ``None`` (or a
    #: null policy) reproduces the unbudgeted chaos loop draw-for-draw.
    resilience: Optional[ResiliencePolicy] = None
    resilience_stats: Optional[ResilienceStats] = None
    _draws: int = 0

    @classmethod
    def wrap(
        cls,
        channel: Channel,
        policy: ChaosPolicy,
        chaos: ChaosStats,
        resilience: Optional[ResiliencePolicy] = None,
        resilience_stats: Optional[ResilienceStats] = None,
    ) -> "FaultyChannel":
        """Take over an existing channel, preserving its recorded traffic."""
        faulty = cls(
            bandwidth_mbps=channel.bandwidth_mbps,
            rtt_ms=channel.rtt_ms,
            policy=policy,
            chaos=chaos,
            resilience=resilience,
            resilience_stats=resilience_stats,
        )
        faulty.records = channel.records
        faulty._bytes = dict(channel._bytes)
        faulty._seconds = channel.total_simulated_seconds
        faulty._count = channel.transfer_count
        return faulty

    @property
    def _budgeted(self) -> bool:
        return (
            self.resilience is not None
            and not self.resilience.is_null
            and self.resilience.retry_budget is not None
        )

    def _transfer(
        self, direction: str, num_bytes: int, label: str, count: int = 1
    ) -> float:
        probability = self.policy.drop_probability
        if probability <= 0.0:
            return super()._transfer(direction, num_bytes, label, count)
        budgeted = self._budgeted
        bytes_each = num_bytes // count
        retries = 0
        for i in range(count):
            rng = self.policy.rng(_STREAM_TRANSFER, self._draws + i)
            if budgeted:
                attempt = self.resilience.capped_attempts(
                    rng,
                    probability,
                    self.policy.max_retries,
                    "transfer",
                    (self._draws + i,),
                    self.resilience_stats,
                )
                if attempt:
                    jitter = self.resilience.rng(
                        _STREAM_TRANSFER_BACKOFF, self._draws + i
                    )
                    self.resilience_stats.backoff_seconds += (
                        self.resilience.backoff_cost(jitter, attempt)
                    )
            else:
                attempt = 0
                while attempt < self.policy.max_retries and rng.random() < probability:
                    attempt += 1
            retries += attempt
        self._draws += count
        if not retries:
            return super()._transfer(direction, num_bytes, label, count)
        extra_bytes = retries * bytes_each
        seconds = super()._transfer(
            direction, num_bytes + extra_bytes, label, count + retries
        )
        self.chaos.transfer_retries += retries
        self.chaos.retry_bytes += extra_bytes
        self.chaos.retry_seconds += self._cost_seconds(extra_bytes, retries)
        return seconds

    # ------------------------------------------------------------------
    def checkpoint(self) -> tuple:
        """Also snapshot the draw index and retry counters — chaos *and*
        resilience — so parity re-runs (``serve_looped``) replay the same
        fault sequence and leave every book untouched."""
        stats = self.resilience_stats
        return (
            *super().checkpoint(),
            self._draws,
            self.chaos.transfer_retries,
            self.chaos.retry_bytes,
            self.chaos.retry_seconds,
            0 if stats is None else stats.retries_spent,
            0 if stats is None else stats.retries_denied,
            0.0 if stats is None else stats.backoff_seconds,
            0 if stats is None else len(stats.denial_log),
        )

    def rollback(self, state: tuple) -> None:
        super().rollback(state[:4])
        (
            self._draws,
            self.chaos.transfer_retries,
            self.chaos.retry_bytes,
            self.chaos.retry_seconds,
        ) = state[4:8]
        stats = self.resilience_stats
        if stats is not None:
            (
                stats.retries_spent,
                stats.retries_denied,
                stats.backoff_seconds,
                denials,
            ) = state[8:]
            del stats.denial_log[denials:]


class FlakyModelRegistry(ModelRegistry):
    """A :class:`ModelRegistry` whose checkpoint store sometimes fails.

    A cold load may need up to ``max_cold_load_attempts`` fetches; every
    failed attempt re-charges the storage fetch seconds (the rebuild
    itself still happens once, bit-identically — failures cost time,
    never answers).  Draws are keyed by ``(user, fetch index)``.
    """

    def __init__(
        self,
        capacity: Optional[int],
        seed: int,
        policy: ChaosPolicy,
        chaos: ChaosStats,
        storage_mbps: float = 400.0,
        store: Optional[Union[Dict[int, bytes], BlobStore]] = None,
        resilience: Optional[ResiliencePolicy] = None,
        resilience_stats: Optional[ResilienceStats] = None,
    ) -> None:
        super().__init__(
            capacity=capacity, seed=seed, storage_mbps=storage_mbps, store=store
        )
        self.policy = policy
        self.chaos = chaos
        self.resilience = resilience
        self.resilience_stats = resilience_stats
        self._fetches = 0

    def _fetch_seconds(self, user_id: int, blob: bytes) -> float:
        base = super()._fetch_seconds(user_id, blob)
        self._fetches += 1
        probability = self.policy.cold_load_failure_probability
        if probability <= 0.0:
            return base
        rng = self.policy.rng(_STREAM_COLD_LOAD, user_id, self._fetches)
        chaos_cap = self.policy.max_cold_load_attempts - 1
        res = self.resilience
        if res is not None and not res.is_null and res.retry_budget is not None:
            failures = res.capped_attempts(
                rng,
                probability,
                chaos_cap,
                "cold_load",
                (user_id, self._fetches),
                self.resilience_stats,
            )
            if failures:
                jitter = res.rng(_STREAM_COLD_LOAD_BACKOFF, user_id, self._fetches)
                self.resilience_stats.backoff_seconds += res.backoff_cost(
                    jitter, failures
                )
        else:
            failures = 0
            while failures < chaos_cap and rng.random() < probability:
                failures += 1
        if failures:
            self.chaos.cold_load_failures += failures
            self.chaos.cold_load_retry_seconds += failures * base
        return (1 + failures) * base


class ChaosFleet(Fleet):
    """A :class:`Fleet` running under a fault-injection policy.

    Swaps the shared channel for a :class:`FaultyChannel` (re-pointing any
    already-deployed endpoints), substitutes a :class:`FlakyModelRegistry`,
    and perturbs every schedule through :meth:`perturb` before replaying it
    on the base event clock.  Under the null policy all three are exact
    identities, so ``ChaosFleet(pelican, ChaosPolicy())`` behaves
    byte-for-byte like ``Fleet(pelican)``.

    Like the base :class:`Fleet`, construction **takes ownership** of
    ``pelican`` — and more invasively: its channel (and every deployed
    endpoint's channel reference) is permanently rewired to the faulty
    one.  To compare policies over one expensively-trained Pelican, hand
    each fleet its own ``copy.deepcopy`` (what
    :func:`repro.eval.scenarios.run_scenario_suite` and the fuzz harness
    do) instead of re-wrapping the same instance.
    """

    def __init__(
        self,
        pelican: Pelican,
        policy: ChaosPolicy,
        registry_capacity: Optional[int] = 64,
        cloud_profile: DeviceProfile = CLOUD_SERVER,
        device_profile: DeviceProfile = LOW_END_PHONE,
        registry_store: Optional[Union[Dict[int, bytes], BlobStore]] = None,
        resilience: Optional[ResiliencePolicy] = None,
        resilience_stats: Optional[ResilienceStats] = None,
        stacked: bool = False,
    ) -> None:
        self.policy = policy
        self.chaos = ChaosStats()
        # Set before super().__init__ — both the channel wrap and the
        # registry factory below consume them.
        self.resilience = resilience
        self.resilience_stats = (
            resilience_stats if resilience_stats is not None else ResilienceStats()
        )
        faulty = FaultyChannel.wrap(
            pelican.channel,
            policy,
            self.chaos,
            resilience=resilience,
            resilience_stats=self.resilience_stats,
        )
        pelican.channel = faulty
        for user in pelican.users.values():
            if user.endpoint.channel is not None:
                user.endpoint.channel = faulty
        super().__init__(
            pelican,
            registry_capacity=registry_capacity,
            cloud_profile=cloud_profile,
            device_profile=device_profile,
            registry_store=registry_store,
            resilience=resilience,
            resilience_stats=self.resilience_stats,
            stacked=stacked,
        )

    def _make_registry(self, capacity: Optional[int], seed: int) -> ModelRegistry:
        return FlakyModelRegistry(
            capacity=capacity,
            seed=seed,
            policy=self.policy,
            chaos=self.chaos,
            store=self._registry_store,
            resilience=self.resilience,
            resilience_stats=self.resilience_stats,
        )

    # ------------------------------------------------------------------
    def signature(self) -> Dict[str, Any]:
        """Fleet signature plus the chaos counters (all deterministic).

        A non-null resilience policy additionally joins its
        ``resilience_*`` overlay; under the null policy the key set is
        exactly the legacy one, which the golden tests pin.
        """
        signature = overlay_signature(
            self.report.signature(), "chaos_", self.chaos.signature()
        )
        if self.resilience is not None and not self.resilience.is_null:
            signature = overlay_signature(
                signature, "resilience_", self.resilience_stats.signature()
            )
        return signature

    def run(self, schedule: FleetSchedule) -> List[QueryResponse]:
        perturbed = self.perturb(schedule)
        if self.resilience is not None and not self.resilience.is_null:
            perturbed = shed_late_queries(
                schedule, perturbed, self.resilience, self.resilience_stats
            )
        return super().run(perturbed)

    def perturb(self, schedule: FleetSchedule) -> FleetSchedule:
        """Apply offline windows and straggler delays to a schedule.

        Delegates to the shard-agnostic :func:`perturb_schedule`; the
        cluster layer perturbs through the same function (plus its
        shard-outage deferrals), so per-user fault draws are identical
        for the same policy, seed, and schedule on either topology.
        """
        return perturb_schedule(schedule, self.policy, self.chaos)


def perturb_schedule(
    schedule: FleetSchedule,
    policy: ChaosPolicy,
    chaos: ChaosStats,
    outage_defer: Optional[Callable[[FleetEvent, float], float]] = None,
) -> FleetSchedule:
    """Apply offline windows and straggler delays to a schedule.

    Produces a new schedule with the original sequence numbers, so
    same-tick ties still resolve identically.  Each device's events
    stay serially ordered (an offline device's queue drains in order
    when it reconnects); deferred events landing on one tick coalesce
    into the same serving batch, exactly like a reconnect burst.

    ``outage_defer`` is the cluster hook: called after the per-user
    faults with ``(event, effective_time)``, it may push the event later
    still (shard-outage deferral of onboards/updates, DESIGN.md §9).
    The per-user monotone pass below then drags that user's subsequent
    events along, so serial order survives every composition of faults.
    """
    events = schedule.ordered()
    if not events or (policy.is_null and outage_defer is None):
        return schedule
    horizon = (events[0].time, events[-1].time)
    windows = sample_offline_windows(events, horizon, policy, chaos)
    perturbed = FleetSchedule()
    # Per-user last effective (time, seq): a device's event queue is
    # serial, so nothing may overtake an earlier deferred event.
    last: Dict[int, Tuple[float, int]] = {}
    for event in events:
        time = event.time
        if (
            event.kind is EventKind.UPDATE
            and policy.straggler_probability > 0.0
            and policy.rng(_STREAM_STRAGGLER, event.seq).random()
            < policy.straggler_probability
        ):
            time += policy.straggler_delay
            chaos.straggler_updates += 1
        for start, end in windows.get(event.user_id, ()):
            if start <= time < end:
                time = end
        if outage_defer is not None:
            time = outage_defer(event, time)
        previous = last.get(event.user_id)
        if previous is not None:
            prev_time, prev_seq = previous
            if time < prev_time:
                time = prev_time
            if time == prev_time and event.seq < prev_seq:
                # Replay order is (time, seq); an equal-time event with
                # a smaller seq would overtake — nudge it just after.
                time = float(np.nextafter(prev_time, np.inf))
        last[event.user_id] = (time, event.seq)
        if time != event.time:
            chaos.deferred_events += 1
        perturbed.add(
            FleetEvent(
                time=time,
                seq=event.seq,
                kind=event.kind,
                user_id=event.user_id,
                payload=event.payload,
                options=event.options,
            )
        )
    return perturbed


def sample_offline_windows(
    events: List[FleetEvent],
    horizon: Tuple[float, float],
    policy: ChaosPolicy,
    chaos: ChaosStats,
) -> Dict[int, List[Tuple[float, float]]]:
    """Sample each device's offline windows over the schedule horizon."""
    if policy.offline_window_rate <= 0.0:
        return {}
    windows: Dict[int, List[Tuple[float, float]]] = {}
    for user_id in sorted({event.user_id for event in events}):
        rng = policy.rng(_STREAM_OFFLINE, user_id)
        n = int(rng.poisson(policy.offline_window_rate))
        if not n:
            continue
        starts = np.sort(rng.uniform(horizon[0], horizon[1], size=n))
        windows[user_id] = [
            (float(s), float(s) + policy.offline_window_duration) for s in starts
        ]
        chaos.offline_windows += n
    return windows


def sample_shard_outages(
    policy: ChaosPolicy,
    num_shards: int,
    horizon: Tuple[float, float],
    chaos: ChaosStats,
) -> Dict[int, List[Tuple[float, float]]]:
    """Sample each cloud shard's outage windows over the schedule horizon.

    Keyed by ``(policy seed, outage stream, shard id)`` — independent of
    every other fault stream and of the user population, so adding chaos
    knobs never re-rolls the outages (DESIGN.md §9).
    """
    if policy.shard_outage_rate <= 0.0:
        return {}
    outages: Dict[int, List[Tuple[float, float]]] = {}
    for shard_id in range(num_shards):
        rng = policy.rng(_STREAM_SHARD_OUTAGE, shard_id)
        n = int(rng.poisson(policy.shard_outage_rate))
        if not n:
            continue
        starts = np.sort(rng.uniform(horizon[0], horizon[1], size=n))
        outages[shard_id] = [
            (float(s), float(s) + policy.shard_outage_duration) for s in starts
        ]
        chaos.shard_outage_windows += n
    return outages


def shard_policy(policy: ChaosPolicy, shard_id: int) -> ChaosPolicy:
    """The per-shard reseeding of a cluster chaos policy.

    Each shard's channel/registry faults draw from a seed stably derived
    from ``(policy seed, shard-seed stream, shard id)``, so shards fail
    independently instead of in lock-step, while the whole cluster stays
    reproducible from the one policy seed.
    """
    derived = int(
        np.random.default_rng((policy.seed, _STREAM_SHARD_SEED, shard_id)).integers(
            0, 2**31 - 1
        )
    )
    return replace(policy, seed=derived)
