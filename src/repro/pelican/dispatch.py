"""Batch-coalescing query dispatch, shard-agnostic (DESIGN.md §7).

Concurrent query requests are grouped per personal model — by
``(user, window length, k)`` in arrival order — and each group is
answered through the graph-free fused inference path in *one* GEMM stack.
The grouping and the two dispatch kernels live here so the single-cloud
:class:`~repro.pelican.fleet.Fleet`, the N-shard
:class:`~repro.pelican.cluster.Cluster`, and the cluster's failover path
all serve through the identical code — which is what makes their answers
bit-comparable.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Sequence, Tuple

from repro.data.features import FeatureSpec, SessionFeatures
from repro.models.architecture import NextLocationModel
from repro.models.predictor import NextLocationPredictor
from repro.nn.profiler import flop_counter
from repro.pelican.clock import QueryRequest
from repro.pelican.cloud import ResourceReport

#: Group key: requests sharing one can run as one fused dispatch.
GroupKey = Tuple[int, int, int]  # (user_id, window length, k)


def group_requests(
    requests: Sequence[QueryRequest],
) -> "OrderedDict[GroupKey, List[int]]":
    """Coalesce concurrent requests into per-model dispatch groups.

    Returns ``{(user_id, len(history), k): [request indices]}`` in first-
    arrival order — the deterministic grouping both serving layers batch
    by.  Indices let callers scatter group results back to request order.
    """
    groups: "OrderedDict[GroupKey, List[int]]" = OrderedDict()
    for idx, request in enumerate(requests):
        key = (request.user_id, len(request.history), request.k)
        groups.setdefault(key, []).append(idx)
    return groups


def dispatch_model_batch(
    model: NextLocationModel,
    spec: FeatureSpec,
    histories: Sequence[Tuple[SessionFeatures, ...]],
    k: int,
) -> Tuple[List[List[Tuple[int, float]]], ResourceReport]:
    """One fused batched dispatch against one model, MACs measured.

    Every history in the group is encoded into a single batch and
    answered by one graph-free fused inference stack; the returned
    :class:`ResourceReport` is the measured compute, for the caller to
    attribute to whichever side executed it (cloud shard, failover shard,
    or device).
    """
    predictor = NextLocationPredictor(model, spec)
    with flop_counter() as counter:
        results = predictor.top_k_batch(histories, k)
    return results, ResourceReport.from_counter(counter)
