"""Batch-coalescing query dispatch, shard-agnostic (DESIGN.md §7/§10).

Concurrent query requests are grouped per personal model — by
``(user, window length, k)`` in arrival order — and each group is
answered through the graph-free fused inference path in *one* GEMM stack.
The grouping and the dispatch kernels live here so the single-cloud
:class:`~repro.pelican.fleet.Fleet`, the N-shard
:class:`~repro.pelican.cluster.Cluster`, and the cluster's failover path
all serve through the identical code — which is what makes their answers
bit-comparable.

Two request species flow through the same grouping:

* **prediction requests** — ordinary top-k queries, answered by
  :func:`dispatch_model_batch`;
* **probe batches** — bulk black-box confidence queries
  (:class:`ProbePayload`), the privacy-audit adversary's traffic
  (DESIGN.md §10), answered by :func:`dispatch_probe_batch`.  The group
  key carries the species, so probe and prediction groups never mix.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.features import FeatureSpec, SessionFeatures
from repro.models.architecture import NextLocationModel
from repro.models.predictor import NextLocationPredictor
from repro.nn.functional import top_k_indices
from repro.nn.fused import stacked_infer_last
from repro.nn.profiler import DEFAULT_CYCLES_PER_MAC, flop_counter
from repro.pelican.clock import QueryRequest, QueryResponse
from repro.pelican.cloud import ResourceReport
from repro.pelican.stacking import StackKey, WeightStackCache, stack_key

#: Group key: requests sharing one can run as one fused dispatch.
#: ``(user_id, window length, k, is_probe)`` — the trailing flag keeps
#: audit probe traffic in its own groups (DESIGN.md §10).
GroupKey = Tuple[int, int, int, bool]


class ProbePayload:
    """Interface for bulk black-box probe batches (DESIGN.md §10).

    A probe payload stands in for *many* adversarial confidence queries
    against one user's model — the audit subsystem's unit of attack
    traffic.  The serving layer treats it like any other query payload:
    it rides a QUERY event on the event clock, is grouped by
    :func:`group_requests` (probe groups never mix with prediction
    groups), resolves its model through the same registry/placement/
    failover machinery, and bills one query exchange per probe.  Only the
    kernel differs: instead of top-k ranking, the dispatcher hands back
    the confidence the provider observes for each probe
    (:meth:`confidences`) — which is exactly the black-box surface the
    paper's threat model grants an honest-but-curious provider.

    The concrete implementation lives in the audit layer
    (:class:`repro.attacks.fleet_adversary.ProbeBatch`); this base class
    keeps the serving layer free of attack imports.
    """

    @property
    def num_probes(self) -> int:
        """How many individual black-box queries this payload carries."""
        raise NotImplementedError

    def __len__(self) -> int:
        """Window length in timesteps — part of the dispatch group key."""
        raise NotImplementedError

    def confidences(self, predictor: NextLocationPredictor) -> np.ndarray:
        """Observed-output confidence per probe, via ``predictor``'s
        black-box query surface (one value per probe, shape ``(n,)``)."""
        raise NotImplementedError


def group_requests(
    requests: Sequence[QueryRequest],
) -> "OrderedDict[GroupKey, List[int]]":
    """Coalesce concurrent requests into per-model dispatch groups.

    Returns ``{(user_id, len(history), k, is_probe): [request indices]}``
    in first-arrival order — the deterministic grouping every serving
    layer batches by.  Indices let callers scatter group results back to
    request order.  Probe payloads (:class:`ProbePayload`) group
    separately from prediction requests even at equal window length.
    """
    groups: "OrderedDict[GroupKey, List[int]]" = OrderedDict()
    for idx, request in enumerate(requests):
        key = (
            request.user_id,
            len(request.history),
            request.k,
            isinstance(request.history, ProbePayload),
        )
        groups.setdefault(key, []).append(idx)
    return groups


def dispatch_model_batch(
    model: NextLocationModel,
    spec: FeatureSpec,
    histories: Sequence[Tuple[SessionFeatures, ...]],
    k: int,
) -> Tuple[List[List[Tuple[int, float]]], ResourceReport]:
    """One fused batched dispatch against one model, MACs measured.

    Every history in the group is encoded into a single batch and
    answered by one graph-free fused inference stack; the returned
    :class:`ResourceReport` is the measured compute, for the caller to
    attribute to whichever side executed it (cloud shard, failover shard,
    or device).
    """
    predictor = NextLocationPredictor(model, spec)
    with flop_counter() as counter:
        results = predictor.top_k_batch(histories, k)
    return results, ResourceReport.from_counter(counter)


#: Minimum same-shaped groups a tick must carry before stacking pays:
#: a singleton "stack" is the per-model dispatch with extra copies.
MIN_STACK_GROUPS = 2

#: One resolved prediction group for :func:`dispatch_stacked_tick`:
#: ``(user_id, model, histories, k)`` — the model already resolved by
#: the caller (registry hit / cold load), never a probe.
StackedGroup = Tuple[int, NextLocationModel, Sequence[Tuple[SessionFeatures, ...]], int]


def _stacked_group_macs(key: StackKey, steps: int, batch: int) -> int:
    """Per-model-equivalent MACs of one group served via a stack.

    Exactly the integer the flop counter records when the same group
    runs through :func:`dispatch_model_batch`: the per-layer input
    projection ``T·B·F·4H``, the ``(T-1)`` recurrent steps ``B·H·4H``
    (the ``t == 0`` zero-state step is skipped on both paths), and the
    head ``B·H·L``.  Booking groups at this rate is what keeps the
    stacked path's report signature identical to the per-model one
    (DESIGN.md §12): stacking changes how the arithmetic is *scheduled*,
    not how much arithmetic each group logically is.
    """
    total = 0
    for f, h in key[1]:
        total += steps * batch * f * 4 * h
        if steps > 1:
            total += (steps - 1) * batch * h * 4 * h
    h_top, locations = key[2]
    total += batch * h_top * locations
    return total


def dispatch_stacked_tick(
    stack_cache: WeightStackCache,
    spec: FeatureSpec,
    groups: Sequence[StackedGroup],
    min_stack_groups: int = MIN_STACK_GROUPS,
) -> List[Optional[Tuple[List[List[Tuple[int, float]]], ResourceReport]]]:
    """Serve a whole tick's stackable groups as a few batched GEMM calls.

    Groups are bucketed by ``(stack key, window length)``; every bucket
    with at least ``min_stack_groups`` members is served stacked.  Within
    a bucket, members are sub-bucketed by ``(batch size, k)`` so each
    stacked inference runs over a uniform-size batch — no zero-padding
    (padded rows would be wasted GEMM work at fleet scale, where most
    groups carry a single query) — and top-k selection runs as ONE
    batched call per sub-bucket.  ``argpartition``/``argsort`` operate
    row-wise along the last axis, so the batched selection is
    bit-identical to per-group calls with the same ``k``.  The returned
    list aligns with ``groups``: a ``(results, report)`` pair for groups
    served here, ``None`` for groups the caller must route through the
    per-model path — reference backend, no same-shaped partner this tick
    (heterogeneous-shape fallback), or an under-filled bucket.

    The per-group :class:`ResourceReport` books the same MACs the
    per-model dispatch would have measured (:func:`_stacked_group_macs`),
    so the caller attributes cost group by group exactly as before.
    """
    served: List[Optional[Tuple[List[List[Tuple[int, float]]], ResourceReport]]] = [
        None
    ] * len(groups)
    buckets: "OrderedDict[Tuple[StackKey, int], List[int]]" = OrderedDict()
    for pos, (_, model, histories, _) in enumerate(groups):
        key = stack_key(model)
        if key is None:
            continue
        buckets.setdefault((key, len(histories[0])), []).append(pos)

    for (key, steps), members in buckets.items():
        if len(members) < min_stack_groups:
            continue
        stack = stack_cache.stack_for(key)
        sub_buckets: "OrderedDict[Tuple[int, int], List[int]]" = OrderedDict()
        for pos in members:
            sub_buckets.setdefault(
                (len(groups[pos][2]), groups[pos][3]), []
            ).append(pos)

        for (size, k), sub in sub_buckets.items():
            rows = [stack.ensure(groups[pos][0], groups[pos][1]) for pos in sub]
            layers, head_w, head_b, temps = stack.gather(rows)
            encoded = spec.encode_windows(
                [history for pos in sub for history in groups[pos][2]]
            )
            x = encoded.reshape(len(sub), size, steps, spec.width)
            if x.dtype != stack.dtype:
                x = x.astype(stack.dtype)

            last = stacked_infer_last(x, layers)  # (M, size, H)
            logits = np.matmul(last, head_w)
            logits += head_b[:, None, :]
            # Always divide: rows store temperature 1.0 for no-privacy
            # models and x / 1.0 is IEEE-exact, matching the per-model
            # skip.
            logits /= temps[:, None, None]
            shifted = logits - logits.max(axis=-1, keepdims=True)
            log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))

            order = top_k_indices(log_probs, k, axis=-1)  # (M, size, k)
            confidences = np.exp(np.take_along_axis(log_probs, order, axis=-1))
            locations = order.tolist()
            confidence_rows = confidences.tolist()
            macs = _stacked_group_macs(key, steps, size)
            for m, pos in enumerate(sub):
                results = [
                    list(zip(loc_row, conf_row))
                    for loc_row, conf_row in zip(locations[m], confidence_rows[m])
                ]
                served[pos] = (
                    results,
                    ResourceReport(
                        macs=macs,
                        estimated_billion_cycles=macs * DEFAULT_CYCLES_PER_MAC / 1e9,
                        wall_seconds=0.0,
                    ),
                )
    return served


def dispatch_prior_batch(
    model,
    histories: Sequence[Tuple[SessionFeatures, ...]],
    k: int,
) -> List[List[Tuple[int, float]]]:
    """One degraded group against a population/Markov prior (DESIGN.md §11).

    The resilience ladder's last tier answers from a fitted
    :class:`~repro.models.markov.MarkovChainModel` instead of a neural
    model: a table lookup per history, no GEMMs, so there is no
    :class:`ResourceReport` to attribute — callers still bill the query
    exchange through the endpoint boundary like every other group.
    Results have the same ``[(location, confidence), ...]`` shape as
    :func:`dispatch_model_batch`, sorted descending, stable ties.
    """
    results = []
    for history in histories:
        confidences = np.asarray(model.confidences(history))
        top = top_k_indices(confidences, k)
        results.append([(int(i), float(confidences[i])) for i in top])
    return results


def dispatch_probe_batch(
    model: NextLocationModel,
    spec: FeatureSpec,
    probes: Sequence[ProbePayload],
) -> Tuple[List[np.ndarray], ResourceReport]:
    """One probe group against one model, MACs measured (DESIGN.md §10).

    Each payload's probes run through the model's graph-free fused
    inference kernel in chunked batches (the payload controls encoding
    and chunking, so fleet-served probes are bit-identical to the same
    attack querying a bare predictor directly).  Like
    :func:`dispatch_model_batch` the model is resolved by the caller —
    registry live copy, failover cold load, or on-device — and the
    measured compute comes back for per-side attribution.
    """
    predictor = NextLocationPredictor(model, spec)
    with flop_counter() as counter:
        results = [probe.confidences(predictor) for probe in probes]
    return results, ResourceReport.from_counter(counter)


def serve_probe_group(
    model: NextLocationModel,
    spec: FeatureSpec,
    probes: Sequence[ProbePayload],
    report,
    endpoint,
    channel=None,
    label: str = "query",
    profile=None,
) -> Tuple[List[np.ndarray], int]:
    """Serve one probe group and bill it — the single definition of the
    probe accounting invariant (DESIGN.md §10).

    Every cost lands in the normal totals of ``report`` (a
    :class:`~repro.pelican.accounting.FleetReport`) *and* is mirrored
    field-by-field into its ``adversary_*`` overlay, so
    ``benign = total − adversary`` holds no matter which serving path
    ran the group: home-shard cloud serving (default), cluster failover
    (pass the fallback shard's ``channel`` and ``label``), or a locally
    deployed model (pass the device ``profile``; compute and seconds are
    then attributed device-side and no network is charged).  The query
    exchange always flows through the endpoint's single accounting
    boundary, so per-endpoint ledgers conserve.  Returns
    ``(per-payload confidences, total probe count)``.
    """
    results, compute = dispatch_probe_batch(model, spec, probes)
    num_probes = sum(probe.num_probes for probe in probes)
    if profile is None:
        report.cloud_compute += compute
        report.adversary_cloud_compute += compute
        seconds = endpoint.record_query_exchange(
            num_probes, channel=channel, label=label
        )
        report.adversary_network_seconds += seconds
    else:
        report.device_compute += compute
        report.adversary_device_compute += compute
        seconds = profile.simulated_seconds(compute.macs)
        report.device_simulated_seconds += seconds
        report.adversary_device_simulated_seconds += seconds
        endpoint.record_query_exchange(num_probes)
    report.batches += 1
    report.queries += num_probes
    report.adversary_batches += 1
    report.adversary_queries += num_probes
    return results, num_probes


def probe_response(user_id: int, seq: int, confidences: np.ndarray) -> QueryResponse:
    """The served answer for one probe payload: confidences, no top-k."""
    return QueryResponse(
        user_id=user_id,
        time=0.0,
        seq=seq,
        top_k=(),
        confidences=tuple(float(c) for c in confidences),
    )
