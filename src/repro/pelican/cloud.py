"""Phase 1 — cloud-based initial training (paper §V-A1).

The cloud trainer fits the general model ``M_G`` on pooled contributor
trajectories and publishes it as a serialized checkpoint for devices to
download.  Training cost is measured with the FLOP profiler so the overhead
comparison against device-based personalization (§V-C2) is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.dataset import SequenceDataset
from repro.models.architecture import NextLocationModel
from repro.models.general import GeneralModelConfig, train_general_model
from repro.nn.profiler import FlopCounter, flop_counter
from repro.nn.serialization import serialize_state


@dataclass
class ResourceReport:
    """Compute cost of one phase (training, personalization, or serving).

    Reports are additive: the fleet layer (DESIGN.md §7) sums per-event
    reports into per-side totals with :meth:`__add__`.  ``macs`` and
    ``estimated_billion_cycles`` are deterministic for a fixed workload;
    ``wall_seconds`` is measured and therefore varies run to run.
    """

    macs: int
    estimated_billion_cycles: float
    wall_seconds: float

    @classmethod
    def from_counter(cls, counter: FlopCounter) -> "ResourceReport":
        """Snapshot a :class:`~repro.nn.profiler.FlopCounter`."""
        return cls(
            macs=counter.macs,
            estimated_billion_cycles=counter.estimated_billion_cycles(),
            wall_seconds=counter.elapsed_seconds,
        )

    @classmethod
    def zero(cls) -> "ResourceReport":
        """An empty report, the identity for :meth:`__add__`."""
        return cls(macs=0, estimated_billion_cycles=0.0, wall_seconds=0.0)

    def __add__(self, other: "ResourceReport") -> "ResourceReport":
        return ResourceReport(
            macs=self.macs + other.macs,
            estimated_billion_cycles=(
                self.estimated_billion_cycles + other.estimated_billion_cycles
            ),
            wall_seconds=self.wall_seconds + other.wall_seconds,
        )


class CloudTrainer:
    """Trains and publishes the general model."""

    def __init__(self, config: GeneralModelConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self.general_model: Optional[NextLocationModel] = None
        self.training_report: Optional[ResourceReport] = None

    def train(self, contributor_dataset: SequenceDataset) -> NextLocationModel:
        """Fit ``M_G`` on pooled contributor windows, recording compute."""
        rng = np.random.default_rng(self.seed)
        with flop_counter() as counter:
            model, _ = train_general_model(contributor_dataset, self.config, rng)
        self.general_model = model
        self.training_report = ResourceReport.from_counter(counter)
        return model

    def publish(self) -> bytes:
        """Serialize the trained general model for device download."""
        if self.general_model is None:
            raise RuntimeError("general model has not been trained yet")
        return serialize_state(
            self.general_model.state_dict(),
            metadata={
                "input_width": self.general_model.input_width,
                "num_locations": self.general_model.num_locations,
                "hidden_size": self.general_model.hidden_size,
                "num_layers": self.general_model.lstm.num_layers,
                "dropout": self.general_model.lstm.dropout_p,
            },
        )
