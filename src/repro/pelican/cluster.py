"""Sharded cluster serving: N single-cloud fleets behind one front door
(DESIGN.md §9).

A production deployment cannot serve millions of personal models from one
cloud; it spreads them over shards.  :class:`Cluster` composes N
:class:`~repro.pelican.fleet.Fleet` shards — each with its own
:class:`~repro.pelican.system.Pelican`, channel, live-model registry, and
capacity — behind a deterministic placement layer
(:mod:`repro.pelican.placement`) and the shared event clock
(:mod:`repro.pelican.clock`).  The legacy single-cloud ``Fleet`` is
exactly the 1-shard special case: a 1-shard cluster run returns
bit-identical responses and a bit-identical totals signature.

Guarantees, in the same spirit as §7/§8:

* **Response parity.**  Placement routes whole users, the dispatcher
  groups per model, and cold loads rebuild bit-identically — so a
  K-shard run under the null chaos policy answers every query exactly
  like the single-``Fleet`` run on the same schedule and seed.  Only the
  books differ in shape (per-shard), never the totals' meaning.
* **Deterministic placement.**  Every policy derives from
  ``default_rng((seed, stream, key))``-style stable hashes: the same
  ``(seed, user set, shard count)`` always yields the identical
  placement map.
* **Failover under chaos.**  With a :class:`~repro.pelican.chaos.ChaosPolicy`
  carrying shard-outage windows, queries homed on a downed shard re-route
  to the next alive shard, which cold-loads the user's checkpoint from the
  cluster-wide durable store (per-shard live caches over one blob store) —
  all cost-accounted on the shard that did the work.  Onboards and updates
  defer to the outage's end; per-user serial order is preserved.  The
  whole faulty run stays bit-deterministic and signature-comparable.
* **Graceful degradation under resilience.**  With a
  :class:`~repro.pelican.resilience.ResiliencePolicy` (DESIGN.md §11),
  failover routing consults per-shard circuit breakers, chaos-deferred
  queries that blew their deadline are shed up front, and a query with
  *no* alive shard degrades through stale copy → general model → Markov
  prior instead of being served on the downed home shard.  The null
  policy is byte-identical to no policy at all.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.data.dataset import SequenceDataset
from repro.data.features import FeatureSpec
from repro.models.personalize import PersonalizationMethod
from repro.pelican.accounting import ClusterReport, overlay_signature
from repro.pelican.chaos import (
    ChaosFleet,
    ChaosPolicy,
    ChaosStats,
    perturb_schedule,
    sample_shard_outages,
    shard_policy,
)
from repro.pelican.resilience import (
    DegradationLadder,
    ResiliencePolicy,
    ResilienceStats,
    ShardBreaker,
    shard_resilience,
    shed_late_queries,
)
from repro.pelican.clock import (
    EventKind,
    FleetEvent,
    FleetSchedule,
    QueryRequest,
    QueryResponse,
    replay_schedule,
)
from repro.pelican.deployment import DeploymentMode
from repro.pelican.device import CLOUD_SERVER, LOW_END_PHONE, DeviceProfile
from repro.pelican.dispatch import (
    ProbePayload,
    dispatch_model_batch,
    dispatch_prior_batch,
    group_requests,
    probe_response,
    serve_probe_group,
)
from repro.pelican.fleet import Fleet
from repro.pelican.placement import HashPlacement, PlacementPolicy, make_placement
from repro.pelican.storage import BlobStore, make_blob_store
from repro.pelican.system import OnboardedUser, Pelican, PelicanConfig


def split_schedule(
    schedule: FleetSchedule, placement: PlacementPolicy
) -> Dict[int, FleetSchedule]:
    """Route a schedule across shards, preserving per-user serial order.

    Every event keeps its original ``(time, seq)``, and all of one user's
    events land on one shard (placement is per-user), so each per-shard
    schedule replays its users' events in exactly the order the global
    schedule would have.  Shards with no events are absent from the map.
    """
    shards: Dict[int, FleetSchedule] = {}
    for event in schedule.ordered():
        shard_id = placement.shard_for(event.user_id)
        shards.setdefault(shard_id, FleetSchedule()).add(event)
    return shards


class Cluster:
    """A sharded Pelican cloud: N fleets, one placement layer, one clock.

    Parameters
    ----------
    spec / config:
        The feature spec and system config every shard's
        :class:`~repro.pelican.system.Pelican` is built from.  All shards
        share ``config.seed``, so a user personalizes bit-identically
        regardless of which shard owns them — the root of the K-vs-1
        response parity guarantee.
    num_shards:
        Cloud shard count; ``1`` reproduces the legacy single-``Fleet``
        behaviour exactly.
    placement:
        A policy name (``hash`` / ``least_loaded`` / ``sticky``) or a
        ready :class:`~repro.pelican.placement.PlacementPolicy` instance.
    registry_capacity:
        *Per-shard* live-model budget (``None`` = unbounded).  The durable
        blob store is cluster-wide and unbounded, like real object
        storage.
    policy:
        Optional :class:`~repro.pelican.chaos.ChaosPolicy`.  Per-shard
        faults (lossy transfers, flaky cold loads) run with a seed stably
        derived per shard; shard-outage windows and per-user deferrals are
        applied at cluster level.  ``None`` and the null policy are
        byte-for-byte identical.
    resilience:
        Optional :class:`~repro.pelican.resilience.ResiliencePolicy`
        (DESIGN.md §11) governing how the cluster *reacts* to injected
        faults: per-shard retry budgets with backoff (reseeded per shard
        like chaos), circuit breakers steering failover, query deadlines
        with load shedding, and the full-outage degradation ladder.  One
        :class:`~repro.pelican.resilience.ResilienceStats` book is
        shared across all shards.  ``None`` and the null policy are
        byte-for-byte identical to the pre-resilience behaviour.
    stacked:
        Serve every shard's cloud prediction groups through the
        cross-model stacked dispatch (DESIGN.md §12).  Per-shard only:
        the failover and degradation paths keep the per-model dispatch
        (their registry resolution is interleaved with breaker and
        outage decisions), which is part of the §12 bypass list —
        answers and signatures are unchanged either way.
    workers:
        Number of persistent worker processes to scatter shard replay
        onto (DESIGN.md §13).  ``0`` (the default) is byte-for-byte the
        existing in-process serial path; ``N >= 1`` assigns shards
        round-robin to ``min(N, num_shards)`` processes, each holding
        its shards' full serving stacks, and merges every tick
        deterministically — responses and ``totals_signature()`` are
        bit-identical to the serial run at any worker count, under null
        chaos and under shard-outage/failover chaos.  Does not compose
        with a non-null resilience policy (breakers and the degradation
        ladder read cross-shard state mid-tick); :meth:`close` stops the
        processes.
    store:
        The cluster-wide durable checkpoint store (DESIGN.md §14).  A
        kind string (``"memory"``, ``"disk"``, ``"tiered"``) builds a
        store the cluster owns and closes; a ready-made
        :class:`~repro.pelican.storage.BlobStore` (or plain dict) is used
        as-is and left open.  Responses and ``totals_signature()`` are
        bit-identical across store kinds — stores are byte-transparent
        and fetches are billed at logical blob sizes.
    """

    def __init__(
        self,
        spec: FeatureSpec,
        config: Optional[PelicanConfig] = None,
        num_shards: int = 1,
        placement: Union[str, PlacementPolicy] = "hash",
        registry_capacity: Optional[int] = 64,
        cloud_profile: DeviceProfile = CLOUD_SERVER,
        device_profile: DeviceProfile = LOW_END_PHONE,
        policy: Optional[ChaosPolicy] = None,
        resilience: Optional[ResiliencePolicy] = None,
        stacked: bool = False,
        workers: int = 0,
        store: Union[str, BlobStore, Dict[int, bytes], None] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError("a cluster needs at least one shard")
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = in-process serial serving)")
        if workers and resilience is not None and not resilience.is_null:
            raise ValueError(
                "workers > 0 does not compose with a non-null resilience "
                "policy: circuit breakers and the degradation ladder read "
                "cross-shard state mid-tick (DESIGN.md §13); run resilient "
                "clusters with workers=0"
            )
        config = config or PelicanConfig()
        self.spec = spec
        self.config = config
        self.num_shards = num_shards
        if isinstance(placement, PlacementPolicy):
            if placement.num_shards != num_shards:
                raise ValueError(
                    f"placement policy covers {placement.num_shards} shards, "
                    f"cluster has {num_shards}"
                )
            self.placement = placement
        else:
            self.placement = make_placement(placement, config.seed, num_shards)
        self.policy = policy
        self.chaos = ChaosStats()
        self.resilience = resilience
        #: One stats book for the whole cluster (shared with every
        #: shard), so the signature overlay needs no merging.
        self.resilience_stats = ResilienceStats()
        active = resilience is not None and not resilience.is_null
        self._breakers: Dict[int, ShardBreaker] = (
            {
                shard_id: ShardBreaker(shard_id, resilience, self.resilience_stats)
                for shard_id in range(num_shards)
            }
            if active and resilience.breaker_threshold is not None
            else {}
        )
        self._ladder: Optional[DegradationLadder] = (
            DegradationLadder(resilience, spec, config.seed)
            if active and resilience.degrade_tiers
            else None
        )
        #: Cluster-wide durable checkpoint store, shared by every shard's
        #: registry — what makes cross-shard failover cold loads possible.
        #: Any :class:`~repro.pelican.storage.BlobStore` works (DESIGN.md
        #: §14); a kind string (``"memory"``/``"disk"``/``"tiered"``)
        #: builds one the cluster owns and closes.
        self._owns_store = isinstance(store, str) or store is None
        self.store: Union[BlobStore, Dict[int, bytes]] = (
            make_blob_store(store or "memory") if self._owns_store else store
        )
        self.shards: List[Fleet] = []
        for shard_id in range(num_shards):
            pelican = Pelican(spec, config)
            shard_res = shard_resilience(resilience, shard_id) if active else None
            if policy is None:
                shard: Fleet = Fleet(
                    pelican,
                    registry_capacity=registry_capacity,
                    cloud_profile=cloud_profile,
                    device_profile=device_profile,
                    registry_store=self.store,
                    resilience=shard_res,
                    resilience_stats=self.resilience_stats,
                    stacked=stacked,
                )
            else:
                shard = ChaosFleet(
                    pelican,
                    shard_policy(policy, shard_id),
                    registry_capacity=registry_capacity,
                    cloud_profile=cloud_profile,
                    device_profile=device_profile,
                    registry_store=self.store,
                    resilience=shard_res,
                    resilience_stats=self.resilience_stats,
                    stacked=stacked,
                )
            self.shards.append(shard)
        self.report = ClusterReport(
            cloud_profile=cloud_profile,
            device_profile=device_profile,
            shard_reports=[shard.report for shard in self.shards],
        )
        #: Current run's shard-outage windows (empty outside chaos runs).
        self._outages: Dict[int, List[Tuple[float, float]]] = {}
        self.workers = workers
        #: Lazily-created persistent worker pool (DESIGN.md §13).
        self._pool: Optional[Any] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_trained(cls, pelican: Pelican, **kwargs: Any) -> "Cluster":
        """Build a cluster from an already-trained orchestrator.

        Publishes ``pelican``'s general model to every shard and adopts
        any users it already onboarded (placing each and rewiring cloud
        endpoints to their shard's channel).  Training cost is *not*
        adopted — mirror of wrapping a pre-trained Pelican in a bare
        ``Fleet``; use :meth:`train_cloud` (or add to
        ``report.training``) when the cost should appear in the books.
        Takes ownership of ``pelican`` exactly like ``Fleet(pelican)``.
        """
        if pelican._general_blob is None:
            raise RuntimeError("run initial_training before sharding a Pelican")
        cluster = cls(pelican.spec, pelican.config, **kwargs)
        for shard in cluster.shards:
            shard.pelican._general_blob = pelican._general_blob
            shard.pelican.cloud = pelican.cloud
        for user_id, user in pelican.users.items():
            shard = cluster.shards[cluster.placement.shard_for(user_id)]
            if user.endpoint.channel is not None:
                user.endpoint.channel = shard.pelican.channel
            shard.pelican.users[user_id] = user
            if user.endpoint.mode == DeploymentMode.CLOUD:
                shard.registry.register(user_id, user.endpoint.predictor.model)
        return cluster

    def train_cloud(self, contributor_dataset: SequenceDataset):
        """Phase-1 general-model training — once, cluster-wide.

        The general model is trained on one trainer and its published
        blob is shared by every shard (a real cluster trains centrally
        and replicates the artifact); the cost lands in the cluster-level
        ``report.training`` book, not on any shard.
        """
        lead = self.shards[0].pelican
        report = lead.initial_training(contributor_dataset)
        for shard in self.shards[1:]:
            shard.pelican._general_blob = lead._general_blob
            shard.pelican.cloud = lead.cloud
        self.report.training = self.report.training + report
        return report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_users(self) -> int:
        return sum(shard.num_users for shard in self.shards)

    @property
    def users(self) -> Dict[int, OnboardedUser]:
        """All onboarded users across shards (read-only merged view)."""
        merged: Dict[int, OnboardedUser] = {}
        for shard in self.shards:
            merged.update(shard.pelican.users)
        return merged

    def shard_of(self, user_id: int) -> int:
        """The shard owning ``user_id`` under this cluster's placement."""
        return self.placement.shard_for(user_id)

    def placement_map(self) -> Dict[int, int]:
        """``user -> shard`` for every currently onboarded user."""
        return {
            uid: shard_id
            for shard_id, shard in enumerate(self.shards)
            for uid in shard.pelican.users
        }

    def merged_chaos(self) -> Dict[str, Any]:
        """Cluster-level chaos counters plus every shard's, summed."""
        return self.chaos.merged(
            *[shard.chaos for shard in self.shards if isinstance(shard, ChaosFleet)]
        )

    def signature(self) -> Dict[str, Any]:
        """Aggregated report signature plus the merged chaos counters.

        A non-null resilience policy additionally joins the shared
        ``resilience_*`` overlay; otherwise the key set is exactly the
        legacy one (golden-signature contract).
        """
        signature = overlay_signature(
            self.report.signature(), "chaos_", self.merged_chaos()
        )
        if self.resilience is not None and not self.resilience.is_null:
            signature = overlay_signature(
                signature, "resilience_", self.resilience_stats.signature()
            )
        return signature

    # ------------------------------------------------------------------
    # Lifecycle events (routed by placement)
    # ------------------------------------------------------------------
    def onboard(
        self,
        user_id: int,
        dataset: SequenceDataset,
        privacy_temperature: Optional[float] = None,
        method: Optional[PersonalizationMethod] = None,
        deployment: Optional[DeploymentMode] = None,
        profile: Optional[DeviceProfile] = None,
    ) -> OnboardedUser:
        """Onboard one device on its placed shard."""
        home_id = self.placement.shard_for(user_id)
        user = self.shards[home_id].onboard(
            user_id,
            dataset,
            privacy_temperature=privacy_temperature,
            method=method,
            deployment=deployment,
            profile=profile,
        )
        self._invalidate_elsewhere(user_id, home_id)
        return user

    def update(self, user_id: int, dataset: SequenceDataset) -> OnboardedUser:
        """Phase-4 incremental update on the user's home shard."""
        home_id = self.placement.shard_for(user_id)
        refreshed = self.shards[home_id].update(user_id, dataset)
        self._invalidate_elsewhere(user_id, home_id)
        return refreshed

    def _invalidate_elsewhere(self, user_id: int, home_id: int) -> None:
        """Drop foreign live copies after a (re)deploy to the shared store.

        A past failover may have cached the user's model on another
        shard's live registry; re-registering on the home shard replaces
        the durable blob but not those copies, so they must be evicted or
        a later failover would serve a stale model.  The eviction is
        booked like any other (counter + log), keeping the invalidation
        visible and deterministic.

        Only shards whose live cache actually holds a copy are touched
        (residency probed through the accounting-free
        :meth:`~repro.pelican.registry.ModelRegistry.peek`): the books
        are identical to evicting everywhere — ``evict`` was already a
        no-op on non-resident shards — but each onboard/update stops
        paying an O(K) fan-out for the common case of zero foreign
        copies.
        """
        for shard_id, shard in enumerate(self.shards):
            if shard_id != home_id and shard.registry.peek(user_id) is not None:
                shard.registry.evict(user_id)

    # ------------------------------------------------------------------
    # Query serving
    # ------------------------------------------------------------------
    def serve(self, requests: Sequence[QueryRequest]) -> List[QueryResponse]:
        """Serve concurrent requests, split per home shard, batched per model.

        Responses come back in request order and are bit-identical to
        serving the same requests on one fleet — routing moves whole
        users, and each shard batches its sub-list with the shared
        dispatcher, so every per-model group is the same either way.
        With ``workers > 0`` the shard sub-batches run on the worker
        processes (DESIGN.md §13); the merge is unchanged.
        """
        pool = self._parallel()
        if pool is not None:
            with pool.session():
                return pool.scatter(requests)
        return self._scatter(requests, lambda shard, sub: shard.serve(sub))

    def serve_looped(self, requests: Sequence[QueryRequest]) -> List[QueryResponse]:
        """Reference path: per-shard accounting-neutral one-by-one serving.

        Always in-process, even with ``workers > 0`` — it is the
        executable specification the parallel path is compared against,
        so it must not depend on the machinery it verifies.
        """
        return self._scatter(requests, lambda shard, sub: shard.serve_looped(sub))

    # ------------------------------------------------------------------
    # Parallel workers (DESIGN.md §13)
    # ------------------------------------------------------------------
    def _parallel(self):
        """The lazily-started worker pool, or ``None`` when serial."""
        if self.workers == 0:
            return None
        if self._pool is None:
            from repro.pelican.parallel import ShardWorkerPool

            self._pool = ShardWorkerPool(self)
        return self._pool

    def close(self) -> None:
        """Stop the worker processes and any store the cluster owns
        (no-op when serial / never started / memory-backed)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._owns_store:
            closer = getattr(self.store, "close", None)
            if closer is not None:
                closer()

    def _scatter(self, requests, serve_one_shard) -> List[QueryResponse]:
        """Split requests by home shard, serve, and merge in request order.

        Responses are renumbered to global request order, so a cluster
        ``serve`` is indistinguishable — response objects included — from
        the same requests served by one fleet.
        """
        responses: List[Optional[QueryResponse]] = [None] * len(requests)
        for shard_id, indices in self._by_shard(requests).items():
            served = serve_one_shard(
                self.shards[shard_id], [requests[i] for i in indices]
            )
            self._merge_shard(shard_id, indices, served, responses, renumber=True)
        return [r for r in responses if r is not None]

    def _merge_shard(
        self,
        shard_id: int,
        indices: List[int],
        served: Sequence[Optional[QueryResponse]],
        responses: List[Optional[QueryResponse]],
        renumber: bool = False,
    ) -> None:
        """Merge one shard's sub-batch back into the global response slots.

        The single gather boundary of every scatter path (direct serving,
        tick routing, failover, degradation, and the parallel workers'
        merge): a shard must answer **one slot per request** — ``None``
        marks a shed query — and anything else is misattribution waiting
        to happen, so a length mismatch raises instead of silently
        dropping or shifting answers onto the wrong requests (the old
        positional ``zip`` did exactly that).
        """
        if len(served) != len(indices):
            raise RuntimeError(
                f"shard {shard_id} returned {len(served)} responses for "
                f"{len(indices)} requests; every shard must return one "
                "slot per request (None for shed queries)"
            )
        for i, response in zip(indices, served):
            if response is None:
                continue
            if renumber:
                response = QueryResponse(
                    user_id=response.user_id,
                    time=response.time,
                    seq=i,
                    top_k=response.top_k,
                    confidences=response.confidences,
                    degraded=response.degraded,
                )
            responses[i] = response

    def _by_shard(
        self, requests: Sequence[QueryRequest]
    ) -> "OrderedDict[int, List[int]]":
        """Request indices per home shard, in first-arrival shard order."""
        by_shard: "OrderedDict[int, List[int]]" = OrderedDict()
        for idx, request in enumerate(requests):
            by_shard.setdefault(self.placement.shard_for(request.user_id), []).append(
                idx
            )
        return by_shard

    # ------------------------------------------------------------------
    # Event clock
    # ------------------------------------------------------------------
    def run(self, schedule: FleetSchedule) -> List[QueryResponse]:
        """Replay a schedule across the shards on the shared event clock.

        The clock runs at cluster level (the single
        :func:`~repro.pelican.clock.replay_schedule` definition), so
        same-tick coalescing, flush-on-lifecycle-event, and response
        ordering are identical to a single-fleet run — which is what the
        K-vs-1 bit-parity tests compare.  Under a chaos policy the
        schedule is first perturbed (offline windows, stragglers, and
        shard-outage deferrals for onboards/updates); queries homed on a
        downed shard are *not* deferred — they fail over.  With
        ``workers > 0`` the prepared schedule replays on the worker pool
        (DESIGN.md §13) — same clock, same routing decisions, same
        responses and signature, bit-for-bit.
        """
        prepared = self._prepare(schedule)
        pool = self._parallel()
        if pool is not None:
            with pool.session():
                return replay_schedule(
                    prepared,
                    serve=pool.serve_tick,
                    onboard=pool.onboard_event,
                    update=pool.update_event,
                )
        return replay_schedule(
            prepared,
            serve=self._serve_tick,
            onboard=lambda e: self.onboard(e.user_id, e.payload, **dict(e.options)),
            update=lambda e: self.update(e.user_id, e.payload),
        )

    def _prepare(self, schedule: FleetSchedule) -> FleetSchedule:
        """Sample outages, apply the chaos perturbation, shed late work."""
        self._outages = {}
        if self.policy is None or self.policy.is_null:
            return schedule
        events = schedule.ordered()
        if not events:
            return schedule
        horizon = (events[0].time, events[-1].time)
        self._outages = sample_shard_outages(
            self.policy, self.num_shards, horizon, self.chaos
        )
        perturbed = perturb_schedule(
            schedule, self.policy, self.chaos, outage_defer=self._outage_defer
        )
        if self.resilience is not None and not self.resilience.is_null:
            perturbed = shed_late_queries(
                schedule, perturbed, self.resilience, self.resilience_stats
            )
        return perturbed

    def _outage_defer(self, event: FleetEvent, time: float) -> float:
        """Defer lifecycle events on a downed home shard to the outage end.

        Queries pass through untouched — the serving path fails them over
        instead, because a read can be answered elsewhere but an
        onboard/update must reach the user's home shard.
        """
        if event.kind is EventKind.QUERY:
            return time
        for start, end in self._outages.get(
            self.placement.shard_for(event.user_id), ()
        ):
            if start <= time < end:
                time = end
        return time

    def _down(self, shard_id: int, time: float) -> bool:
        return any(start <= time < end for start, end in self._outages.get(shard_id, ()))

    def _serve_tick(
        self, time: float, requests: List[QueryRequest]
    ) -> List[Optional[QueryResponse]]:
        """One coalesced clock-tick batch, routed with outage awareness.

        With circuit breakers configured (DESIGN.md §11), every tick a
        shard receives traffic is a health observation: a downed shard
        takes a strike, enough strikes inside the sliding window open
        its breaker, and an open breaker routes around the shard even
        once its outage window has ended — until the cooldown half-opens
        it and a successful tick closes it again.  ``None`` slots mark
        shed queries; the replay loop skips them.
        """
        responses: List[Optional[QueryResponse]] = [None] * len(requests)
        for shard_id, indices in self._by_shard(requests).items():
            sub = [requests[i] for i in indices]
            down = self._down(shard_id, time)
            breaker = self._breakers.get(shard_id)
            if breaker is None:
                unavailable = down
            else:
                allowed = breaker.allow(time)
                if down:
                    breaker.record_failure(time)
                    unavailable = True
                elif not allowed:
                    self.resilience_stats.breaker_redirects += len(sub)
                    unavailable = True
                else:
                    breaker.record_success(time)
                    unavailable = False
            if unavailable:
                served = self._serve_despite_outage(time, shard_id, sub)
            else:
                served = self.shards[shard_id].serve(sub)
            self._merge_shard(shard_id, indices, served, responses)
        return responses

    def _serve_despite_outage(
        self, time: float, home_id: int, requests: List[QueryRequest]
    ) -> List[Optional[QueryResponse]]:
        """Serve an unavailable shard's tick batch.

        Locally-deployed users answer on their own devices — a cloud
        outage never touches them — while cloud-deployed users fail over,
        each to their first alive failover shard.  Answers are
        bit-identical to the clean run either way; only the cost
        attribution moves.

        When *no* failover shard is alive the behaviour splits on the
        resilience ladder (DESIGN.md §11): with a ladder configured the
        queries degrade through it (stale copy → general model → Markov
        prior, flagged on the response); without one they take the
        legacy path — served on the downed home shard as if it were up —
        and are counted as ``unprotected_outage_queries``, so baselines
        can be penalized for the fiction.  Audit probes always take the
        legacy path: probe answers are fault-invariant by contract
        (DESIGN.md §10), so they are exempt from degradation.
        """
        home = self.shards[home_id]
        responses: List[Optional[QueryResponse]] = [None] * len(requests)
        local: List[int] = []
        degraded: List[int] = []
        by_fallback: "OrderedDict[int, List[int]]" = OrderedDict()
        for i, request in enumerate(requests):
            if home.pelican.users[request.user_id].endpoint.mode != DeploymentMode.CLOUD:
                local.append(i)
                continue
            target = self._failover_target(request.user_id, home_id, time)
            if target is None:
                if self._ladder is not None and not isinstance(
                    request.history, ProbePayload
                ):
                    degraded.append(i)
                    continue
                target = home_id
                if not isinstance(request.history, ProbePayload):
                    self.resilience_stats.unprotected_outage_queries += 1
            by_fallback.setdefault(target, []).append(i)
        if local:
            served = home.serve([requests[i] for i in local])
            self._merge_shard(home_id, local, served, responses)
        for fallback_id, indices in by_fallback.items():
            served = self._serve_failover(
                home, self.shards[fallback_id], [requests[i] for i in indices]
            )
            self._merge_shard(fallback_id, indices, served, responses)
        if degraded:
            served = self._serve_degraded(
                home, [requests[i] for i in degraded]
            )
            self._merge_shard(home_id, degraded, served, responses)
        return responses

    def _failover_target(
        self, user_id: int, home_id: int, time: float
    ) -> Optional[int]:
        """The user's first available failover shard, or ``None``.

        Hash-based placements walk the user's own ring successor order
        (:meth:`~repro.pelican.placement.HashPlacement.successors`), so
        failed-over load spreads the way consistent hashing promises;
        other policies walk shard ids from the home.  With circuit
        breakers configured, a candidate whose breaker is open is
        skipped *before* its outage state is even probed — the redirect
        that saves a doomed cold load — and downed candidates take a
        breaker strike.  ``None`` means a full-cluster outage: nothing
        is available, and the caller decides between the degradation
        ladder and the legacy serve-on-downed-home path.
        """
        if isinstance(self.placement, HashPlacement):
            candidates = [
                shard
                for shard in self.placement.successors(user_id)
                if shard != home_id
            ]
        else:
            candidates = [
                (home_id + offset) % self.num_shards
                for offset in range(1, self.num_shards)
            ]
        for candidate in candidates:
            breaker = self._breakers.get(candidate)
            if breaker is not None and not breaker.allow(time):
                self.resilience_stats.breaker_redirects += 1
                continue
            if self._down(candidate, time):
                if breaker is not None:
                    breaker.record_failure(time)
                continue
            if breaker is not None:
                breaker.record_success(time)
            return candidate
        return None

    def _serve_failover(
        self, home: Fleet, fallback: Fleet, requests: List[QueryRequest]
    ) -> List[QueryResponse]:
        """Batched failover serving on ``fallback``, fully cost-accounted.

        Each per-model group cold-loads (or cache-hits) the user's
        checkpoint from the cluster-wide durable store through the
        fallback shard's registry, runs the same fused dispatch as normal
        serving, and pays its query exchanges on the fallback shard's
        channel — so failed-over traffic is indistinguishable in *shape*
        from native traffic, it just lands in a different shard's book.
        The exchange goes through the endpoint's single accounting
        boundary (:meth:`~repro.pelican.deployment.ServiceEndpoint.record_query_exchange`,
        with the fallback channel), so per-endpoint query conservation
        survives failover.
        """
        responses: List[Optional[QueryResponse]] = [None] * len(requests)
        for (user_id, _, k, is_probe), indices in group_requests(requests).items():
            model = fallback.registry.get(user_id)
            histories = [requests[i].history for i in indices]
            endpoint = home.pelican.users[user_id].endpoint
            if is_probe:
                # Audit probes fail over like any other cloud read
                # (DESIGN.md §10): same durable-store cold load, same
                # shared billing boundary, costs and adversary
                # attribution booked on the shard that did the work.
                results, num_probes = serve_probe_group(
                    model,
                    fallback.pelican.spec,
                    histories,
                    fallback.report,
                    endpoint,
                    channel=fallback.pelican.channel,
                    label="failover-probe",
                )
                self.chaos.failover_queries += num_probes
                for i, confidences in zip(indices, results):
                    responses[i] = probe_response(user_id, i, confidences)
                continue
            results, report = dispatch_model_batch(
                model, fallback.pelican.spec, histories, k
            )
            fallback.report.cloud_compute += report
            endpoint.record_query_exchange(
                len(indices),
                channel=fallback.pelican.channel,
                label="failover-query",
            )
            fallback.report.batches += 1
            fallback.report.queries += len(indices)
            self.chaos.failover_queries += len(indices)
            for i, top in zip(indices, results):
                responses[i] = QueryResponse(
                    user_id=user_id, time=0.0, seq=i, top_k=tuple(top)
                )
        fallback._sync_network()
        return responses

    def _serve_degraded(
        self, home: Fleet, requests: List[QueryRequest]
    ) -> List[Optional[QueryResponse]]:
        """Full-cluster-outage serving through the degradation ladder.

        Each per-model group resolves the best tier the ladder can offer
        (DESIGN.md §11): a still-hot cached copy of the personal model
        (``stale``), the published general model (``general``), or a
        per-user Markov prior fit on the user's own onboarding data
        (``prior``).  Answers are flagged with their tier so accuracy
        splits fresh-vs-degraded.  Billing mirrors the failover path —
        the query exchange flows through the endpoint's single
        accounting boundary and the compute lands on the home shard's
        book (the front door that produced the degraded answer) — so
        query conservation survives degradation.  A group no tier can
        answer is shed (``None`` slots), counted, never silently
        dropped.
        """
        stats = self.resilience_stats
        responses: List[Optional[QueryResponse]] = [None] * len(requests)
        for (user_id, _, k, _), indices in group_requests(requests).items():
            user = home.pelican.users[user_id]
            histories = [requests[i].history for i in indices]
            model, tier = self._ladder.resolve(
                user_id,
                self._stale_copy,
                home.pelican._general_blob,
                user.local_dataset,
            )
            if model is None:
                stats.shed_queries += len(indices)
                continue
            if tier == "prior":
                results = dispatch_prior_batch(model, histories, k)
            else:
                results, report = dispatch_model_batch(
                    model, home.pelican.spec, histories, k
                )
                home.report.cloud_compute += report
            user.endpoint.record_query_exchange(
                len(indices), channel=home.pelican.channel, label="degraded-query"
            )
            home.report.batches += 1
            home.report.queries += len(indices)
            stats.count_degraded(tier, len(indices))
            stats.full_outage_queries += len(indices)
            for i, top in zip(indices, results):
                responses[i] = QueryResponse(
                    user_id=user_id, time=0.0, seq=i, top_k=tuple(top), degraded=tier
                )
        home._sync_network()
        return responses

    def _stale_copy(self, user_id: int):
        """A still-resident live copy of the user's model, home shard
        first — the ladder's ``stale`` tier (no accounting, no LRU
        effects, no durable-store access: the store is unreachable in a
        full outage)."""
        home_id = self.placement.shard_for(user_id)
        order = [home_id] + [i for i in range(self.num_shards) if i != home_id]
        for shard_id in order:
            model = self.shards[shard_id].registry.peek(user_id)
            if model is not None:
                return model
        return None
