"""Simulated device <-> cloud transport (DESIGN.md §2 substitution).

Pelican is a *distributed* framework: the general model is trained in the
cloud, downloaded to the device for personalization, and (optionally) the
personal model is uploaded back for cloud deployment.  This module models
that channel: every transfer is accounted in bytes and simulated seconds
under a configurable bandwidth/RTT, so examples and benchmarks can report
realistic transfer overheads without a network.

Two granularities are supported:

* :meth:`Channel.upload` / :meth:`Channel.download` — one record per
  transfer, used by the per-user phases (model download, model upload,
  single service queries).
* :meth:`Channel.bulk_upload` / :meth:`Channel.bulk_download` — one
  record summarizing ``count`` identical transfers, used by the fleet
  serving layer (DESIGN.md §7) so a batch of thousands of concurrent
  query exchanges costs O(1) bookkeeping.  Each device still pays its own
  round trip: the simulated seconds are ``count * rtt + total_bytes/bw``,
  matching the sum of the individual transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class TransferRecord:
    """One simulated transfer (or a coalesced batch of identical ones).

    ``count`` is the number of physical transfers this record stands for;
    ``num_bytes`` and ``simulated_seconds`` are totals over all of them.
    """

    direction: str  # "up" (device -> cloud) or "down" (cloud -> device)
    num_bytes: int
    simulated_seconds: float
    label: str = ""
    count: int = 1


@dataclass
class Channel:
    """A device <-> cloud link with bandwidth and round-trip latency.

    Totals (bytes, seconds, transfer count) are maintained as running
    counters, so reading them is O(1) no matter how long the transfer
    history grows — the fleet layer reads them after every event.
    """

    bandwidth_mbps: float = 20.0
    rtt_ms: float = 40.0
    records: List[TransferRecord] = field(default_factory=list)
    _bytes: dict = field(default_factory=lambda: {"up": 0, "down": 0})
    _seconds: float = 0.0
    _count: int = 0

    def _cost_seconds(self, num_bytes: int, count: int) -> float:
        """Link cost of ``count`` round trips carrying ``num_bytes`` total.

        The single definition of the cost model — the fault-injection
        layer prices its retries through this same formula.
        """
        return count * self.rtt_ms / 1000.0 + num_bytes * 8 / (self.bandwidth_mbps * 1e6)

    def _transfer(
        self, direction: str, num_bytes: int, label: str, count: int = 1
    ) -> float:
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if count <= 0:
            raise ValueError("transfer count must be positive")
        seconds = self._cost_seconds(num_bytes, count)
        self.records.append(
            TransferRecord(
                direction=direction,
                num_bytes=num_bytes,
                simulated_seconds=seconds,
                label=label,
                count=count,
            )
        )
        self._bytes[direction] += num_bytes
        self._seconds += seconds
        self._count += count
        return seconds

    def download(self, blob: bytes, label: str = "") -> float:
        """Cloud -> device transfer; returns simulated seconds."""
        return self._transfer("down", len(blob), label)

    def upload(self, blob: bytes, label: str = "") -> float:
        """Device -> cloud transfer; returns simulated seconds."""
        return self._transfer("up", len(blob), label)

    def bulk_download(self, bytes_each: int, count: int, label: str = "") -> float:
        """``count`` identical cloud -> device transfers as one record."""
        return self._transfer("down", bytes_each * count, label, count=count)

    def bulk_upload(self, bytes_each: int, count: int, label: str = "") -> float:
        """``count`` identical device -> cloud transfers as one record."""
        return self._transfer("up", bytes_each * count, label, count=count)

    # ------------------------------------------------------------------
    def checkpoint(self) -> tuple:
        """Snapshot the accounting state (see :meth:`rollback`)."""
        return len(self.records), dict(self._bytes), self._seconds, self._count

    def rollback(self, state: tuple) -> None:
        """Discard every transfer recorded since ``checkpoint``.

        Used by reference/parity re-runs (e.g.
        :meth:`~repro.pelican.fleet.Fleet.serve_looped`) that must not
        leave their traffic in the books.
        """
        num_records, bytes_by_dir, seconds, count = state
        del self.records[num_records:]
        self._bytes = dict(bytes_by_dir)
        self._seconds = seconds
        self._count = count

    # ------------------------------------------------------------------
    @property
    def bytes_down(self) -> int:
        """Total bytes transferred cloud -> device."""
        return self._bytes["down"]

    @property
    def bytes_up(self) -> int:
        """Total bytes transferred device -> cloud."""
        return self._bytes["up"]

    @property
    def transfer_count(self) -> int:
        """Number of physical transfers (bulk records count multiply)."""
        return self._count

    @property
    def total_simulated_seconds(self) -> float:
        """Total simulated link time across both directions."""
        return self._seconds
