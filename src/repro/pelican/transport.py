"""Simulated device <-> cloud transport (DESIGN.md §2 substitution).

Pelican is a *distributed* framework: the general model is trained in the
cloud, downloaded to the device for personalization, and (optionally) the
personal model is uploaded back for cloud deployment.  This module models
that channel: every transfer is accounted in bytes and simulated seconds
under a configurable bandwidth/RTT, so examples and benchmarks can report
realistic transfer overheads without a network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class TransferRecord:
    """One simulated transfer over the channel."""

    direction: str  # "up" (device -> cloud) or "down" (cloud -> device)
    num_bytes: int
    simulated_seconds: float
    label: str = ""


@dataclass
class Channel:
    """A device <-> cloud link with bandwidth and round-trip latency."""

    bandwidth_mbps: float = 20.0
    rtt_ms: float = 40.0
    records: List[TransferRecord] = field(default_factory=list)

    def _transfer(self, direction: str, blob: bytes, label: str) -> float:
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        seconds = self.rtt_ms / 1000.0 + len(blob) * 8 / (self.bandwidth_mbps * 1e6)
        self.records.append(
            TransferRecord(
                direction=direction,
                num_bytes=len(blob),
                simulated_seconds=seconds,
                label=label,
            )
        )
        return seconds

    def download(self, blob: bytes, label: str = "") -> float:
        """Cloud -> device transfer; returns simulated seconds."""
        return self._transfer("down", blob, label)

    def upload(self, blob: bytes, label: str = "") -> float:
        """Device -> cloud transfer; returns simulated seconds."""
        return self._transfer("up", blob, label)

    # ------------------------------------------------------------------
    @property
    def bytes_down(self) -> int:
        return sum(r.num_bytes for r in self.records if r.direction == "down")

    @property
    def bytes_up(self) -> int:
        return sum(r.num_bytes for r in self.records if r.direction == "up")

    @property
    def total_simulated_seconds(self) -> float:
        return sum(r.simulated_seconds for r in self.records)
