"""Deterministic user -> shard placement for the cluster layer (DESIGN.md §9).

A :class:`~repro.pelican.cluster.Cluster` spreads personal models over N
shards; this module decides *which* shard owns each user.  All policies
are seeded and order-stable: the same ``(seed, user set, shard count)``
always produces the identical placement map, so cluster runs stay
bit-reproducible (the determinism tests in
``tests/pelican/test_placement.py`` pin this).

Three pluggable policies:

* **hash** — consistent hashing.  Every shard owns ``vnodes`` points on
  the unit ring, each drawn from ``default_rng((seed, stream, shard,
  replica))``; a user hashes to ``default_rng((seed, stream, user_id))``
  and lands on the first shard point clockwise.  Stateless and pure:
  placement depends only on ``(seed, user_id, num_shards)``, and growing
  the shard count only moves the users whose arc gained a nearer point.
* **least_loaded** — assignment-time balancing: a new user goes to the
  shard currently owning the fewest users (ties break toward the lowest
  shard id).  Deterministic given the onboarding order — which the event
  clock already fixes.
* **sticky** — consistent hashing for the first placement, then pinned:
  once a user has been placed, the mapping never changes, even if the
  ring would now say otherwise.  The pin table is inspectable
  (:attr:`StickyPlacement.pins`) and survives re-lookups verbatim.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Tuple

import numpy as np

#: Stable stream ids for placement RNG derivation (never renumber:
#: committed placement maps and golden cluster runs depend on them).
_STREAM_RING = 11
_STREAM_USER = 12


class PlacementPolicy:
    """Base class: a deterministic ``user_id -> shard`` assignment."""

    name = "base"

    def __init__(self, seed: int, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("a cluster needs at least one shard")
        self.seed = int(seed)
        self.num_shards = int(num_shards)

    def shard_for(self, user_id: int) -> int:
        """The shard owning ``user_id`` (assigning it if unseen)."""
        raise NotImplementedError

    def placement_map(self, user_ids: Iterable[int]) -> Dict[int, int]:
        """The full assignment for a user population.

        Stateful policies assign in sorted-id order, so the map is a pure
        function of ``(seed, user set, shard count)`` — the determinism
        guarantee the tests compare across fresh policy instances.
        """
        return {uid: self.shard_for(uid) for uid in sorted(user_ids)}


class HashPlacement(PlacementPolicy):
    """Consistent hashing over a seeded unit ring."""

    name = "hash"

    def __init__(self, seed: int, num_shards: int, vnodes: int = 64) -> None:
        super().__init__(seed, num_shards)
        if vnodes < 1:
            raise ValueError("need at least one virtual node per shard")
        self.vnodes = vnodes
        points: List[Tuple[float, int]] = []
        for shard in range(num_shards):
            rng = np.random.default_rng((self.seed, _STREAM_RING, shard))
            points.extend((float(pos), shard) for pos in rng.random(vnodes))
        points.sort()
        self._points = points
        self._positions = [pos for pos, _ in points]

    def user_position(self, user_id: int) -> float:
        """The user's stable position on the unit ring."""
        return float(
            np.random.default_rng((self.seed, _STREAM_USER, int(user_id))).random()
        )

    def shard_for(self, user_id: int) -> int:
        idx = bisect_left(self._positions, self.user_position(user_id))
        if idx == len(self._points):
            idx = 0  # wrap past the last point
        return self._points[idx][1]

    def successors(self, user_id: int) -> List[int]:
        """Every shard in ring order from the user's position.

        The first element is the home shard; the rest is the (complete,
        deterministic) failover preference order.
        """
        start = bisect_left(self._positions, self.user_position(user_id))
        seen: List[int] = []
        for offset in range(len(self._points)):
            shard = self._points[(start + offset) % len(self._points)][1]
            if shard not in seen:
                seen.append(shard)
                if len(seen) == self.num_shards:
                    break
        return seen


class StickyPlacement(HashPlacement):
    """Consistent hashing with first-placement pinning."""

    name = "sticky"

    def __init__(self, seed: int, num_shards: int, vnodes: int = 64) -> None:
        super().__init__(seed, num_shards, vnodes=vnodes)
        self.pins: Dict[int, int] = {}

    def shard_for(self, user_id: int) -> int:
        if user_id not in self.pins:
            self.pins[user_id] = super().shard_for(user_id)
        return self.pins[user_id]


class LeastLoadedPlacement(PlacementPolicy):
    """Assignment-time balancing by current per-shard user count."""

    name = "least_loaded"

    def __init__(self, seed: int, num_shards: int) -> None:
        super().__init__(seed, num_shards)
        self.loads: List[int] = [0] * num_shards
        self.pins: Dict[int, int] = {}

    def shard_for(self, user_id: int) -> int:
        if user_id not in self.pins:
            shard = min(range(self.num_shards), key=lambda s: (self.loads[s], s))
            self.loads[shard] += 1
            self.pins[user_id] = shard
        return self.pins[user_id]


#: Policy registry keyed by CLI-facing names.
PLACEMENT_POLICIES = {
    HashPlacement.name: HashPlacement,
    StickyPlacement.name: StickyPlacement,
    LeastLoadedPlacement.name: LeastLoadedPlacement,
}


def make_placement(name: str, seed: int, num_shards: int) -> PlacementPolicy:
    """Instantiate a placement policy by name."""
    try:
        cls = PLACEMENT_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown placement policy {name!r}; "
            f"available: {sorted(PLACEMENT_POLICIES)}"
        ) from None
    return cls(seed, num_shards)
