"""Phase 2 — device-based personalization (paper §V-A2).

The device downloads the general checkpoint, reconstructs the model, and
runs transfer learning on the user's *local* data — the sensitive traces
never leave the device.  A :class:`DeviceProfile` converts measured MACs
into simulated on-device seconds, mimicking the paper's low-end CPU
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import SequenceDataset
from repro.models.architecture import NextLocationModel
from repro.models.personalize import (
    PersonalizationConfig,
    PersonalizationMethod,
    personalize,
)
from repro.nn.profiler import flop_counter
from repro.nn.serialization import deserialize_state
from repro.pelican.cloud import ResourceReport
from repro.pelican.privacy import apply_privacy


@dataclass(frozen=True)
class DeviceProfile:
    """Compute capability of the user's device.

    ``effective_gmacs_per_second`` loosely models a low-end mobile CPU
    running unoptimized training (the paper uses a 2.2 GHz CPU / 8 GB
    machine "to mimic a resource-constrained mobile device").
    """

    name: str = "low-end-phone"
    effective_gmacs_per_second: float = 2.0

    def simulated_seconds(self, macs: int) -> float:
        """Convert a MAC count into simulated seconds on this hardware."""
        return macs / (self.effective_gmacs_per_second * 1e9)


# Hardware presets used by the fleet layer (DESIGN.md §7) to attribute
# simulated seconds per side.  The numbers are deliberately coarse — only
# the relative magnitudes matter for the reproduced comparisons.
LOW_END_PHONE = DeviceProfile()
FLAGSHIP_PHONE = DeviceProfile(name="flagship-phone", effective_gmacs_per_second=8.0)
CLOUD_SERVER = DeviceProfile(name="cloud-server", effective_gmacs_per_second=64.0)


def rebuild_general_model(blob: bytes, rng: np.random.Generator) -> NextLocationModel:
    """Reconstruct the general model from a published checkpoint."""
    state, metadata = deserialize_state(blob)
    model = NextLocationModel(
        input_width=int(metadata["input_width"]),
        num_locations=int(metadata["num_locations"]),
        hidden_size=int(metadata["hidden_size"]),
        num_layers=int(metadata["num_layers"]),
        dropout=float(metadata["dropout"]),
        rng=rng,
    )
    model.load_state_dict(state)
    model.eval()
    return model


class DevicePersonalizer:
    """Runs transfer-learning personalization on the user's device."""

    def __init__(
        self,
        config: PersonalizationConfig,
        profile: DeviceProfile | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.profile = profile or DeviceProfile()
        self.seed = seed

    def personalize(
        self,
        general_blob: bytes,
        local_dataset: SequenceDataset,
        method: PersonalizationMethod,
        privacy_temperature: Optional[float] = None,
    ) -> Tuple[NextLocationModel, ResourceReport, float]:
        """Personalize from a downloaded checkpoint on local data.

        Returns ``(personal_model, compute_report, simulated_device_seconds)``.
        The privacy enhancement (if a temperature is supplied) is attached
        here, on-device, before any deployment.
        """
        rng = np.random.default_rng(self.seed)
        with flop_counter() as counter:
            general = rebuild_general_model(general_blob, rng)
            personal, _ = personalize(general, local_dataset, method, self.config, rng)
        if privacy_temperature is not None:
            apply_privacy(personal, privacy_temperature)
        report = ResourceReport.from_counter(counter)
        return personal, report, self.profile.simulated_seconds(report.macs)
