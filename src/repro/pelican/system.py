"""The Pelican orchestrator (paper Figure 4).

Ties the four phases together for a population of users:

1. cloud-based initial training of ``M_G``;
2. device-based personalization of ``M_P`` per user (with the privacy
   enhancement attached on device);
3. deployment, local or cloud;
4. periodic personal-model updates.

This is the per-user end-to-end entry point; each phase is also usable
standalone (``CloudTrainer``, ``DevicePersonalizer``, ...).  For serving
many users at once — batched query dispatch, the cloud model registry,
the deterministic event clock — layer :class:`repro.pelican.fleet.Fleet`
on top (DESIGN.md §7, ``examples/pelican_service.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import SequenceDataset
from repro.data.features import FeatureSpec, SessionFeatures
from repro.models.general import GeneralModelConfig
from repro.models.personalize import PersonalizationConfig, PersonalizationMethod
from repro.pelican.cloud import CloudTrainer, ResourceReport
from repro.pelican.deployment import (
    DeploymentMode,
    ServiceEndpoint,
    deploy_cloud,
    deploy_cloud_delta,
    deploy_local,
)
from repro.pelican.device import DevicePersonalizer, DeviceProfile
from repro.pelican.privacy import DEFAULT_PRIVACY_TEMPERATURE
from repro.pelican.transport import Channel
from repro.pelican.updates import update_personal_model


@dataclass
class PelicanConfig:
    """System-wide configuration."""

    general: GeneralModelConfig = field(default_factory=GeneralModelConfig)
    personalization: PersonalizationConfig = field(default_factory=PersonalizationConfig)
    method: PersonalizationMethod = PersonalizationMethod.TL_FE
    privacy_temperature: float = DEFAULT_PRIVACY_TEMPERATURE
    deployment: DeploymentMode = DeploymentMode.LOCAL
    seed: int = 0
    #: Ship cloud *re*deploys as weight deltas against the prior blob
    #: (DESIGN.md §14).  Off by default: delta uploads book fewer network
    #: bytes, so enabling this legitimately moves network signatures.
    delta_updates: bool = False


@dataclass
class OnboardedUser:
    """A user with a deployed personal model."""

    user_id: int
    endpoint: ServiceEndpoint
    personalization_report: ResourceReport
    simulated_device_seconds: float
    local_dataset: SequenceDataset


class Pelican:
    """End-to-end privacy-preserving personalization framework."""

    def __init__(self, spec: FeatureSpec, config: Optional[PelicanConfig] = None) -> None:
        self.spec = spec
        self.config = config or PelicanConfig()
        self.cloud = CloudTrainer(self.config.general, seed=self.config.seed)
        self.channel = Channel()
        self._general_blob: Optional[bytes] = None
        self.users: Dict[int, OnboardedUser] = {}
        #: Last uploaded compact blob per cloud user — the baseline the
        #: next delta redeploy encodes against.  Only populated when
        #: ``config.delta_updates`` is on.
        self._deployed_blobs: Dict[int, bytes] = {}

    # ------------------------------------------------------------------
    # Phase 1
    # ------------------------------------------------------------------
    def initial_training(self, contributor_dataset: SequenceDataset) -> ResourceReport:
        """Train and publish the general model in the cloud."""
        self.cloud.train(contributor_dataset)
        self._general_blob = self.cloud.publish()
        assert self.cloud.training_report is not None
        return self.cloud.training_report

    # ------------------------------------------------------------------
    # Phases 2 & 3
    # ------------------------------------------------------------------
    def onboard_user(
        self,
        user_id: int,
        local_dataset: SequenceDataset,
        privacy_temperature: Optional[float] = None,
        method: Optional[PersonalizationMethod] = None,
        deployment: Optional[DeploymentMode] = None,
        profile: Optional[DeviceProfile] = None,
    ) -> OnboardedUser:
        """Personalize on device and deploy for one user.

        ``privacy_temperature`` is the user's privacy tuner (defaults to
        the system default; the value is never revealed to the provider).
        ``profile`` models the user's device hardware (defaults to a
        low-end phone) and only affects the simulated-seconds conversion.
        """
        if self._general_blob is None:
            raise RuntimeError("run initial_training before onboarding users")
        temperature = (
            self.config.privacy_temperature
            if privacy_temperature is None
            else privacy_temperature
        )
        self.channel.download(self._general_blob, label=f"general-model->user{user_id}")
        personalizer = DevicePersonalizer(
            self.config.personalization,
            profile=profile or DeviceProfile(),
            seed=self.config.seed + user_id + 1,
        )
        personal, report, device_seconds = personalizer.personalize(
            self._general_blob,
            local_dataset,
            method or self.config.method,
            privacy_temperature=temperature,
        )
        mode = deployment or self.config.deployment
        rng = np.random.default_rng(self.config.seed + user_id + 10_000)
        if mode == DeploymentMode.CLOUD:
            if self.config.delta_updates:
                # First deploy ships the full blob either way; remember it
                # so the next redeploy can delta-encode against it.
                endpoint, _, stored = deploy_cloud_delta(
                    personal, self.spec, self.channel, rng, None
                )
                self._deployed_blobs[user_id] = stored
            else:
                endpoint, _ = deploy_cloud(personal, self.spec, self.channel, rng)
        else:
            endpoint = deploy_local(personal, self.spec)
        user = OnboardedUser(
            user_id=user_id,
            endpoint=endpoint,
            personalization_report=report,
            simulated_device_seconds=device_seconds,
            local_dataset=local_dataset,
        )
        self.users[user_id] = user
        return user

    # ------------------------------------------------------------------
    # Service queries
    # ------------------------------------------------------------------
    def query(
        self, user_id: int, history: Sequence[SessionFeatures], k: int = 3
    ) -> List[Tuple[int, float]]:
        """Top-k next-location prediction for an onboarded user."""
        return self.users[user_id].endpoint.top_k(history, k)

    def query_batch(
        self,
        user_id: int,
        histories: Sequence[Sequence[SessionFeatures]],
        k: int = 3,
    ) -> List[List[Tuple[int, float]]]:
        """Batched top-k predictions for one user's concurrent queries.

        All windows are answered in one fused inference dispatch
        (:meth:`~repro.pelican.deployment.ServiceEndpoint.top_k_batch`);
        results are identical to calling :meth:`query` per window.  For
        multi-user batched serving use :class:`repro.pelican.fleet.Fleet`.
        """
        return self.users[user_id].endpoint.top_k_batch(histories, k)

    # ------------------------------------------------------------------
    # Phase 4
    # ------------------------------------------------------------------
    def update_user(self, user_id: int, new_dataset: SequenceDataset) -> OnboardedUser:
        """Incrementally refresh a user's personal model and redeploy."""
        user = self.users[user_id]
        rng = np.random.default_rng(self.config.seed + user_id + 20_000)
        result = update_personal_model(
            user.endpoint.predictor.model, new_dataset, self.config.personalization, rng
        )
        mode = user.endpoint.mode
        if mode == DeploymentMode.CLOUD:
            if self.config.delta_updates:
                endpoint, _, stored = deploy_cloud_delta(
                    result.model,
                    self.spec,
                    self.channel,
                    rng,
                    self._deployed_blobs.get(user_id),
                )
                self._deployed_blobs[user_id] = stored
            else:
                endpoint, _ = deploy_cloud(result.model, self.spec, self.channel, rng)
        else:
            endpoint = deploy_local(result.model, self.spec)
        # The user keeps their query ledger across redeploys: an update
        # swaps the model behind the endpoint, it doesn't reset the books.
        endpoint.stats = user.endpoint.stats
        merged = SequenceDataset(
            spec=user.local_dataset.spec,
            windows=[*user.local_dataset.windows, *new_dataset.windows],
        )
        refreshed = OnboardedUser(
            user_id=user_id,
            endpoint=endpoint,
            personalization_report=result.report,
            simulated_device_seconds=user.simulated_device_seconds,
            local_dataset=merged,
        )
        self.users[user_id] = refreshed
        return refreshed

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def overhead_summary(self) -> Dict[str, float]:
        """Cloud vs device compute, for the §V-C2 comparison."""
        cloud_report = self.cloud.training_report
        device_cycles = [
            u.personalization_report.estimated_billion_cycles for u in self.users.values()
        ]
        return {
            "cloud_billion_cycles": (
                cloud_report.estimated_billion_cycles if cloud_report else 0.0
            ),
            "cloud_wall_seconds": cloud_report.wall_seconds if cloud_report else 0.0,
            "device_mean_billion_cycles": float(np.mean(device_cycles)) if device_cycles else 0.0,
            "device_mean_simulated_seconds": (
                float(np.mean([u.simulated_device_seconds for u in self.users.values()]))
                if self.users
                else 0.0
            ),
            "channel_bytes_down": float(self.channel.bytes_down),
            "channel_bytes_up": float(self.channel.bytes_up),
        }
