"""Phase 3 — model deployment (paper §V-A3).

Two deployment modes:

* **local** — the personal model stays on the device; the service invokes
  it through an on-device API.  Minimizes what the provider learns.
* **cloud** — the personal model (with its privacy layer already attached)
  is uploaded to the provider's servers.  The provider gains unlimited
  black-box query access, which is exactly the threat the privacy layer is
  designed to survive.

Both modes expose the same :class:`ServiceEndpoint` interface so the mobile
service code is deployment agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.features import FeatureSpec, SessionFeatures
from repro.models.architecture import NextLocationModel
from repro.models.predictor import NextLocationPredictor
from repro.nn.serialization import deserialize_state, serialize_state
from repro.pelican.transport import Channel


class DeploymentMode(str, Enum):
    """Where the personal model executes."""

    LOCAL = "local"
    CLOUD = "cloud"


@dataclass
class QueryStats:
    """Accounting of service queries against one endpoint."""

    queries: int = 0
    simulated_network_seconds: float = 0.0


class ServiceEndpoint:
    """The query interface a mobile service sees for one user's model."""

    def __init__(
        self,
        predictor: NextLocationPredictor,
        mode: DeploymentMode,
        channel: Optional[Channel] = None,
    ) -> None:
        if mode == DeploymentMode.CLOUD and channel is None:
            raise ValueError("cloud deployment requires a channel")
        self.predictor = predictor
        self.mode = mode
        self.channel = channel
        self.stats = QueryStats()

    def top_k(self, history: Sequence[SessionFeatures], k: int) -> List[Tuple[int, float]]:
        """Top-k next-location prediction with confidences.

        Local deployments pay a round trip only when the *service backend*
        needs the answer (modeled as one small up/down exchange); cloud
        deployments run server side, so the device pays the round trip.
        Either way one RTT-sized exchange is recorded.
        """
        self.stats.queries += 1
        if self.channel is not None:
            payload = b"x" * 256  # a context upload / prediction download
            self.stats.simulated_network_seconds += self.channel.upload(
                payload, label="query-context"
            )
            self.stats.simulated_network_seconds += self.channel.download(
                payload, label="query-result"
            )
        return self.predictor.top_k(history, k)

    def confidences(self, history: Sequence[SessionFeatures]) -> np.ndarray:
        """Full confidence vector (what the provider can always observe)."""
        self.stats.queries += 1
        return self.predictor.confidences(history)


def deploy_local(
    model: NextLocationModel, spec: FeatureSpec, channel: Optional[Channel] = None
) -> ServiceEndpoint:
    """Keep the model on the device."""
    return ServiceEndpoint(NextLocationPredictor(model, spec), DeploymentMode.LOCAL, channel)


def deploy_cloud(
    model: NextLocationModel,
    spec: FeatureSpec,
    channel: Channel,
    rng: np.random.Generator,
) -> Tuple[ServiceEndpoint, float]:
    """Upload the personal model to the cloud and serve from there.

    The model is serialized, shipped over the channel, and reconstructed
    server side; returns the endpoint and the simulated upload seconds.
    The privacy temperature travels with the model *configuration* but its
    value is chosen by the user and applied before upload — the provider
    only ever holds the already-defended model.
    """
    blob = serialize_state(
        model.state_dict(),
        metadata={
            "input_width": model.input_width,
            "num_locations": model.num_locations,
            "hidden_size": model.hidden_size,
            "num_layers": model.lstm.num_layers,
            "dropout": model.lstm.dropout_p,
            "has_surplus": model.extra is not None,
            "temperature": model.privacy_temperature,
        },
    )
    upload_seconds = channel.upload(blob, label="personal-model")
    state, metadata = deserialize_state(blob)
    server_model = NextLocationModel(
        input_width=int(metadata["input_width"]),
        num_locations=int(metadata["num_locations"]),
        hidden_size=int(metadata["hidden_size"]),
        num_layers=int(metadata["num_layers"]),
        dropout=float(metadata["dropout"]),
        rng=rng,
    )
    if metadata["has_surplus"]:
        server_model.add_surplus_lstm(rng)
    server_model.load_state_dict(state)
    server_model.set_privacy_temperature(float(metadata["temperature"]))
    server_model.eval()
    endpoint = ServiceEndpoint(
        NextLocationPredictor(server_model, spec), DeploymentMode.CLOUD, channel
    )
    return endpoint, upload_seconds
