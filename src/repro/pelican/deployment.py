"""Phase 3 — model deployment (paper §V-A3).

Two deployment modes:

* **local** — the personal model stays on the device; the service invokes
  it through an on-device API.  Minimizes what the provider learns.
* **cloud** — the personal model (with its privacy layer already attached)
  is uploaded to the provider's servers.  The provider gains unlimited
  black-box query access, which is exactly the threat the privacy layer is
  designed to survive.

Both modes expose the same :class:`ServiceEndpoint` interface so the mobile
service code is deployment agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.features import FeatureSpec, SessionFeatures
from repro.models.architecture import NextLocationModel
from repro.models.predictor import NextLocationPredictor
from repro.nn import init as nn_init
from repro.nn.serialization import (
    deserialize_state,
    encode_compact,
    serialize_state,
    state_delta,
)
from repro.pelican.transport import Channel


class DeploymentMode(str, Enum):
    """Where the personal model executes."""

    LOCAL = "local"
    CLOUD = "cloud"


#: Simulated payload size of one service query exchange (context upload or
#: prediction download).  Shared by single-query and fleet batched serving
#: so both paths account identical network traffic.
QUERY_PAYLOAD_BYTES = 256


def serialize_personal_model(model: NextLocationModel) -> bytes:
    """Serialize a personal model with everything needed to rebuild it.

    The privacy temperature travels with the model *configuration* but its
    value is chosen by the user and applied before upload — the provider
    only ever holds the already-defended model.
    """
    return serialize_state(
        model.state_dict(),
        metadata={
            "input_width": model.input_width,
            "num_locations": model.num_locations,
            "hidden_size": model.hidden_size,
            "num_layers": model.lstm.num_layers,
            "dropout": model.lstm.dropout_p,
            "has_surplus": model.extra is not None,
            "temperature": model.privacy_temperature,
        },
    )


def rebuild_personal_model(blob: bytes, rng: np.random.Generator) -> NextLocationModel:
    """Inverse of :func:`serialize_personal_model`.

    The rebuilt model is bit-identical to the serialized one: the state
    dict round-trips exactly, so a registry cold load (DESIGN.md §7)
    answers queries identically to the still-resident original.

    Construction runs under :func:`repro.nn.init.skip_init` — every tensor
    is about to be overwritten by ``load_state_dict``, so paying the
    seeded random init would be pure waste (DESIGN.md §14).  Accepts
    format-1 (npz) and format-2 (compact) blobs alike.
    """
    state, metadata = deserialize_state(blob)
    with nn_init.skip_init():
        model = NextLocationModel(
            input_width=int(metadata["input_width"]),
            num_locations=int(metadata["num_locations"]),
            hidden_size=int(metadata["hidden_size"]),
            num_layers=int(metadata["num_layers"]),
            dropout=float(metadata["dropout"]),
            rng=rng,
        )
        if metadata["has_surplus"]:
            model.add_surplus_lstm(rng)
    model.load_state_dict(state)
    model.set_privacy_temperature(float(metadata["temperature"]))
    model.eval()
    return model


@dataclass
class QueryStats:
    """Accounting of service queries against one endpoint."""

    queries: int = 0
    simulated_network_seconds: float = 0.0


def account_query_exchange(
    stats: QueryStats, count: int, channel: Optional[Channel], label: str = "query"
) -> float:
    """Book ``count`` query exchanges into ``stats`` over ``channel``.

    The single definition of what one query exchange costs: a counter
    bump plus — when a channel carries the traffic — one coalesced
    context-upload and result-download per direction.
    :meth:`ServiceEndpoint.record_query_exchange` delegates here; the
    parallel cluster's workers (DESIGN.md §13) call it directly with a
    scratch ``QueryStats`` when the home endpoint lives in another
    process, so both sides book bit-identically.  Returns the simulated
    network seconds added.
    """
    stats.queries += count
    if channel is None or count == 0:
        return 0.0
    seconds = channel.bulk_upload(
        QUERY_PAYLOAD_BYTES, count, label=f"{label}-context"
    ) + channel.bulk_download(QUERY_PAYLOAD_BYTES, count, label=f"{label}-result")
    stats.simulated_network_seconds += seconds
    return seconds


class ServiceEndpoint:
    """The query interface a mobile service sees for one user's model."""

    def __init__(
        self,
        predictor: NextLocationPredictor,
        mode: DeploymentMode,
        channel: Optional[Channel] = None,
    ) -> None:
        if mode == DeploymentMode.CLOUD and channel is None:
            raise ValueError("cloud deployment requires a channel")
        self.predictor = predictor
        self.mode = mode
        self.channel = channel
        self.stats = QueryStats()

    def top_k(self, history: Sequence[SessionFeatures], k: int) -> List[Tuple[int, float]]:
        """Top-k next-location prediction with confidences.

        Local deployments pay a round trip only when the *service backend*
        needs the answer (modeled as one small up/down exchange); cloud
        deployments run server side, so the device pays the round trip.
        Either way one RTT-sized exchange is recorded.
        """
        self.record_query_exchange(1)
        return self.predictor.top_k(history, k)

    def record_query_exchange(
        self, count: int, channel: Optional[Channel] = None, label: str = "query"
    ) -> float:
        """Account ``count`` concurrent query exchanges on this endpoint.

        Bumps the query counter and — when a channel is available —
        records one coalesced context-upload and result-download per
        direction (each device pays its own round trip).  This is the
        single accounting boundary for every serving path: the per-query
        loop, batched serving (including the fleet's registry-served
        cloud dispatches), and cluster failover — which passes the
        failover shard's ``channel`` (the link that actually carried the
        traffic) and its own ``label``.  Returns the simulated network
        seconds added.
        """
        return account_query_exchange(
            self.stats,
            count,
            channel if channel is not None else self.channel,
            label,
        )

    def top_k_batch(
        self, histories: Sequence[Sequence[SessionFeatures]], k: int
    ) -> List[List[Tuple[int, float]]]:
        """Batched top-k for many concurrent queries against one model.

        All histories are encoded into one batch and answered through the
        graph-free fused inference path in a single dispatch (one GEMM
        stack for the whole group, DESIGN.md §7) — the serving fast path
        the fleet layer uses.  Predictions match calling :meth:`top_k`
        once per history (identical rankings, confidences equal to within
        float round-off).  Network accounting matches too:
        each query still pays its own round-trip-sized exchange, recorded
        as one coalesced bulk transfer per direction.
        """
        if not histories:
            return []
        self.record_query_exchange(len(histories))
        return self.predictor.top_k_batch(histories, k)

    def confidences(self, history: Sequence[SessionFeatures]) -> np.ndarray:
        """Full confidence vector (what the provider can always observe)."""
        self.stats.queries += 1
        return self.predictor.confidences(history)


def deploy_local(
    model: NextLocationModel, spec: FeatureSpec, channel: Optional[Channel] = None
) -> ServiceEndpoint:
    """Keep the model on the device."""
    return ServiceEndpoint(NextLocationPredictor(model, spec), DeploymentMode.LOCAL, channel)


def deploy_cloud(
    model: NextLocationModel,
    spec: FeatureSpec,
    channel: Channel,
    rng: np.random.Generator,
) -> Tuple[ServiceEndpoint, float]:
    """Upload the personal model to the cloud and serve from there.

    The model is serialized (:func:`serialize_personal_model`), shipped
    over the channel, and reconstructed server side; returns the endpoint
    and the simulated upload seconds.
    """
    blob = serialize_personal_model(model)
    upload_seconds = channel.upload(blob, label="personal-model")
    server_model = rebuild_personal_model(blob, rng)
    endpoint = ServiceEndpoint(
        NextLocationPredictor(server_model, spec), DeploymentMode.CLOUD, channel
    )
    return endpoint, upload_seconds


def serialize_personal_model_delta(
    model: NextLocationModel, prior_blob: bytes
) -> Tuple[bytes, bytes]:
    """Delta-encode a redeploy against the previously deployed blob.

    Returns ``(delta_blob, full_blob)``: the delta carries only the weight
    bytes that changed since ``prior_blob`` (any format) and is what the
    transport ships; the full compact blob is what the store keeps —
    :func:`repro.nn.serialization.apply_state_delta` reconstitutes it
    byte-for-byte from ``prior_blob``'s compact form plus the delta.
    """
    full = encode_compact(serialize_personal_model(model))
    delta = state_delta(full, encode_compact(prior_blob))
    return delta, full


def deploy_cloud_delta(
    model: NextLocationModel,
    spec: FeatureSpec,
    channel: Channel,
    rng: np.random.Generator,
    prior_blob: Optional[bytes],
) -> Tuple[ServiceEndpoint, float, bytes]:
    """Redeploy to the cloud, shipping only changed weight bytes.

    Opt-in variant of :func:`deploy_cloud` (``PelicanConfig.delta_updates``):
    with a prior blob the channel books the delta's size instead of the
    full checkpoint's, which is exactly why it is off by default — network
    signatures move, by design.  Without a prior blob this is a first
    deploy and degenerates to the full upload.  Returns the endpoint, the
    upload seconds, and the full compact blob to remember for the next
    delta.
    """
    if prior_blob is None:
        endpoint, upload_seconds = deploy_cloud(model, spec, channel, rng)
        return endpoint, upload_seconds, encode_compact(serialize_personal_model(model))
    delta, full = serialize_personal_model_delta(model, prior_blob)
    upload_seconds = channel.upload(delta, label="personal-model-delta")
    server_model = rebuild_personal_model(full, rng)
    endpoint = ServiceEndpoint(
        NextLocationPredictor(server_model, spec), DeploymentMode.CLOUD, channel
    )
    return endpoint, upload_seconds, full
