"""Fleet-scale serving on top of :class:`~repro.pelican.system.Pelican`
(DESIGN.md §7).

The orchestrator in ``system.py`` onboards and answers one user at a
time; this module is the production-shaped layer above it that simulates
thousands of devices against one cloud:

* **Batched multi-user serving** — concurrent query requests are grouped
  per personal model (per user, window length, and k) and each group is
  dispatched through the graph-free fused inference path in *one* GEMM
  stack (:meth:`~repro.models.predictor.NextLocationPredictor.top_k_batch`)
  instead of one dispatch per query.  Predictions are identical to the
  per-query loop (rankings exactly, confidences to float round-off);
  only the cost changes.
* **Cloud model registry** — cloud-deployed personal models live in a
  capacity-bounded :class:`~repro.pelican.registry.ModelRegistry` with
  LRU eviction and serialization-backed cold loads, modeling a cloud that
  cannot keep every personal model hot.
* **Deterministic event clock** — interleaved onboard/update/query
  workloads are described by a :class:`FleetSchedule` and replayed in
  ``(time, seq)`` order; consecutive queries sharing a clock tick form
  one serving batch.  The same seed and schedule always reproduce the
  same responses, the same per-side MAC totals, and the same registry
  eviction sequence.
* **Per-side accounting** — every event's MACs are attributed to the
  side that executed it (cloud for training, serving of cloud-deployed
  models, and cold loads; device for personalization, updates, and
  serving of locally-deployed models) and converted to simulated seconds
  with the side's :class:`~repro.pelican.device.DeviceProfile`.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.data.dataset import SequenceDataset
from repro.data.features import SessionFeatures
from repro.models.predictor import NextLocationPredictor
from repro.nn.profiler import flop_counter
from repro.pelican.cloud import ResourceReport
from repro.pelican.deployment import DeploymentMode
from repro.pelican.device import CLOUD_SERVER, LOW_END_PHONE, DeviceProfile
from repro.pelican.registry import ModelRegistry, RegistryStats
from repro.pelican.system import OnboardedUser, Pelican
from repro.models.personalize import PersonalizationMethod


# ----------------------------------------------------------------------
# Workload description
# ----------------------------------------------------------------------
class EventKind(str, enum.Enum):
    """What a fleet event asks the system to do."""

    ONBOARD = "onboard"
    UPDATE = "update"
    QUERY = "query"


@dataclass(frozen=True)
class QueryRequest:
    """One device asking for its user's next-location prediction."""

    user_id: int
    history: Tuple[SessionFeatures, ...]
    k: int = 3


@dataclass(frozen=True)
class QueryResponse:
    """The served answer, tagged with the originating event."""

    user_id: int
    time: float
    seq: int
    top_k: Tuple[Tuple[int, float], ...]


@dataclass(frozen=True)
class FleetEvent:
    """One scheduled action.  ``seq`` breaks same-time ties (DESIGN.md §7)."""

    time: float
    seq: int
    kind: EventKind
    user_id: int
    payload: Any = None
    options: Tuple[Tuple[str, Any], ...] = ()


class FleetSchedule:
    """A deterministic workload: events replayed in ``(time, seq)`` order.

    ``seq`` is assigned at build time, so two schedules constructed by the
    same code are identical — including how same-time ties resolve.
    Consecutive QUERY events sharing a clock tick are served as one batch;
    an ONBOARD/UPDATE at the same tick splits the batch at its position.
    """

    def __init__(self) -> None:
        self._events: List[FleetEvent] = []
        self._seqs: set = set()
        self._next_seq = 0

    def __len__(self) -> int:
        return len(self._events)

    def add(self, event: FleetEvent) -> "FleetSchedule":
        """Insert a pre-built event, enforcing ``seq`` uniqueness.

        Same-time ties are broken *only* by ``seq``, so two events sharing
        one would replay in dict/list-iteration order — silently, and
        differently after an innocent refactor.  The chaos layer
        (:meth:`~repro.pelican.chaos.ChaosFleet.perturb`) rebuilds
        schedules through this entry point with the original sequence
        numbers preserved.
        """
        if event.seq in self._seqs:
            raise ValueError(
                f"duplicate event seq {event.seq}: same-time ordering is defined "
                "by seq alone, so every event in a schedule needs a unique one"
            )
        self._seqs.add(event.seq)
        self._next_seq = max(self._next_seq, event.seq + 1)
        self._events.append(event)
        return self

    def onboard(
        self, time: float, user_id: int, dataset: SequenceDataset, **options: Any
    ) -> "FleetSchedule":
        """Schedule a device onboarding (options mirror ``Fleet.onboard``)."""
        self._append(EventKind.ONBOARD, time, user_id, dataset, options)
        return self

    def update(
        self, time: float, user_id: int, dataset: SequenceDataset
    ) -> "FleetSchedule":
        """Schedule an incremental personal-model update."""
        self._append(EventKind.UPDATE, time, user_id, dataset, {})
        return self

    def query(
        self,
        time: float,
        user_id: int,
        history: Sequence[SessionFeatures],
        k: int = 3,
    ) -> "FleetSchedule":
        """Schedule one service query."""
        self._append(EventKind.QUERY, time, user_id, tuple(history), {"k": k})
        return self

    def _append(
        self,
        kind: EventKind,
        time: float,
        user_id: int,
        payload: Any,
        options: Dict[str, Any],
    ) -> None:
        self.add(
            FleetEvent(
                time=float(time),
                # Monotone counter, not len(): builder calls interleave
                # safely with pre-built events inserted through add().
                seq=self._next_seq,
                kind=kind,
                user_id=user_id,
                payload=payload,
                options=tuple(sorted(options.items())),
            )
        )

    def ordered(self) -> List[FleetEvent]:
        """Events in replay order."""
        return sorted(self._events, key=lambda e: (e.time, e.seq))


# ----------------------------------------------------------------------
# Fleet-level accounting
# ----------------------------------------------------------------------
@dataclass
class FleetReport:
    """Cumulative per-side cost of everything a :class:`Fleet` has done.

    ``cloud_compute`` / ``device_compute`` sum MACs on each side;
    ``*_simulated_seconds`` convert them through the side's hardware
    profile (plus registry cold-load fetch time on the cloud side and the
    per-user personalization estimates on the device side).
    ``wall_seconds`` inside the embedded reports is measured, so
    :meth:`signature` — the projection the determinism guarantee covers —
    excludes it.
    """

    cloud_profile: DeviceProfile
    device_profile: DeviceProfile
    cloud_compute: ResourceReport = field(default_factory=ResourceReport.zero)
    device_compute: ResourceReport = field(default_factory=ResourceReport.zero)
    device_simulated_seconds: float = 0.0
    network_seconds: float = 0.0
    network_bytes_up: int = 0
    network_bytes_down: int = 0
    onboards: int = 0
    updates: int = 0
    queries: int = 0
    batches: int = 0
    registry: RegistryStats = field(default_factory=RegistryStats)

    @property
    def cloud_simulated_seconds(self) -> float:
        """Cloud compute time plus checkpoint-store fetch time."""
        return (
            self.cloud_profile.simulated_seconds(self.cloud_compute.macs)
            + self.registry.simulated_load_seconds
        )

    @property
    def mean_batch_size(self) -> float:
        return self.queries / self.batches if self.batches else 0.0

    def signature(self) -> Dict[str, Any]:
        """The deterministic projection: identical for identical runs.

        Same seed + same schedule ⇒ identical signature (and identical
        responses); only wall-clock measurements are excluded.
        """
        return {
            "cloud_macs": self.cloud_compute.macs,
            "device_macs": self.device_compute.macs,
            "cloud_simulated_seconds": self.cloud_simulated_seconds,
            "device_simulated_seconds": self.device_simulated_seconds,
            "network_seconds": self.network_seconds,
            "network_bytes_up": self.network_bytes_up,
            "network_bytes_down": self.network_bytes_down,
            "onboards": self.onboards,
            "updates": self.updates,
            "queries": self.queries,
            "batches": self.batches,
            "registry_hits": self.registry.hits,
            "registry_cold_loads": self.registry.cold_loads,
            "registry_evictions": self.registry.evictions,
            "registry_load_seconds": self.registry.simulated_load_seconds,
            "eviction_log": tuple(self.registry.eviction_log),
        }


# ----------------------------------------------------------------------
# The fleet itself
# ----------------------------------------------------------------------
class Fleet:
    """Many simulated devices served by one Pelican cloud.

    Wraps a :class:`~repro.pelican.system.Pelican` (which keeps per-user
    truth: endpoints, datasets, the shared channel) and adds the serving
    machinery: the model registry for cloud deployments, batched query
    dispatch, the event clock, and per-side accounting.

    Parameters
    ----------
    pelican:
        The underlying orchestrator.  Its general model must be trained
        (``initial_training``) before devices onboard — do it directly or
        via :meth:`train_cloud` to have the cost attributed to the fleet
        report.
    registry_capacity:
        Live-model budget of the cloud registry (``None`` = unbounded).
    cloud_profile / device_profile:
        Hardware models used to convert per-side MACs into simulated
        seconds; ``device_profile`` is also the default onboarding device.
    """

    def __init__(
        self,
        pelican: Pelican,
        registry_capacity: Optional[int] = 64,
        cloud_profile: DeviceProfile = CLOUD_SERVER,
        device_profile: DeviceProfile = LOW_END_PHONE,
    ) -> None:
        self.pelican = pelican
        self.registry = self._make_registry(registry_capacity, pelican.config.seed)
        self.cloud_profile = cloud_profile
        self.device_profile = device_profile
        self._profiles: Dict[int, DeviceProfile] = {}
        self.report = FleetReport(
            cloud_profile=cloud_profile,
            device_profile=device_profile,
            registry=self.registry.stats,
        )
        # Adopt users already onboarded through the bare Pelican API:
        # cloud-deployed models must be in the registry before serving.
        for user_id, user in pelican.users.items():
            if user.endpoint.mode == DeploymentMode.CLOUD:
                self.registry.register(user_id, user.endpoint.predictor.model)

    def _make_registry(self, capacity: Optional[int], seed: int) -> ModelRegistry:
        """Registry factory hook; the chaos layer substitutes a flaky one."""
        return ModelRegistry(capacity=capacity, seed=seed)

    # ------------------------------------------------------------------
    # Lifecycle events
    # ------------------------------------------------------------------
    def train_cloud(self, contributor_dataset: SequenceDataset) -> ResourceReport:
        """Phase-1 general-model training, attributed to the cloud side."""
        report = self.pelican.initial_training(contributor_dataset)
        self.report.cloud_compute += report
        self._sync_network()
        return report

    def onboard(
        self,
        user_id: int,
        dataset: SequenceDataset,
        privacy_temperature: Optional[float] = None,
        method: Optional[PersonalizationMethod] = None,
        deployment: Optional[DeploymentMode] = None,
        profile: Optional[DeviceProfile] = None,
    ) -> OnboardedUser:
        """Onboard one device: personalize, deploy, register if cloud-mode."""
        profile = profile or self.device_profile
        user = self.pelican.onboard_user(
            user_id,
            dataset,
            privacy_temperature=privacy_temperature,
            method=method,
            deployment=deployment,
            profile=profile,
        )
        self._profiles[user_id] = profile
        self.report.onboards += 1
        self.report.device_compute += user.personalization_report
        self.report.device_simulated_seconds += user.simulated_device_seconds
        if user.endpoint.mode == DeploymentMode.CLOUD:
            self.registry.register(user_id, user.endpoint.predictor.model)
        self._sync_network()
        return user

    def update(self, user_id: int, dataset: SequenceDataset) -> OnboardedUser:
        """Phase-4 incremental update, attributed to the user's device."""
        refreshed = self.pelican.update_user(user_id, dataset)
        profile = self._profiles.get(user_id, self.device_profile)
        self.report.updates += 1
        self.report.device_compute += refreshed.personalization_report
        self.report.device_simulated_seconds += profile.simulated_seconds(
            refreshed.personalization_report.macs
        )
        if refreshed.endpoint.mode == DeploymentMode.CLOUD:
            self.registry.register(user_id, refreshed.endpoint.predictor.model)
        self._sync_network()
        return refreshed

    # ------------------------------------------------------------------
    # Query serving
    # ------------------------------------------------------------------
    def serve(self, requests: Sequence[QueryRequest]) -> List[QueryResponse]:
        """Serve concurrent requests batched per model.

        Requests are grouped by ``(user, window length, k)`` in arrival
        order; each group runs as one fused inference dispatch.  Answers
        come back in request order and match :meth:`serve_looped` on the
        same requests (identical rankings; confidences to within float
        round-off — see DESIGN.md §7).
        """
        responses: List[Optional[QueryResponse]] = [None] * len(requests)
        groups: "OrderedDict[Tuple[int, int, int], List[int]]" = OrderedDict()
        for idx, request in enumerate(requests):
            key = (request.user_id, len(request.history), request.k)
            groups.setdefault(key, []).append(idx)
        for (user_id, _, k), indices in groups.items():
            user = self.pelican.users[user_id]
            histories = [requests[i].history for i in indices]
            results = self._dispatch(user, user_id, histories, k)
            for i, top in zip(indices, results):
                responses[i] = QueryResponse(
                    user_id=user_id, time=0.0, seq=i, top_k=tuple(top)
                )
            self.report.batches += 1
            self.report.queries += len(indices)
        self._sync_network()
        return [r for r in responses if r is not None]

    def serve_looped(self, requests: Sequence[QueryRequest]) -> List[QueryResponse]:
        """Reference implementation: one endpoint query per request.

        This is the seed serving path (``Pelican.query`` in a loop), kept
        as the executable specification for :meth:`serve` and as the slow
        side of the fleet benchmark.  It is accounting-neutral: the
        registry, the fleet report, endpoint stats, and channel traffic
        are all left exactly as they were, so running a parity check (or
        the benchmark) never perturbs the books of the batched path.
        """
        channel_state = self.pelican.channel.checkpoint()
        stats_state = {
            uid: (
                u.endpoint.stats.queries,
                u.endpoint.stats.simulated_network_seconds,
                u.endpoint.predictor.query_count,
            )
            for uid, u in self.pelican.users.items()
        }
        try:
            return [
                QueryResponse(
                    user_id=r.user_id,
                    time=0.0,
                    seq=i,
                    top_k=tuple(self.pelican.query(r.user_id, r.history, r.k)),
                )
                for i, r in enumerate(requests)
            ]
        finally:
            self.pelican.channel.rollback(channel_state)
            for uid, (queries, seconds, query_count) in stats_state.items():
                endpoint = self.pelican.users[uid].endpoint
                endpoint.stats.queries = queries
                endpoint.stats.simulated_network_seconds = seconds
                endpoint.predictor.query_count = query_count

    def _dispatch(
        self,
        user: OnboardedUser,
        user_id: int,
        histories: Sequence[Tuple[SessionFeatures, ...]],
        k: int,
    ) -> List[List[Tuple[int, float]]]:
        """One batched group against the right side's model."""
        if user.endpoint.mode == DeploymentMode.CLOUD:
            # Cloud serving goes through the registry (cold-loading if
            # evicted); every device still pays its own query exchange,
            # accounted at the endpoint's single accounting boundary.
            model = self.registry.get(user_id)
            predictor = NextLocationPredictor(model, self.pelican.spec)
            with flop_counter() as counter:
                results = predictor.top_k_batch(histories, k)
            self.report.cloud_compute += ResourceReport.from_counter(counter)
            user.endpoint.record_query_exchange(len(histories))
            return results
        # Local deployment: the device computes its own answers, no network.
        with flop_counter() as counter:
            results = user.endpoint.top_k_batch(histories, k)
        report = ResourceReport.from_counter(counter)
        self.report.device_compute += report
        profile = self._profiles.get(user_id, self.device_profile)
        self.report.device_simulated_seconds += profile.simulated_seconds(report.macs)
        return results

    # ------------------------------------------------------------------
    # Event clock
    # ------------------------------------------------------------------
    def run(self, schedule: FleetSchedule) -> List[QueryResponse]:
        """Replay a schedule on the simulated event clock.

        Events execute in ``(time, seq)`` order.  A maximal run of
        consecutive QUERY events sharing one clock tick is *concurrent*
        and served as one :meth:`serve` batch; any other event flushes the
        pending batch first.  Responses come back in event order, tagged
        with their event's ``(time, seq)``.
        """
        responses: List[QueryResponse] = []
        pending: List[FleetEvent] = []

        def flush() -> None:
            if not pending:
                return
            batch = [
                QueryRequest(
                    user_id=e.user_id,
                    history=e.payload,
                    k=dict(e.options).get("k", 3),
                )
                for e in pending
            ]
            for event, response in zip(pending, self.serve(batch)):
                responses.append(
                    QueryResponse(
                        user_id=response.user_id,
                        time=event.time,
                        seq=event.seq,
                        top_k=response.top_k,
                    )
                )
            pending.clear()

        for event in schedule.ordered():
            if event.kind is EventKind.QUERY:
                if pending and pending[-1].time != event.time:
                    flush()
                pending.append(event)
                continue
            flush()
            options = dict(event.options)
            if event.kind is EventKind.ONBOARD:
                self.onboard(event.user_id, event.payload, **options)
            elif event.kind is EventKind.UPDATE:
                self.update(event.user_id, event.payload)
        flush()
        return responses

    # ------------------------------------------------------------------
    def _sync_network(self) -> None:
        """Mirror the shared channel's totals into the fleet report."""
        channel = self.pelican.channel
        self.report.network_seconds = channel.total_simulated_seconds
        self.report.network_bytes_up = channel.bytes_up
        self.report.network_bytes_down = channel.bytes_down
