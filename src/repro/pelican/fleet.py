"""Fleet-scale serving on top of :class:`~repro.pelican.system.Pelican`
(DESIGN.md §7).

The orchestrator in ``system.py`` onboards and answers one user at a
time; this module is the production-shaped layer above it that simulates
thousands of devices against one cloud:

* **Batched multi-user serving** — concurrent query requests are grouped
  per personal model and each group is dispatched through the graph-free
  fused inference path in *one* GEMM stack
  (:mod:`repro.pelican.dispatch`).  Predictions are identical to the
  per-query loop (rankings exactly, confidences to float round-off);
  only the cost changes.
* **Cloud model registry** — cloud-deployed personal models live in a
  capacity-bounded :class:`~repro.pelican.registry.ModelRegistry` with
  LRU eviction and serialization-backed cold loads, modeling a cloud that
  cannot keep every personal model hot.
* **Deterministic event clock** — interleaved onboard/update/query
  workloads are described by a
  :class:`~repro.pelican.clock.FleetSchedule` and replayed in
  ``(time, seq)`` order through the shared
  :func:`~repro.pelican.clock.replay_schedule` loop.
* **Per-side accounting** — every event's MACs are attributed to the side
  that executed it and converted to simulated seconds in a
  :class:`~repro.pelican.accounting.FleetReport`.

The event clock, the dispatcher, and the accounting are shard-agnostic
components (``clock.py``, ``dispatch.py``, ``accounting.py``); a
``Fleet`` is the one-cloud composition of them, and
:class:`~repro.pelican.cluster.Cluster` composes N of these fleets into a
sharded cloud (DESIGN.md §9).  Their historical names are re-exported
here, so ``from repro.pelican.fleet import FleetSchedule`` keeps working.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.data.dataset import SequenceDataset
from repro.nn.profiler import flop_counter
from repro.pelican.accounting import FleetReport
from repro.pelican.clock import (
    EventKind,
    FleetEvent,
    FleetSchedule,
    QueryRequest,
    QueryResponse,
    replay_schedule,
)
from repro.pelican.cloud import ResourceReport
from repro.pelican.deployment import DeploymentMode
from repro.pelican.device import CLOUD_SERVER, LOW_END_PHONE, DeviceProfile
from repro.pelican.dispatch import (
    ProbePayload,
    dispatch_model_batch,
    dispatch_stacked_tick,
    group_requests,
    probe_response,
    serve_probe_group,
)
from repro.pelican.registry import ModelRegistry
from repro.pelican.resilience import ResiliencePolicy, ResilienceStats
from repro.pelican.storage import BlobStore
from repro.pelican.system import OnboardedUser, Pelican
from repro.models.personalize import PersonalizationMethod

__all__ = [
    "EventKind",
    "Fleet",
    "FleetEvent",
    "FleetReport",
    "FleetSchedule",
    "QueryRequest",
    "QueryResponse",
]


class Fleet:
    """Many simulated devices served by one Pelican cloud.

    Wraps a :class:`~repro.pelican.system.Pelican` (which keeps per-user
    truth: endpoints, datasets, the shared channel) and adds the serving
    machinery: the model registry for cloud deployments, batched query
    dispatch, the event clock, and per-side accounting.

    Parameters
    ----------
    pelican:
        The underlying orchestrator.  Its general model must be trained
        (``initial_training``) before devices onboard — do it directly or
        via :meth:`train_cloud` to have the cost attributed to the fleet
        report.
    registry_capacity:
        Live-model budget of the cloud registry (``None`` = unbounded).
    cloud_profile / device_profile:
        Hardware models used to convert per-side MACs into simulated
        seconds; ``device_profile`` is also the default onboarding device.
    registry_store:
        Optional shared durable blob store — any
        :class:`~repro.pelican.storage.BlobStore` or plain dict.  A
        standalone fleet keeps its own in-memory store; cluster shards
        pass one shared store so every shard can cold-load any user's
        checkpoint during failover (DESIGN.md §9, §14).  Store choice
        never moves responses or signatures.
    resilience / resilience_stats:
        Optional fault-handling policy and its stats book (DESIGN.md
        §11).  A bare fleet has no faults to handle, so these only bite
        through the chaos subclass — but they live here so every serving
        layer exposes the same ``resilience_stats`` surface, and so a
        cluster can share one stats book across its shards.  ``None``
        policy (or the null policy) leaves behaviour byte-identical.
    stacked:
        Serve cloud prediction groups through the cross-model stacked
        dispatch (DESIGN.md §12): same-shaped models' groups in one tick
        coalesce into batched GEMM calls over stacked weights.  A pure
        compute strategy — rankings are identical, confidences agree to
        float round-off, and the report signature is bit-identical to
        the per-model path (the differential fuzz harness compares
        exactly).
    """

    def __init__(
        self,
        pelican: Pelican,
        registry_capacity: Optional[int] = 64,
        cloud_profile: DeviceProfile = CLOUD_SERVER,
        device_profile: DeviceProfile = LOW_END_PHONE,
        registry_store: Optional[Union[Dict[int, bytes], BlobStore]] = None,
        resilience: Optional[ResiliencePolicy] = None,
        resilience_stats: Optional[ResilienceStats] = None,
        stacked: bool = False,
    ) -> None:
        self.pelican = pelican
        self.stacked = stacked
        self._registry_store = registry_store
        self.resilience = resilience
        self.resilience_stats = (
            resilience_stats if resilience_stats is not None else ResilienceStats()
        )
        self.registry = self._make_registry(registry_capacity, pelican.config.seed)
        self.cloud_profile = cloud_profile
        self.device_profile = device_profile
        self._profiles: Dict[int, DeviceProfile] = {}
        self.report = FleetReport(
            cloud_profile=cloud_profile,
            device_profile=device_profile,
            registry=self.registry.stats,
        )
        # Adopt users already onboarded through the bare Pelican API:
        # cloud-deployed models must be in the registry before serving.
        for user_id, user in pelican.users.items():
            if user.endpoint.mode == DeploymentMode.CLOUD:
                self.registry.register(user_id, user.endpoint.predictor.model)

    def _make_registry(self, capacity: Optional[int], seed: int) -> ModelRegistry:
        """Registry factory hook; the chaos layer substitutes a flaky one."""
        return ModelRegistry(capacity=capacity, seed=seed, store=self._registry_store)

    @property
    def num_users(self) -> int:
        return len(self.pelican.users)

    # ------------------------------------------------------------------
    # Lifecycle events
    # ------------------------------------------------------------------
    def train_cloud(self, contributor_dataset: SequenceDataset) -> ResourceReport:
        """Phase-1 general-model training, attributed to the cloud side."""
        report = self.pelican.initial_training(contributor_dataset)
        self.report.cloud_compute += report
        self._sync_network()
        return report

    def onboard(
        self,
        user_id: int,
        dataset: SequenceDataset,
        privacy_temperature: Optional[float] = None,
        method: Optional[PersonalizationMethod] = None,
        deployment: Optional[DeploymentMode] = None,
        profile: Optional[DeviceProfile] = None,
    ) -> OnboardedUser:
        """Onboard one device: personalize, deploy, register if cloud-mode."""
        profile = profile or self.device_profile
        user = self.pelican.onboard_user(
            user_id,
            dataset,
            privacy_temperature=privacy_temperature,
            method=method,
            deployment=deployment,
            profile=profile,
        )
        self._profiles[user_id] = profile
        self.report.onboards += 1
        self.report.device_compute += user.personalization_report
        self.report.device_simulated_seconds += user.simulated_device_seconds
        if user.endpoint.mode == DeploymentMode.CLOUD:
            self.registry.register(user_id, user.endpoint.predictor.model)
        self._sync_network()
        return user

    def update(self, user_id: int, dataset: SequenceDataset) -> OnboardedUser:
        """Phase-4 incremental update, attributed to the user's device."""
        refreshed = self.pelican.update_user(user_id, dataset)
        profile = self._profiles.get(user_id, self.device_profile)
        self.report.updates += 1
        self.report.device_compute += refreshed.personalization_report
        self.report.device_simulated_seconds += profile.simulated_seconds(
            refreshed.personalization_report.macs
        )
        if refreshed.endpoint.mode == DeploymentMode.CLOUD:
            self.registry.register(user_id, refreshed.endpoint.predictor.model)
        self._sync_network()
        return refreshed

    # ------------------------------------------------------------------
    # Query serving
    # ------------------------------------------------------------------
    def serve(self, requests: Sequence[QueryRequest]) -> List[QueryResponse]:
        """Serve concurrent requests batched per model.

        Requests are grouped by ``(user, window length, k)`` in arrival
        order (:func:`~repro.pelican.dispatch.group_requests`); each group
        runs as one fused inference dispatch.  Answers come back in
        request order and match :meth:`serve_looped` on the same requests
        (identical rankings; confidences to within float round-off — see
        DESIGN.md §7).

        Audit probe batches (:class:`~repro.pelican.dispatch.ProbePayload`,
        DESIGN.md §10) ride the same path in their own groups: same
        registry resolution, same accounting boundaries, but answered
        with per-probe confidences and additionally mirrored into the
        report's adversary attribution overlay.
        """
        if self.stacked:
            return self._serve_stacked(requests)
        responses: List[Optional[QueryResponse]] = [None] * len(requests)
        for (user_id, _, k, is_probe), indices in group_requests(requests).items():
            user = self.pelican.users[user_id]
            histories = [requests[i].history for i in indices]
            if is_probe:
                results = self._dispatch_probes(user, user_id, histories)
                for i, confidences in zip(indices, results):
                    responses[i] = probe_response(user_id, i, confidences)
            else:
                results = self._dispatch(user, user_id, histories, k)
                for i, top in zip(indices, results):
                    responses[i] = QueryResponse(
                        user_id=user_id, time=0.0, seq=i, top_k=tuple(top)
                    )
                self.report.batches += 1
                self.report.queries += len(indices)
        self._sync_network()
        return [r for r in responses if r is not None]

    def _serve_stacked(self, requests: Sequence[QueryRequest]) -> List[QueryResponse]:
        """:meth:`serve` through the cross-model stacked dispatch (§12).

        Three phases, each preserving one leg of the per-model path's
        determinism contract:

        1. **Resolve** every cloud group's model through the registry in
           arrival order — the exact ``get`` sequence of the per-model
           loop, so LRU order, hits/cold-loads/evictions (and a flaky
           registry's own draw sequence) are bit-identical.
        2. **Compute** all stackable prediction groups in one
           :func:`~repro.pelican.dispatch.dispatch_stacked_tick` call.
           Probes never stack (isolation contract, §10); local, reference
           -backend, and partnerless-shape groups fall back below.
        3. **Bill** in arrival order: every group books its compute,
           pays its query exchange, and bumps ``batches``/``queries``
           exactly where the per-model loop would have — channel float
           accumulation order included — whether its answers came from
           the stack or the per-model fallback.
        """
        responses: List[Optional[QueryResponse]] = [None] * len(requests)
        groups = list(group_requests(requests).items())
        users = [self.pelican.users[key[0]] for key, _ in groups]
        models = [
            self.registry.get(key[0])
            if user.endpoint.mode == DeploymentMode.CLOUD
            else None
            for (key, _), user in zip(groups, users)
        ]
        candidates = [
            (
                pos,
                (
                    key[0],
                    models[pos],
                    [requests[i].history for i in indices],
                    key[2],
                ),
            )
            for pos, (key, indices) in enumerate(groups)
            if not key[3] and models[pos] is not None
        ]
        stacked = dict(
            zip(
                (pos for pos, _ in candidates),
                dispatch_stacked_tick(
                    self.registry.stack_cache,
                    self.pelican.spec,
                    [group for _, group in candidates],
                ),
            )
        )
        for pos, ((user_id, _, k, is_probe), indices) in enumerate(groups):
            user, model = users[pos], models[pos]
            histories = [requests[i].history for i in indices]
            if is_probe:
                if model is not None:
                    results, _ = serve_probe_group(
                        model, self.pelican.spec, histories, self.report, user.endpoint
                    )
                else:
                    results, _ = serve_probe_group(
                        user.endpoint.predictor.model,
                        self.pelican.spec,
                        histories,
                        self.report,
                        user.endpoint,
                        profile=self._profiles.get(user_id, self.device_profile),
                    )
                for i, confidences in zip(indices, results):
                    responses[i] = probe_response(user_id, i, confidences)
                continue
            if stacked.get(pos) is not None:
                results, compute = stacked[pos]
                self.report.cloud_compute += compute
                user.endpoint.record_query_exchange(len(histories))
            elif model is not None:
                # Per-model fallback with the phase-1 model: a second
                # registry.get here would double-bump the books.
                results, compute = dispatch_model_batch(
                    model, self.pelican.spec, histories, k
                )
                self.report.cloud_compute += compute
                user.endpoint.record_query_exchange(len(histories))
            else:
                with flop_counter() as counter:
                    results = user.endpoint.top_k_batch(histories, k)
                compute = ResourceReport.from_counter(counter)
                self.report.device_compute += compute
                profile = self._profiles.get(user_id, self.device_profile)
                self.report.device_simulated_seconds += profile.simulated_seconds(
                    compute.macs
                )
            for i, top in zip(indices, results):
                responses[i] = QueryResponse(
                    user_id=user_id, time=0.0, seq=i, top_k=tuple(top)
                )
            self.report.batches += 1
            self.report.queries += len(indices)
        self._sync_network()
        return [r for r in responses if r is not None]

    def serve_looped(self, requests: Sequence[QueryRequest]) -> List[QueryResponse]:
        """Reference implementation: one endpoint query per request.

        This is the seed serving path (``Pelican.query`` in a loop), kept
        as the executable specification for :meth:`serve` and as the slow
        side of the fleet benchmark.  It is accounting-neutral: the
        registry, the fleet report, endpoint stats, and channel traffic
        are all left exactly as they were, so running a parity check (or
        the benchmark) never perturbs the books of the batched path.

        It specifies *prediction* serving only: audit probe batches have
        their own per-probe reference path
        (:func:`repro.attacks.fleet_adversary.run_fleet_audit_looped`),
        so they are rejected here rather than failing opaquely inside
        feature encoding.
        """
        for request in requests:
            if isinstance(request.history, ProbePayload):
                raise TypeError(
                    "serve_looped serves prediction requests only; audit "
                    "probe batches replay through run_fleet_audit_looped "
                    "(DESIGN.md §10)"
                )
        channel_state = self.pelican.channel.checkpoint()
        stats_state = {
            uid: (
                u.endpoint.stats.queries,
                u.endpoint.stats.simulated_network_seconds,
                u.endpoint.predictor.query_count,
            )
            for uid, u in self.pelican.users.items()
        }
        try:
            return [
                QueryResponse(
                    user_id=r.user_id,
                    time=0.0,
                    seq=i,
                    top_k=tuple(self.pelican.query(r.user_id, r.history, r.k)),
                )
                for i, r in enumerate(requests)
            ]
        finally:
            self.pelican.channel.rollback(channel_state)
            for uid, (queries, seconds, query_count) in stats_state.items():
                endpoint = self.pelican.users[uid].endpoint
                endpoint.stats.queries = queries
                endpoint.stats.simulated_network_seconds = seconds
                endpoint.predictor.query_count = query_count

    def _dispatch(
        self,
        user: OnboardedUser,
        user_id: int,
        histories: Sequence[Tuple],
        k: int,
    ) -> List[List[Tuple[int, float]]]:
        """One batched group against the right side's model."""
        if user.endpoint.mode == DeploymentMode.CLOUD:
            # Cloud serving goes through the registry (cold-loading if
            # evicted); every device still pays its own query exchange,
            # accounted at the endpoint's single accounting boundary.
            model = self.registry.get(user_id)
            results, report = dispatch_model_batch(
                model, self.pelican.spec, histories, k
            )
            self.report.cloud_compute += report
            user.endpoint.record_query_exchange(len(histories))
            return results
        # Local deployment: the device computes its own answers, no network.
        with flop_counter() as counter:
            results = user.endpoint.top_k_batch(histories, k)
        report = ResourceReport.from_counter(counter)
        self.report.device_compute += report
        profile = self._profiles.get(user_id, self.device_profile)
        self.report.device_simulated_seconds += profile.simulated_seconds(report.macs)
        return results

    def _dispatch_probes(
        self,
        user: OnboardedUser,
        user_id: int,
        probes: Sequence[ProbePayload],
    ) -> List:
        """One audit probe group against the right side's model.

        Mirrors :meth:`_dispatch` — cloud probes resolve the model
        through the registry, local probes run on the device — with all
        billing (totals + the ``adversary_*`` attribution overlay,
        DESIGN.md §10) in the shared
        :func:`~repro.pelican.dispatch.serve_probe_group` boundary, the
        same one the cluster's failover path bills through.
        """
        if user.endpoint.mode == DeploymentMode.CLOUD:
            results, _ = serve_probe_group(
                self.registry.get(user_id),
                self.pelican.spec,
                probes,
                self.report,
                user.endpoint,
            )
            return results
        results, _ = serve_probe_group(
            user.endpoint.predictor.model,
            self.pelican.spec,
            probes,
            self.report,
            user.endpoint,
            profile=self._profiles.get(user_id, self.device_profile),
        )
        return results

    # ------------------------------------------------------------------
    # Event clock
    # ------------------------------------------------------------------
    def run(self, schedule: FleetSchedule) -> List[QueryResponse]:
        """Replay a schedule on the simulated event clock.

        Delegates to the shared :func:`~repro.pelican.clock.replay_schedule`
        loop: events execute in ``(time, seq)`` order, maximal runs of
        consecutive same-tick QUERY events serve as one :meth:`serve`
        batch, and any other event flushes the pending batch first.
        Responses come back in event order, tagged with their event's
        ``(time, seq)``.
        """
        return replay_schedule(
            schedule,
            serve=lambda _time, requests: self.serve(requests),
            onboard=lambda e: self.onboard(e.user_id, e.payload, **dict(e.options)),
            update=lambda e: self.update(e.user_id, e.payload),
        )

    # ------------------------------------------------------------------
    def _sync_network(self) -> None:
        """Mirror the shared channel's totals into the fleet report."""
        channel = self.pelican.channel
        self.report.network_seconds = channel.total_simulated_seconds
        self.report.network_bytes_up = channel.bytes_up
        self.report.network_bytes_down = channel.bytes_down
