"""Pelican's privacy enhancement and leakage accounting (paper §V-B).

The enhancement inserts a temperature-scaling layer between the linear and
softmax layers at *inference time only*.  As the user-chosen temperature
``T -> 0`` the confidence of the most probable class tends to 1; the attack
space collapses because confidence scores become insensitive to candidate
inputs, while top-k ordering — and hence service accuracy — is untouched.

``leakage_reduction`` is the paper's defense metric: the relative drop in
attack accuracy caused by enabling the privacy layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.models.architecture import NextLocationModel

DEFAULT_PRIVACY_TEMPERATURE = 1e-3


def apply_privacy(model: NextLocationModel, temperature: float) -> NextLocationModel:
    """Enable the privacy layer on a personal model (in place).

    The temperature is the user's *privacy tuner*: smaller values give
    sharper (less informative) confidences.  It is assumed secret from the
    service provider.
    """
    model.set_privacy_temperature(temperature)
    return model


def remove_privacy(model: NextLocationModel) -> NextLocationModel:
    """Disable the privacy layer (temperature back to 1)."""
    model.set_privacy_temperature(1.0)
    return model


def leakage_reduction(undefended_accuracy: float, defended_accuracy: float) -> float:
    """Percentage reduction in privacy leakage (paper Fig 5 y-axis).

    Bounded below at 0: a defense cannot "add" leakage in this accounting
    (matching the paper's "bounded at 0" note for top-1 at Fig 5c).
    """
    if undefended_accuracy <= 0:
        return 0.0
    return max(0.0, 100.0 * (undefended_accuracy - defended_accuracy) / undefended_accuracy)


def leakage_reduction_series(
    undefended: Dict[int, float], defended: Dict[int, float]
) -> Dict[int, float]:
    """Per-k leakage reduction from two accuracy series."""
    return {
        k: leakage_reduction(undefended[k], defended[k])
        for k in undefended
        if k in defended
    }


@dataclass(frozen=True)
class PrivacyReport:
    """Before/after attack accuracies and the induced reduction."""

    temperature: float
    undefended_accuracy: Dict[int, float]
    defended_accuracy: Dict[int, float]

    @property
    def reduction(self) -> Dict[int, float]:
        return leakage_reduction_series(self.undefended_accuracy, self.defended_accuracy)


def confidence_sharpness(confidences: np.ndarray) -> float:
    """Mean top-1 confidence: a diagnostic of how saturated outputs are.

    Approaches 1.0 as the privacy temperature approaches 0.
    """
    confidences = np.asarray(confidences)
    if confidences.ndim == 1:
        confidences = confidences[None, :]
    return float(confidences.max(axis=-1).mean())
