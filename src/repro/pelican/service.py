"""The service front door: admission control + latency/SLO accounting
(DESIGN.md §15).

:class:`ServiceFrontDoor` turns a :class:`~repro.pelican.fleet.Fleet`
or :class:`~repro.pelican.cluster.Cluster` into a *service*: requests
arrive at their own times (typically compiled by
:class:`~repro.traffic.TrafficGenerator`), pass through a deterministic
admission-control queue with a **micro-batching window** (flush after
``window`` simulated seconds or ``max_batch`` pending requests,
whichever comes first), and only then hit the batch dispatcher.  The
queue is a single simulated dispatcher: each flush occupies it for
``service_overhead + per_query_seconds · n`` simulated seconds, so under
overload requests visibly queue — and over-capacity arrivals are
rejected at the door while requests whose queueing delay blows the
resilience deadline are shed through the resilience layer's *existing*
shed path (:func:`~repro.pelican.resilience.shed_late_queries`).

The implementation trick that keeps every lower layer honest: admission
produces a **rebatched schedule** — query event times are replaced by
their flush times (seqs preserved), lifecycle events and audit probes
pass through untouched — and the fleet replays it through the ordinary
``run``.  Micro-batches become same-tick coalesced batches on the event
clock, so chaos perturbation, resilience, stacked dispatch, worker
processes, and blob stores all apply to front-door traffic completely
unchanged.

The :class:`LatencyBook` sits alongside the MAC/seconds books: per
answered request it decomposes simulated latency into queueing (arrival
→ flush), chaos deferral (flush → effective serve time, via the
perturbed time responses already carry) and service time, then reports
nearest-rank p50/p95/p99 and SLO attainment.  Its projection joins the
report signature as a ``service_*`` overlay through
:func:`~repro.pelican.accounting.overlay_signature` — applied **only**
when a front door was actually used, so runs without one keep the exact
legacy signature key set (the committed goldens pin this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.pelican.accounting import overlay_signature
from repro.pelican.clock import (
    EventKind,
    FleetEvent,
    FleetSchedule,
    QueryResponse,
)
from repro.pelican.dispatch import ProbePayload
from repro.pelican.resilience import DEFAULT_QUERY_DEADLINE, shed_late_queries

__all__ = [
    "LatencyBook",
    "ServiceConfig",
    "ServiceFrontDoor",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceStats",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Admission-control knobs, all in simulated seconds.

    ``window == 0`` together with ``max_batch == 1`` is per-request
    admission — every arrival flushes on its own (the benchmark
    baseline micro-batching is measured against).  ``queue_capacity``
    bounds the pending queue; arrivals past it are rejected at the door
    (``None`` = unbounded).  ``deadline`` is the SLO bar the latency
    book scores against; when unset it falls back to the fleet's
    resilience deadline, then to
    :data:`~repro.pelican.resilience.DEFAULT_QUERY_DEADLINE`.
    """

    window: float = 0.05
    max_batch: int = 16
    queue_capacity: Optional[int] = 256
    service_overhead: float = 0.002
    per_query_seconds: float = 0.0005
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.window < 0:
            raise ValueError("micro-batch window must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1 (or None)")
        if self.service_overhead < 0 or self.per_query_seconds < 0:
            raise ValueError("service costs must be >= 0")

    def service_seconds(self, batch_size: int) -> float:
        """Simulated dispatcher occupancy of one flush of ``batch_size``."""
        return self.service_overhead + self.per_query_seconds * batch_size


@dataclass(frozen=True)
class ServiceRequest:
    """One typed front-door request: a query with an arrival time."""

    time: float
    user_id: int
    history: Any
    k: int = 3


@dataclass(frozen=True)
class ServiceResponse:
    """One typed front-door answer.

    ``status`` is ``"ok"`` (answered, ``response``/``latency`` filled),
    ``"rejected"`` (bounced at the admission queue) or ``"shed"``
    (admitted but dropped by the resilience deadline / degradation
    paths).
    """

    status: str
    request: ServiceRequest
    response: Optional[QueryResponse] = None
    latency: Optional[float] = None


@dataclass
class ServiceStats:
    """What the admission queue did to one workload (all deterministic)."""

    generated: int = 0
    admitted: int = 0
    rejected: int = 0
    flushes: int = 0
    max_queue_depth: int = 0

    def signature(self) -> Dict[str, Any]:
        return {
            "generated": self.generated,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "flushes": self.flushes,
            "max_queue_depth": self.max_queue_depth,
        }


def _nearest_rank(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile — deterministic, no interpolation."""
    if not sorted_values:
        return 0.0
    n = len(sorted_values)
    rank = math.ceil(q * n / 100.0)
    return sorted_values[max(1, min(n, rank)) - 1]


@dataclass
class LatencyBook:
    """Per-request simulated latency accounting (DESIGN.md §15).

    Latency decomposes as ``queue + defer + service``: arrival → flush
    (micro-batching + busy dispatcher), flush → effective serve tick
    (chaos deferral; response times already carry the perturbed tick),
    and the flush's dispatcher occupancy.  Everything is simulated-clock
    float arithmetic in a fixed order, so the book — percentiles
    included — is bit-deterministic for one seed.
    """

    deadline: float = DEFAULT_QUERY_DEADLINE
    latencies: List[float] = field(default_factory=list)
    queue_seconds: float = 0.0
    service_seconds: float = 0.0
    defer_seconds: float = 0.0
    on_time: int = 0
    #: Denominator for SLO attainment: every generated query counts, so
    #: rejected/shed traffic hurts attainment instead of vanishing.
    generated: int = 0

    def observe(
        self, queue: float, defer: float, service: float
    ) -> float:
        latency = queue + defer + service
        self.latencies.append(latency)
        self.queue_seconds += queue
        self.defer_seconds += defer
        self.service_seconds += service
        if latency <= self.deadline:
            self.on_time += 1
        return latency

    @property
    def answered(self) -> int:
        return len(self.latencies)

    def percentile(self, q: float) -> float:
        return _nearest_rank(sorted(self.latencies), q)

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def slo_attainment(self) -> float:
        """Fraction of *generated* queries answered within the deadline."""
        if not self.generated:
            return 1.0
        return self.on_time / self.generated

    def signature(self) -> Dict[str, Any]:
        return {
            "answered": self.answered,
            "queue_seconds": self.queue_seconds,
            "defer_seconds": self.defer_seconds,
            "service_seconds": self.service_seconds,
            "p50_latency": self.p50,
            "p95_latency": self.p95,
            "p99_latency": self.p99,
            "max_latency": max(self.latencies) if self.latencies else 0.0,
            "on_time": self.on_time,
            "slo_deadline": self.deadline,
            "slo_attainment": self.slo_attainment,
        }


def _is_prediction_query(event: FleetEvent) -> bool:
    return event.kind is EventKind.QUERY and not isinstance(
        event.payload, ProbePayload
    )


class ServiceFrontDoor:
    """Admission control + latency accounting over a fleet or cluster.

    One front door serves one workload run (books accumulate across
    :meth:`run` calls on the same fleet).  ``fleet`` is anything with
    the shared serving interface — :class:`~repro.pelican.fleet.Fleet`,
    its chaos subclass, or :class:`~repro.pelican.cluster.Cluster`; the
    front door never reaches around it, so every lower-layer guarantee
    (bit-identical responses across shards/workers/stores, null-chaos
    identity, signature determinism) carries over verbatim.
    """

    def __init__(
        self, fleet: Any, config: Optional[ServiceConfig] = None
    ) -> None:
        self.fleet = fleet
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        self.book = LatencyBook(deadline=self._resolve_deadline())
        #: seq → (arrival time, flush time, flush service seconds) for
        #: every admitted prediction query of the runs so far.
        self._admission: Dict[int, Tuple[float, float, float]] = {}

    def _resolve_deadline(self) -> float:
        if self.config.deadline is not None:
            return float(self.config.deadline)
        policy = getattr(self.fleet, "resilience", None)
        if policy is not None and not policy.is_null and policy.deadline is not None:
            return float(policy.deadline)
        return DEFAULT_QUERY_DEADLINE

    # ------------------------------------------------------------------
    # Admission: original schedule -> rebatched schedule
    # ------------------------------------------------------------------
    def admit(self, schedule: FleetSchedule) -> FleetSchedule:
        """Run the admission queue over a schedule's prediction queries.

        Returns the rebatched schedule: every admitted query moved to
        its flush time (seq preserved — flushing only ever moves a query
        *later*), rejected queries dropped and counted, lifecycle events
        and audit probes passed through untouched.  A maximal flush
        shares one tick, so the event clock serves it as one batch.

        The queue itself is a deterministic single-server simulation:
        a batch is *due* when it fills (``max_batch``) or when its
        oldest request has waited ``window`` seconds; it flushes at
        ``max(due, dispatcher free)`` and occupies the dispatcher for
        :meth:`ServiceConfig.service_seconds`.  Arrivals finding
        ``queue_capacity`` requests already waiting are rejected.
        """
        cfg = self.config
        admitted = FleetSchedule()
        queries: List[FleetEvent] = []
        for event in schedule.ordered():
            if _is_prediction_query(event):
                queries.append(event)
            else:
                admitted.add(event)

        self.stats.generated += len(queries)
        self.book.generated += len(queries)
        pending: List[FleetEvent] = []
        free_at = 0.0

        def due_at() -> float:
            if len(pending) >= cfg.max_batch:
                return pending[cfg.max_batch - 1].time
            return pending[0].time + cfg.window

        def flush_until(now: Optional[float]) -> None:
            nonlocal free_at
            while pending:
                at = max(due_at(), free_at)
                if now is not None and at > now:
                    return
                n = min(len(pending), cfg.max_batch)
                batch = pending[:n]
                del pending[:n]
                cost = cfg.service_seconds(n)
                for ev in batch:
                    admitted.add(
                        FleetEvent(
                            time=at,
                            seq=ev.seq,
                            kind=ev.kind,
                            user_id=ev.user_id,
                            payload=ev.payload,
                            options=ev.options,
                        )
                    )
                    self._admission[ev.seq] = (ev.time, at, cost)
                free_at = at + cost
                self.stats.flushes += 1

        for event in queries:
            flush_until(event.time)
            if (
                cfg.queue_capacity is not None
                and len(pending) >= cfg.queue_capacity
            ):
                self.stats.rejected += 1
                continue
            pending.append(event)
            self.stats.admitted += 1
            self.stats.max_queue_depth = max(
                self.stats.max_queue_depth, len(pending)
            )
        flush_until(None)
        return admitted

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def run(self, schedule: FleetSchedule) -> List[QueryResponse]:
        """Admit, shed, serve, and book one open-loop workload.

        Queries whose *queueing* delay already blew the resilience
        deadline are shed through the layer's existing shed path before
        the fleet ever sees them — the same
        :func:`~repro.pelican.resilience.shed_late_queries` call (and
        the same shared stats book) the chaos layers use for deferred
        work, so front-door sheds and chaos sheds land in one counter.
        Chaos perturbation of the rebatched schedule then happens inside
        the fleet's own ``run``, exactly as without a front door.
        """
        admitted = self.admit(schedule)
        policy = getattr(self.fleet, "resilience", None)
        if policy is not None and not policy.is_null:
            admitted = shed_late_queries(
                schedule, admitted, policy, self.fleet.resilience_stats
            )
        responses = self.fleet.run(admitted)
        for response in responses:
            booked = self._admission.get(response.seq)
            if booked is None:
                continue  # audit probes and pass-through traffic
            arrival, flushed, service = booked
            self.book.observe(
                queue=flushed - arrival,
                defer=response.time - flushed,
                service=service,
            )
        return responses

    def submit(self, requests: Sequence[ServiceRequest]) -> List[ServiceResponse]:
        """Typed request-in / response-out surface over :meth:`run`.

        Builds the open-loop schedule from the requests' own arrival
        times and maps every request to a typed outcome — answered,
        rejected at the door, or shed past the deadline.
        """
        schedule = FleetSchedule()
        seq_to_index: Dict[int, int] = {}
        for i, request in enumerate(requests):
            seq_to_index[schedule.next_seq] = i
            schedule.query(request.time, request.user_id, request.history, k=request.k)
        answered = {r.seq: r for r in self.run(schedule)}
        out: List[ServiceResponse] = []
        for seq, i in sorted(seq_to_index.items()):
            request = requests[i]
            response = answered.get(seq)
            if response is not None:
                arrival, flushed, service = self._admission[seq]
                latency = (flushed - arrival) + (response.time - flushed) + service
                out.append(ServiceResponse("ok", request, response, latency))
            elif seq in self._admission:
                out.append(ServiceResponse("shed", request))
            else:
                out.append(ServiceResponse("rejected", request))
        return out

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    @property
    def shed(self) -> int:
        """Admitted-but-unanswered queries (deadline sheds, degradation
        drops) — the conservation residual ``admitted - answered``."""
        return self.stats.admitted - self.book.answered

    def health(self) -> Dict[str, Any]:
        """Liveness/pressure summary — the health endpoint."""
        if self.stats.rejected:
            status = "rejecting"
        elif self.shed:
            status = "shedding"
        else:
            status = "ok"
        return {
            "status": status,
            "users": self.fleet.num_users,
            "generated": self.stats.generated,
            "answered": self.book.answered,
            "rejected": self.stats.rejected,
            "shed": self.shed,
            "max_queue_depth": self.stats.max_queue_depth,
        }

    def endpoint_stats(self) -> Dict[str, Any]:
        """Admission + latency projection — the stats endpoint."""
        return {**self.stats.signature(), **self.book.signature()}

    def signature(self) -> Dict[str, Any]:
        """The fleet's signature with the ``service_*`` overlay joined.

        Built through the same :func:`overlay_signature` contract as the
        chaos/resilience overlays, and only ever *here* — a fleet that
        never met a front door keeps its legacy key set, which is what
        lets the committed goldens pass unchanged.
        """
        if hasattr(self.fleet, "signature"):
            base = self.fleet.signature()
        else:
            base = self.fleet.report.signature()
            policy = getattr(self.fleet, "resilience", None)
            # A bare Fleet has no signature() of its own; mirror the
            # chaos subclass and join the resilience overlay when the
            # policy is active (front-door sheds land in its book).
            if policy is not None and not policy.is_null:
                base = overlay_signature(
                    base, "resilience_", self.fleet.resilience_stats.signature()
                )
        return overlay_signature(base, "service_", self.endpoint_stats())
