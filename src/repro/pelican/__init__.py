"""``repro.pelican`` — the Pelican framework (paper §V).

Cloud-based initial training, device-based personalization, privacy
enhancement via inference-time temperature scaling, deployment (local or
cloud), incremental model updates, simulated device/cloud transport, and
— above the per-user orchestrator — the fleet-scale serving layer
(:mod:`repro.pelican.fleet`, DESIGN.md §7): batched multi-user query
dispatch, a cloud-side model registry with LRU eviction, and a
deterministic event clock for interleaved workloads — plus seeded fault
injection over all of it (:mod:`repro.pelican.chaos`, DESIGN.md §8) and
the sharded cluster layer (:mod:`repro.pelican.cluster`, DESIGN.md §9):
N shards behind deterministic placement, with outage failover and
aggregated accounting — and the resilience layer
(:mod:`repro.pelican.resilience`, DESIGN.md §11): retry budgets with
seeded backoff, per-shard circuit breakers, query deadlines with load
shedding, and a graceful-degradation ladder — fronted by the service
layer (:mod:`repro.pelican.service`, DESIGN.md §15): an admission-control
queue with a micro-batching window, typed request/response schemas,
health/stats endpoints, and a per-request latency/SLO book joined into
the signature only when the front door is active.
"""

from repro.pelican.accounting import ClusterReport, totals_signature
from repro.pelican.chaos import (
    CHAOS_POLICIES,
    ChaosFleet,
    ChaosPolicy,
    ChaosStats,
    FaultyChannel,
    FlakyModelRegistry,
    chaos_policy,
    perturb_schedule,
    sample_shard_outages,
)
from repro.pelican.clock import replay_schedule
from repro.pelican.cloud import CloudTrainer, ResourceReport
from repro.pelican.cluster import Cluster, split_schedule
from repro.pelican.defenses import (
    GaussianNoiseDefense,
    OutputDefense,
    RoundingDefense,
    TopKOnlyDefense,
)
from repro.pelican.deployment import (
    QUERY_PAYLOAD_BYTES,
    DeploymentMode,
    QueryStats,
    ServiceEndpoint,
    deploy_cloud,
    deploy_cloud_delta,
    deploy_local,
    rebuild_personal_model,
    serialize_personal_model,
    serialize_personal_model_delta,
)
from repro.pelican.device import (
    CLOUD_SERVER,
    FLAGSHIP_PHONE,
    LOW_END_PHONE,
    DevicePersonalizer,
    DeviceProfile,
    rebuild_general_model,
)
from repro.pelican.fleet import (
    EventKind,
    Fleet,
    FleetEvent,
    FleetReport,
    FleetSchedule,
    QueryRequest,
    QueryResponse,
)
from repro.pelican.placement import (
    PLACEMENT_POLICIES,
    HashPlacement,
    LeastLoadedPlacement,
    PlacementPolicy,
    StickyPlacement,
    make_placement,
)
from repro.pelican.privacy import (
    DEFAULT_PRIVACY_TEMPERATURE,
    PrivacyReport,
    apply_privacy,
    confidence_sharpness,
    leakage_reduction,
    leakage_reduction_series,
    remove_privacy,
)
from repro.pelican.registry import ModelRegistry, RegistryStats
from repro.pelican.storage import (
    STORE_KINDS,
    BlobStore,
    DiskBlobStore,
    MemoryBlobStore,
    TieredBlobStore,
    make_blob_store,
)
from repro.pelican.stacking import WeightStack, WeightStackCache, stack_key
from repro.pelican.resilience import (
    DEFAULT_QUERY_DEADLINE,
    RESILIENCE_POLICIES,
    AvailabilityReport,
    DegradationLadder,
    ResiliencePolicy,
    ResilienceStats,
    RetryBudgetExhausted,
    ShardBreaker,
    measure_availability,
    resilience_policy,
    shed_late_queries,
)
from repro.pelican.service import (
    LatencyBook,
    ServiceConfig,
    ServiceFrontDoor,
    ServiceRequest,
    ServiceResponse,
    ServiceStats,
)
from repro.pelican.system import OnboardedUser, Pelican, PelicanConfig
from repro.pelican.transport import Channel, TransferRecord
from repro.pelican.updates import UpdateResult, update_personal_model

__all__ = [
    "AvailabilityReport",
    "CHAOS_POLICIES",
    "CLOUD_SERVER",
    "DEFAULT_QUERY_DEADLINE",
    "DegradationLadder",
    "RESILIENCE_POLICIES",
    "ResiliencePolicy",
    "ResilienceStats",
    "RetryBudgetExhausted",
    "ShardBreaker",
    "Channel",
    "ChaosFleet",
    "ChaosPolicy",
    "ChaosStats",
    "CloudTrainer",
    "Cluster",
    "ClusterReport",
    "FaultyChannel",
    "FlakyModelRegistry",
    "BlobStore",
    "DiskBlobStore",
    "MemoryBlobStore",
    "TieredBlobStore",
    "STORE_KINDS",
    "make_blob_store",
    "DEFAULT_PRIVACY_TEMPERATURE",
    "DeploymentMode",
    "EventKind",
    "FLAGSHIP_PHONE",
    "Fleet",
    "FleetEvent",
    "FleetReport",
    "FleetSchedule",
    "GaussianNoiseDefense",
    "HashPlacement",
    "LeastLoadedPlacement",
    "PLACEMENT_POLICIES",
    "PlacementPolicy",
    "StickyPlacement",
    "LOW_END_PHONE",
    "ModelRegistry",
    "OutputDefense",
    "QUERY_PAYLOAD_BYTES",
    "QueryRequest",
    "QueryResponse",
    "RegistryStats",
    "RoundingDefense",
    "TopKOnlyDefense",
    "DevicePersonalizer",
    "DeviceProfile",
    "OnboardedUser",
    "Pelican",
    "PelicanConfig",
    "PrivacyReport",
    "QueryStats",
    "ResourceReport",
    "LatencyBook",
    "ServiceConfig",
    "ServiceEndpoint",
    "ServiceFrontDoor",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceStats",
    "TransferRecord",
    "UpdateResult",
    "WeightStack",
    "WeightStackCache",
    "stack_key",
    "apply_privacy",
    "chaos_policy",
    "confidence_sharpness",
    "measure_availability",
    "resilience_policy",
    "shed_late_queries",
    "deploy_cloud",
    "deploy_cloud_delta",
    "serialize_personal_model_delta",
    "deploy_local",
    "leakage_reduction",
    "leakage_reduction_series",
    "make_placement",
    "perturb_schedule",
    "rebuild_general_model",
    "rebuild_personal_model",
    "remove_privacy",
    "replay_schedule",
    "sample_shard_outages",
    "serialize_personal_model",
    "split_schedule",
    "totals_signature",
    "update_personal_model",
]
