"""``repro.pelican`` — the Pelican framework (paper §V).

Cloud-based initial training, device-based personalization, privacy
enhancement via inference-time temperature scaling, deployment (local or
cloud), incremental model updates, and simulated device/cloud transport.
"""

from repro.pelican.cloud import CloudTrainer, ResourceReport
from repro.pelican.defenses import (
    GaussianNoiseDefense,
    OutputDefense,
    RoundingDefense,
    TopKOnlyDefense,
)
from repro.pelican.deployment import (
    DeploymentMode,
    QueryStats,
    ServiceEndpoint,
    deploy_cloud,
    deploy_local,
)
from repro.pelican.device import DevicePersonalizer, DeviceProfile, rebuild_general_model
from repro.pelican.privacy import (
    DEFAULT_PRIVACY_TEMPERATURE,
    PrivacyReport,
    apply_privacy,
    confidence_sharpness,
    leakage_reduction,
    leakage_reduction_series,
    remove_privacy,
)
from repro.pelican.system import OnboardedUser, Pelican, PelicanConfig
from repro.pelican.transport import Channel, TransferRecord
from repro.pelican.updates import UpdateResult, update_personal_model

__all__ = [
    "Channel",
    "CloudTrainer",
    "DEFAULT_PRIVACY_TEMPERATURE",
    "DeploymentMode",
    "GaussianNoiseDefense",
    "OutputDefense",
    "RoundingDefense",
    "TopKOnlyDefense",
    "DevicePersonalizer",
    "DeviceProfile",
    "OnboardedUser",
    "Pelican",
    "PelicanConfig",
    "PrivacyReport",
    "QueryStats",
    "ResourceReport",
    "ServiceEndpoint",
    "TransferRecord",
    "UpdateResult",
    "apply_privacy",
    "confidence_sharpness",
    "deploy_cloud",
    "deploy_local",
    "leakage_reduction",
    "leakage_reduction_series",
    "rebuild_general_model",
    "remove_privacy",
    "update_personal_model",
]
