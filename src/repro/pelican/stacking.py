"""Cross-model weight stacks for batched serving (DESIGN.md §12).

A cloud tick that touches hundreds of personal models pays one Python
dispatch per model even after per-model batching (§7).  Same-shaped
personal models — the overwhelmingly common case, since every user
personalizes from the same general architecture — can instead have their
weights stacked along a leading model axis and served by the stacked
inference kernels (:func:`repro.nn.fused.stacked_infer_last`) in a
handful of batched GEMMs per tick.

This module owns the weight-side state of that path:

* :func:`stack_key` — the shape/dtype identity under which models may
  share a stack.  Models whose key differs (mid-migration dtype, a
  SCRATCH user's different hidden size, a TL-FE surplus layer) never
  mix; the dispatcher routes them through the per-model path instead.
* :class:`WeightStack` — one growable stack per key: per-layer
  ``W_ih``/``W_hh``/bias blocks, the head projection, and the privacy
  temperature, with one row per user.  Rows are copied in once and
  reused until invalidated.
* :class:`WeightStackCache` — the per-registry collection of stacks,
  with the single invalidation entry point the
  :class:`~repro.pelican.registry.ModelRegistry` coherence hooks call.

The cache is a pure performance structure: it holds *copies* of weight
values, does no accounting, and never appears in any report signature.
Coherence is the registry's job — every transition that replaces or
drops a live model (register on onboard/update, explicit evict,
LRU eviction) invalidates the user's rows, so a stale stack row can
never outlive the model state it was copied from (DESIGN.md §12).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.architecture import NextLocationModel

#: Identity under which models may share one stack: weight dtype, the
#: (input, hidden) size of every LSTM cell (surplus layer included, so a
#: TL-FE model never mixes with a plain one), and the head shape.
StackKey = Tuple[str, Tuple[Tuple[int, int], ...], Tuple[int, int]]


def stack_key(model: NextLocationModel) -> Optional[StackKey]:
    """The stack identity of ``model``, or ``None`` if it cannot stack.

    Only fused-backend models are eligible: the reference backend answers
    through the autograd graph, which has no stacked equivalent — those
    models keep the per-model path (DESIGN.md §12 bypass list).
    """
    if model.backend != "fused":
        return None
    cells = list(model.lstm.cells)
    if model.extra is not None:
        cells += list(model.extra.cells)
    return (
        str(model.head.weight.data.dtype),
        tuple((cell.input_size, cell.hidden_size) for cell in cells),
        model.head.weight.data.shape,
    )


class WeightStack:
    """Stacked weights of every cached user under one :func:`stack_key`.

    Storage is a set of preallocated blocks with a leading row axis that
    doubles on growth (amortized O(1) onboarding):  per LSTM cell
    ``w_ih (R, F, 4H)`` / ``w_hh (R, H, 4H)`` / ``bias (R, 4H)``, plus
    ``head_w (R, H, L)``, ``head_b (R, L)`` and the per-user privacy
    temperature ``temps (R,)``.  ``rows`` maps user id → row;
    invalidated rows go on a free list and are re-filled by the next
    :meth:`ensure`.
    """

    def __init__(self, key: StackKey) -> None:
        self.key = key
        self.dtype = np.dtype(key[0])
        self.cell_sizes = key[1]
        self.head_shape = key[2]
        self.rows: Dict[int, int] = {}
        self._free: List[int] = []
        self._capacity = 0
        self._w_ih: List[np.ndarray] = []
        self._w_hh: List[np.ndarray] = []
        self._bias: List[np.ndarray] = []
        self._head_w: Optional[np.ndarray] = None
        self._head_b: Optional[np.ndarray] = None
        self._temps: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.rows)

    def _grow(self, capacity: int) -> None:
        H_top, L = self.head_shape
        if not self._capacity:
            self._w_ih = [
                np.empty((capacity, f, 4 * h), dtype=self.dtype)
                for f, h in self.cell_sizes
            ]
            self._w_hh = [
                np.empty((capacity, h, 4 * h), dtype=self.dtype)
                for _, h in self.cell_sizes
            ]
            self._bias = [
                np.empty((capacity, 4 * h), dtype=self.dtype)
                for _, h in self.cell_sizes
            ]
            self._head_w = np.empty((capacity, H_top, L), dtype=self.dtype)
            self._head_b = np.empty((capacity, L), dtype=self.dtype)
            self._temps = np.empty((capacity,), dtype=self.dtype)
        else:
            grow = lambda a: np.concatenate(  # noqa: E731
                [a, np.empty((capacity - a.shape[0],) + a.shape[1:], dtype=a.dtype)]
            )
            self._w_ih = [grow(a) for a in self._w_ih]
            self._w_hh = [grow(a) for a in self._w_hh]
            self._bias = [grow(a) for a in self._bias]
            self._head_w = grow(self._head_w)
            self._head_b = grow(self._head_b)
            self._temps = grow(self._temps)
        self._capacity = capacity

    def ensure(self, user_id: int, model: NextLocationModel) -> int:
        """The user's row, copying the model's weights in if absent.

        A present row is trusted as-is — the registry coherence hooks
        guarantee any replaced/dropped model already invalidated it — so
        the steady-state cost per group is one dict lookup.
        """
        row = self.rows.get(user_id)
        if row is not None:
            return row
        if self._free:
            row = self._free.pop()
        else:
            row = len(self.rows)
            if row >= self._capacity:
                self._grow(max(4, 2 * self._capacity))
        cells = list(model.lstm.cells)
        if model.extra is not None:
            cells += list(model.extra.cells)
        for layer, cell in enumerate(cells):
            self._w_ih[layer][row] = cell.weight_ih.data
            self._w_hh[layer][row] = cell.weight_hh.data
            self._bias[layer][row] = cell.bias.data
        self._head_w[row] = model.head.weight.data
        self._head_b[row] = model.head.bias.data
        # Stored as data so the head stage always divides: x / 1.0 is
        # IEEE-exact, keeping no-privacy models bit-identical.
        self._temps[row] = model.privacy.temperature
        self.rows[user_id] = row
        return row

    def invalidate(self, user_id: int) -> bool:
        """Drop the user's row (next :meth:`ensure` recopies); True if held."""
        row = self.rows.pop(user_id, None)
        if row is None:
            return False
        self._free.append(row)
        return True

    def gather(
        self, rows: Sequence[int]
    ) -> Tuple[
        List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
        np.ndarray,
        np.ndarray,
        np.ndarray,
    ]:
        """The stacked parameter views/copies for ``rows``, in order.

        Returns ``(layers, head_w, head_b, temps)`` shaped for
        :func:`~repro.nn.fused.stacked_infer_last`.  A contiguous
        ascending row run — the warm steady state, since rows are
        assigned in first-touch order — is served as zero-copy slices;
        anything else (free-list reuse, interleaved invalidations,
        duplicate users) falls back to a fancy-index gather copy.
        """
        first, n = rows[0], len(rows)
        if all(rows[i] == first + i for i in range(n)):
            sel = slice(first, first + n)
        else:
            sel = np.asarray(rows)
        layers = [
            (self._w_ih[layer][sel], self._w_hh[layer][sel], self._bias[layer][sel])
            for layer in range(len(self.cell_sizes))
        ]
        return layers, self._head_w[sel], self._head_b[sel], self._temps[sel]


class WeightStackCache:
    """All of one registry's weight stacks, keyed by :func:`stack_key`."""

    def __init__(self) -> None:
        self._stacks: Dict[StackKey, WeightStack] = {}

    def stack_for(self, key: StackKey) -> WeightStack:
        stack = self._stacks.get(key)
        if stack is None:
            stack = self._stacks[key] = WeightStack(key)
        return stack

    def invalidate(self, user_id: int) -> None:
        """Drop the user's rows in every stack (shape may have changed)."""
        for stack in self._stacks.values():
            stack.invalidate(user_id)

    def __len__(self) -> int:
        return len(self._stacks)

    def stacks(self) -> List[WeightStack]:
        return list(self._stacks.values())
