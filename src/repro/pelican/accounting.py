"""Per-side cost accounting, shard-agnostic (DESIGN.md §7/§9).

:class:`FleetReport` is the cumulative book of one cloud (one shard):
MACs per side, simulated seconds through each side's hardware profile,
network totals, and registry cache behaviour.  :class:`ClusterReport`
aggregates N of them — per-shard breakdown plus cluster totals — while
keeping the same deterministic :meth:`~ClusterReport.signature`
guarantee: identical runs produce identical signatures, only measured
wall-clock is excluded.

The cluster totals are computed *from aggregate MACs*, not by summing
per-shard seconds, so a 1-shard cluster's totals are bit-identical to the
legacy single-:class:`~repro.pelican.fleet.Fleet` report on the same run
(float addition order matters; the parity tests compare exactly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.pelican.cloud import ResourceReport
from repro.pelican.device import DeviceProfile
from repro.pelican.registry import RegistryStats


@dataclass
class FleetReport:
    """Cumulative per-side cost of everything one fleet/shard has done.

    ``cloud_compute`` / ``device_compute`` sum MACs on each side;
    ``*_simulated_seconds`` convert them through the side's hardware
    profile (plus registry cold-load fetch time on the cloud side and the
    per-user personalization estimates on the device side).
    ``wall_seconds`` inside the embedded reports is measured, so
    :meth:`signature` — the projection the determinism guarantee covers —
    excludes it.

    The ``adversary_*`` fields are an *attribution overlay* for privacy
    audits (DESIGN.md §10): probe traffic served through the dispatcher
    is billed in the normal totals (the cloud really did that work) *and*
    mirrored here, so benign cost is always ``total - adversary`` field
    by field.  They stay zero outside audit runs.
    """

    cloud_profile: DeviceProfile
    device_profile: DeviceProfile
    cloud_compute: ResourceReport = field(default_factory=ResourceReport.zero)
    device_compute: ResourceReport = field(default_factory=ResourceReport.zero)
    device_simulated_seconds: float = 0.0
    network_seconds: float = 0.0
    network_bytes_up: int = 0
    network_bytes_down: int = 0
    onboards: int = 0
    updates: int = 0
    queries: int = 0
    batches: int = 0
    registry: RegistryStats = field(default_factory=RegistryStats)
    # -- adversary attribution overlay (subset of the totals above) ------
    adversary_queries: int = 0
    adversary_batches: int = 0
    adversary_cloud_compute: ResourceReport = field(default_factory=ResourceReport.zero)
    adversary_device_compute: ResourceReport = field(default_factory=ResourceReport.zero)
    adversary_device_simulated_seconds: float = 0.0
    adversary_network_seconds: float = 0.0

    @property
    def cloud_simulated_seconds(self) -> float:
        """Cloud compute time plus checkpoint-store fetch time."""
        return (
            self.cloud_profile.simulated_seconds(self.cloud_compute.macs)
            + self.registry.simulated_load_seconds
        )

    @property
    def mean_batch_size(self) -> float:
        return self.queries / self.batches if self.batches else 0.0

    def signature(self) -> Dict[str, Any]:
        """The deterministic projection: identical for identical runs.

        Same seed + same schedule ⇒ identical signature (and identical
        responses); only wall-clock measurements are excluded.
        """
        return {
            "cloud_macs": self.cloud_compute.macs,
            "device_macs": self.device_compute.macs,
            "cloud_simulated_seconds": self.cloud_simulated_seconds,
            "device_simulated_seconds": self.device_simulated_seconds,
            "network_seconds": self.network_seconds,
            "network_bytes_up": self.network_bytes_up,
            "network_bytes_down": self.network_bytes_down,
            "onboards": self.onboards,
            "updates": self.updates,
            "queries": self.queries,
            "batches": self.batches,
            "registry_hits": self.registry.hits,
            "registry_cold_loads": self.registry.cold_loads,
            "registry_evictions": self.registry.evictions,
            "registry_load_seconds": self.registry.simulated_load_seconds,
            "eviction_log": tuple(self.registry.eviction_log),
            "adversary_queries": self.adversary_queries,
            "adversary_batches": self.adversary_batches,
            "adversary_cloud_macs": self.adversary_cloud_compute.macs,
            "adversary_device_macs": self.adversary_device_compute.macs,
            "adversary_device_simulated_seconds": self.adversary_device_simulated_seconds,
            "adversary_network_seconds": self.adversary_network_seconds,
        }


@dataclass
class ClusterReport:
    """Aggregating live view over N per-shard :class:`FleetReport` books.

    Shard reports stay owned (and mutated) by their shards; this report
    reads them on demand, so it is always in sync.  ``training`` holds
    the cluster-level general-model training cost, which is paid once —
    not per shard — exactly like the single-fleet ``train_cloud``.

    Cluster totals expose the same field names as :class:`FleetReport`
    (``cloud_compute``, ``network_seconds``, ``registry``, ...) so
    renderers and comparisons work on either; :meth:`signature` returns
    the same total keys plus a ``shards`` tuple with every shard's own
    signature.
    """

    cloud_profile: DeviceProfile
    device_profile: DeviceProfile
    shard_reports: List[FleetReport] = field(default_factory=list)
    training: ResourceReport = field(default_factory=ResourceReport.zero)

    @property
    def num_shards(self) -> int:
        return len(self.shard_reports)

    def shard(self, shard_id: int) -> FleetReport:
        return self.shard_reports[shard_id]

    # -- aggregate views (FleetReport-compatible names) -----------------
    @property
    def cloud_compute(self) -> ResourceReport:
        total = self.training
        for report in self.shard_reports:
            total = total + report.cloud_compute
        return total

    @property
    def device_compute(self) -> ResourceReport:
        total = ResourceReport.zero()
        for report in self.shard_reports:
            total = total + report.device_compute
        return total

    @property
    def registry(self) -> RegistryStats:
        """Summed registry stats; eviction logs concatenate in shard order."""
        total = RegistryStats()
        for report in self.shard_reports:
            total.hits += report.registry.hits
            total.cold_loads += report.registry.cold_loads
            total.evictions += report.registry.evictions
            total.simulated_load_seconds += report.registry.simulated_load_seconds
            total.eviction_log.extend(report.registry.eviction_log)
        return total

    @property
    def cloud_simulated_seconds(self) -> float:
        # From aggregate MACs (not summed shard seconds): bit-identical to
        # the single-fleet conversion when there is one shard.
        return (
            self.cloud_profile.simulated_seconds(self.cloud_compute.macs)
            + self.registry.simulated_load_seconds
        )

    @property
    def device_simulated_seconds(self) -> float:
        return sum(r.device_simulated_seconds for r in self.shard_reports)

    @property
    def network_seconds(self) -> float:
        return sum(r.network_seconds for r in self.shard_reports)

    @property
    def network_bytes_up(self) -> int:
        return sum(r.network_bytes_up for r in self.shard_reports)

    @property
    def network_bytes_down(self) -> int:
        return sum(r.network_bytes_down for r in self.shard_reports)

    @property
    def onboards(self) -> int:
        return sum(r.onboards for r in self.shard_reports)

    @property
    def updates(self) -> int:
        return sum(r.updates for r in self.shard_reports)

    @property
    def queries(self) -> int:
        return sum(r.queries for r in self.shard_reports)

    @property
    def batches(self) -> int:
        return sum(r.batches for r in self.shard_reports)

    @property
    def mean_batch_size(self) -> float:
        return self.queries / self.batches if self.batches else 0.0

    # -- adversary attribution overlay (summed per shard, DESIGN.md §10) -
    @property
    def adversary_queries(self) -> int:
        return sum(r.adversary_queries for r in self.shard_reports)

    @property
    def adversary_batches(self) -> int:
        return sum(r.adversary_batches for r in self.shard_reports)

    @property
    def adversary_cloud_compute(self) -> ResourceReport:
        total = ResourceReport.zero()
        for report in self.shard_reports:
            total = total + report.adversary_cloud_compute
        return total

    @property
    def adversary_device_compute(self) -> ResourceReport:
        total = ResourceReport.zero()
        for report in self.shard_reports:
            total = total + report.adversary_device_compute
        return total

    @property
    def adversary_device_simulated_seconds(self) -> float:
        return sum(r.adversary_device_simulated_seconds for r in self.shard_reports)

    @property
    def adversary_network_seconds(self) -> float:
        return sum(r.adversary_network_seconds for r in self.shard_reports)

    def signature(self) -> Dict[str, Any]:
        """Cluster totals (FleetReport keys) + per-shard breakdown.

        Deterministic like the per-shard signatures it aggregates; drop
        the ``"shards"`` key to compare totals field-by-field against a
        legacy single-fleet signature.
        """
        registry = self.registry
        return {
            "cloud_macs": self.cloud_compute.macs,
            "device_macs": self.device_compute.macs,
            "cloud_simulated_seconds": self.cloud_simulated_seconds,
            "device_simulated_seconds": self.device_simulated_seconds,
            "network_seconds": self.network_seconds,
            "network_bytes_up": self.network_bytes_up,
            "network_bytes_down": self.network_bytes_down,
            "onboards": self.onboards,
            "updates": self.updates,
            "queries": self.queries,
            "batches": self.batches,
            "registry_hits": registry.hits,
            "registry_cold_loads": registry.cold_loads,
            "registry_evictions": registry.evictions,
            "registry_load_seconds": registry.simulated_load_seconds,
            "eviction_log": tuple(registry.eviction_log),
            "adversary_queries": self.adversary_queries,
            "adversary_batches": self.adversary_batches,
            "adversary_cloud_macs": self.adversary_cloud_compute.macs,
            "adversary_device_macs": self.adversary_device_compute.macs,
            "adversary_device_simulated_seconds": self.adversary_device_simulated_seconds,
            "adversary_network_seconds": self.adversary_network_seconds,
            "shards": tuple(r.signature() for r in self.shard_reports),
        }


def overlay_signature(
    base: Dict[str, Any], prefix: str, overlay: Dict[str, Any]
) -> Dict[str, Any]:
    """Merge a stats overlay into a signature under a key prefix.

    The single definition of how the chaos (``chaos_*``) and resilience
    (``resilience_*``) layers join a report signature: keys are
    namespaced, the base is never mutated, and — crucially for the
    golden-signature tests — callers only apply an overlay when its
    layer is active, so null runs keep the exact legacy key set.
    """
    merged = dict(base)
    for key, value in overlay.items():
        merged[f"{prefix}{key}"] = value
    return merged


def totals_signature(signature: Dict[str, Any]) -> Dict[str, Any]:
    """A signature with any per-shard breakdown stripped.

    Makes a :class:`ClusterReport` signature directly comparable
    (field-by-field) with a legacy :class:`FleetReport` one — the K=1
    parity tests compare exactly through this projection.
    """
    return {key: value for key, value in signature.items() if key != "shards"}
