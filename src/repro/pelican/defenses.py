"""Alternative inference-time defenses (the paper's Table V taxonomy).

Pelican's contribution is the temperature privacy layer, but the paper's
related-work table surveys the design space of defenses against attribute
inference.  This module implements the *output perturbation* family so the
temperature defense can be compared head-to-head (see
``benchmarks/test_defense_comparison.py``):

* :class:`GaussianNoiseDefense` — add calibrated noise to confidence
  scores and renormalize (MemGuard-style perturbation, Table V row
  "Output perturbation").  Hurts top-k accuracy at high noise.
* :class:`RoundingDefense` — quantize confidences to a fixed number of
  decimal places (a common production mitigation).  Creates ties that
  blunt enumeration attacks.
* :class:`TopKOnlyDefense` — release only the top-k confidences, zeroing
  the tail (the "don't reveal more than the service needs" principle of
  paper §III-B).

All defenses wrap a :class:`~repro.models.predictor.NextLocationPredictor`
and present the same query interface, so the attack code runs against them
unchanged.  Unlike the temperature layer they may *change* top-k accuracy
— the comparison benchmark quantifies the utility cost of each.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.data.features import SessionFeatures
from repro.models.predictor import NextLocationPredictor
from repro.nn.functional import top_k_indices


class OutputDefense:
    """Base: a predictor wrapper that perturbs released confidences."""

    name = "identity"

    def __init__(self, predictor: NextLocationPredictor) -> None:
        self.predictor = predictor
        self.spec = predictor.spec

    def _perturb(self, probs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- the black-box query interface attacks and services consume -----
    def confidences_encoded(self, batch: np.ndarray) -> np.ndarray:
        return self._perturb(self.predictor.confidences_encoded(batch))

    def confidences(self, history: Sequence[SessionFeatures]) -> np.ndarray:
        encoded = self.spec.encode_sequence(history)[None, :, :]
        return self.confidences_encoded(encoded)[0]

    def top_k(self, history: Sequence[SessionFeatures], k: int) -> List[Tuple[int, float]]:
        probs = self.confidences(history)
        order = top_k_indices(probs, k)
        return [(int(loc), float(probs[loc])) for loc in order]

    def top_k_accuracy(self, X: np.ndarray, y: np.ndarray, k: int) -> float:
        """Service accuracy through the defense (may degrade, unlike the
        temperature layer)."""
        if len(X) == 0:
            return float("nan")
        probs = self.confidences_encoded(X)
        top = top_k_indices(probs, k, axis=-1)
        hits = (top == np.asarray(y)[:, None]).any(axis=1)
        return float(hits.mean())

    @property
    def query_count(self) -> int:
        return self.predictor.query_count

    @property
    def model(self):
        return self.predictor.model


class GaussianNoiseDefense(OutputDefense):
    """Add zero-mean Gaussian noise to confidences, clip, renormalize."""

    name = "gaussian-noise"

    def __init__(
        self, predictor: NextLocationPredictor, sigma: float = 0.05, seed: int = 0
    ) -> None:
        super().__init__(predictor)
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = sigma
        self._rng = np.random.default_rng(seed)

    def _perturb(self, probs: np.ndarray) -> np.ndarray:
        noisy = probs + self._rng.normal(0.0, self.sigma, size=probs.shape)
        noisy = np.clip(noisy, 1e-12, None)
        return noisy / noisy.sum(axis=-1, keepdims=True)


class RoundingDefense(OutputDefense):
    """Quantize confidences to ``decimals`` places (then renormalize)."""

    name = "rounding"

    def __init__(self, predictor: NextLocationPredictor, decimals: int = 2) -> None:
        super().__init__(predictor)
        if decimals < 0:
            raise ValueError("decimals must be non-negative")
        self.decimals = decimals

    def _perturb(self, probs: np.ndarray) -> np.ndarray:
        rounded = np.round(probs, self.decimals)
        totals = rounded.sum(axis=-1, keepdims=True)
        # All-zero rows (everything rounded away) fall back to uniform.
        uniform = np.full_like(rounded, 1.0 / rounded.shape[-1])
        safe = np.where(totals > 0, rounded / np.where(totals == 0, 1.0, totals), uniform)
        return safe


class TopKOnlyDefense(OutputDefense):
    """Release only the ``k`` largest confidences; zero the tail."""

    name = "top-k-only"

    def __init__(self, predictor: NextLocationPredictor, k: int = 3) -> None:
        super().__init__(predictor)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def _perturb(self, probs: np.ndarray) -> np.ndarray:
        squeeze = probs.ndim == 1
        if squeeze:
            probs = probs[None, :]
        kept = np.zeros_like(probs)
        top = top_k_indices(probs, self.k, axis=-1)
        np.put_along_axis(kept, top, np.take_along_axis(probs, top, axis=-1), axis=-1)
        totals = kept.sum(axis=-1, keepdims=True)
        kept = kept / np.where(totals == 0, 1.0, totals)
        return kept[0] if squeeze else kept
