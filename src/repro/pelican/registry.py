"""Cloud-side personalized-model registry (DESIGN.md §7).

A production cloud cannot keep millions of personal models resident in
memory.  The registry models that constraint: every registered model is
durably stored as a serialized checkpoint (``repro.nn.serialization``),
and at most ``capacity`` deserialized models stay *live* under LRU
eviction.  Touching an evicted model triggers a **cold load** — the blob
is deserialized and the model rebuilt bit-identically
(:func:`~repro.pelican.deployment.rebuild_personal_model`) — which costs
simulated storage-fetch seconds, so fleet reports expose the cache
pressure a given capacity implies.

Everything is deterministic: eviction order depends only on the access
sequence, and rebuild RNGs are derived from ``seed + user_id`` (the init
draws are overwritten by the checkpoint load anyway).

Byte accounting is split in two (DESIGN.md §14): blobs are *stored* in the
compact format-2 codec (physical bytes, what a store holds), but every
simulated fetch is *billed* at the logical npz size embedded in the compact
header — the size the transport layer books for the same checkpoint — so
swapping the physical codec or the store tier cannot move signatures.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.models.architecture import NextLocationModel
from repro.nn.serialization import encode_compact, logical_nbytes
from repro.pelican.deployment import rebuild_personal_model, serialize_personal_model
from repro.pelican.stacking import WeightStackCache
from repro.pelican.storage import BlobStore, MemoryBlobStore


@dataclass
class RegistryStats:
    """Cache behaviour of one registry over its lifetime."""

    hits: int = 0
    cold_loads: int = 0
    evictions: int = 0
    simulated_load_seconds: float = 0.0
    #: user ids in eviction order — the determinism tests compare this.
    eviction_log: List[int] = field(default_factory=list)


class ModelRegistry:
    """LRU cache of live personal models over a durable blob store.

    Parameters
    ----------
    capacity:
        Maximum number of deserialized models kept live.  ``None`` means
        unbounded (everything stays hot; cold loads never happen).
    seed:
        Base seed for rebuild RNGs (determinism of cold loads).
    storage_mbps:
        Simulated checkpoint-store fetch bandwidth; a cold load of a
        ``b``-byte blob costs ``b * 8 / (storage_mbps * 1e6)`` seconds.
    store:
        The durable blob store to read/write — any
        :class:`~repro.pelican.storage.BlobStore` (or a plain dict, as the
        parallel workers' replicas are).  Defaults to a private
        :class:`~repro.pelican.storage.MemoryBlobStore`; a
        :class:`~repro.pelican.cluster.Cluster` passes one shared store to
        every shard's registry, modeling cluster-wide durable storage
        under per-shard live caches — which is what lets a failover shard
        cold-load a user it never registered (DESIGN.md §9, §14).
    """

    def __init__(
        self,
        capacity: Optional[int] = 64,
        seed: int = 0,
        storage_mbps: float = 400.0,
        store: Optional[Union[Dict[int, bytes], BlobStore]] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("registry capacity must be >= 1 (or None for unbounded)")
        if storage_mbps <= 0:
            raise ValueError("storage bandwidth must be positive")
        self.capacity = capacity
        self.seed = seed
        self.storage_mbps = storage_mbps
        self._blobs: Union[Dict[int, bytes], BlobStore] = (
            MemoryBlobStore() if store is None else store
        )
        self._live: "OrderedDict[int, NextLocationModel]" = OrderedDict()
        self.stats = RegistryStats()
        #: Stacked-weight cache over the live set (DESIGN.md §12).  The
        #: registry owns it so coherence is structural: every transition
        #: that replaces or drops a live model invalidates the user's
        #: stack rows here, in the same call.  Cold loads need no hook —
        #: they rebuild bit-identically from the durable blob, and any
        #: blob change flows through :meth:`register`.
        self.stack_cache = WeightStackCache()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._blobs)

    def __contains__(self, user_id: int) -> bool:
        return user_id in self._blobs

    @property
    def resident_ids(self) -> List[int]:
        """Live user ids, least- to most-recently used."""
        return list(self._live)

    @property
    def stored_bytes(self) -> int:
        """Total physical size of the durable blob store.

        O(1) against a :class:`~repro.pelican.storage.BlobStore` (every
        store maintains a running byte counter across all mutation paths,
        including the cluster's direct writes that bypass any registry);
        plain-dict replicas fall back to the recomputed sum.
        """
        total = getattr(self._blobs, "total_bytes", None)
        if total is not None:
            return total
        return sum(len(blob) for blob in self._blobs.values())

    # ------------------------------------------------------------------
    def register(self, user_id: int, model: NextLocationModel) -> int:
        """Store a (re)deployed personal model; returns the logical blob size.

        The model is serialized into the durable store and becomes the
        most-recently-used live entry (a fresh deployment is about to be
        queried).  Re-registering a user replaces both copies.  Physical
        storage uses the compact format-2 transcode; the returned size is
        the logical npz size the transport layer would book.
        """
        blob = serialize_personal_model(model)
        self._blobs[user_id] = encode_compact(blob)
        self._live.pop(user_id, None)
        self._live[user_id] = model
        self.stack_cache.invalidate(user_id)
        self._evict_over_capacity()
        return len(blob)

    def get(self, user_id: int) -> NextLocationModel:
        """The live model for ``user_id``, cold-loading if evicted."""
        if user_id not in self._blobs:
            raise KeyError(f"user {user_id} has no registered model")
        if user_id in self._live:
            self.stats.hits += 1
            self._live.move_to_end(user_id)
            return self._live[user_id]
        # Zero-copy read where the store supports it (mmap-backed tiers);
        # rebuild copies every tensor out, so the view never outlives this
        # call.
        reader = getattr(self._blobs, "view", None)
        blob = reader(user_id) if reader is not None else self._blobs[user_id]
        model = rebuild_personal_model(
            blob, np.random.default_rng(self.seed + user_id)
        )
        self.stats.cold_loads += 1
        self.stats.simulated_load_seconds += self._fetch_seconds(user_id, blob)
        self._live[user_id] = model
        self._evict_over_capacity()
        return model

    def peek(self, user_id: int) -> Optional[NextLocationModel]:
        """The live model if resident, else ``None`` — no accounting,
        no LRU bump, no cold load.

        The resilience layer's stale tier (DESIGN.md §11) reads through
        this: during a full outage there is no shard to bill a durable
        fetch to, so a degraded answer may only reuse a copy that is
        already hot.
        """
        return self._live.get(user_id)

    def _fetch_seconds(self, user_id: int, blob: bytes) -> float:
        """Simulated cost of fetching one checkpoint from durable storage.

        Billed at the *logical* (npz-equivalent) blob size, not the
        physical compact size, so the stored codec cannot move signatures.
        Overridable hook: the chaos layer's flaky registry charges failed
        fetch attempts here, on top of this clean baseline.
        """
        return logical_nbytes(blob) * 8 / (self.storage_mbps * 1e6)

    def evict(self, user_id: int) -> bool:
        """Explicitly drop a live model (the blob stays); True if it was live."""
        if user_id in self._live:
            del self._live[user_id]
            self.stats.evictions += 1
            self.stats.eviction_log.append(user_id)
            self.stack_cache.invalidate(user_id)
            return True
        return False

    def _evict_over_capacity(self) -> None:
        if self.capacity is None:
            return
        while len(self._live) > self.capacity:
            evicted, _ = self._live.popitem(last=False)
            self.stats.evictions += 1
            self.stats.eviction_log.append(evicted)
            self.stack_cache.invalidate(evicted)
