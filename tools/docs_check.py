#!/usr/bin/env python
"""Docs health checks: §-references, local links, runnable code blocks.

Keeps the documentation satellites permanently green (the CI ``docs``
job runs this on every push):

* **§-reference check** — every arabic ``§N`` citation in the sources,
  tests, benchmarks, examples, and markdown docs must resolve to a
  ``## §N`` section header in ``DESIGN.md``.  (Roman-numeral citations
  like ``§III-B2`` refer to the *paper* and are ignored.)
* **link check** — every relative markdown link target must exist.
* **code-block smoke** (``--run-blocks``) — extract the fenced ``bash``
  blocks from ``README.md`` and execute the runnable command lines (the
  quickstart examples and every fast CLI invocation) so the examples in
  the docs are verified *as written*.

Usage::

    python tools/docs_check.py               # static checks (fast)
    python tools/docs_check.py --run-blocks  # + execute README commands
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DESIGN = REPO_ROOT / "DESIGN.md"

#: Files scanned for DESIGN §-references and markdown links.
MARKDOWN_DOCS = ["README.md", "DESIGN.md", "ROADMAP.md"]
SOURCE_DIRS = ["src", "tests", "benchmarks", "examples", "tools"]

#: Runnable README lines: repo CLI / example invocations.  Slow paths —
#: the test suite, benchmarks, non-tiny scales — are excluded; the point
#: is that every *quoted quickstart command* works as written.
RUNNABLE = re.compile(r"^PYTHONPATH=src python (-m repro\b|examples/)")
EXCLUDE = re.compile(r"-m pytest|run_benchmarks|--scale (small|paper)")


def design_sections() -> set:
    """Arabic section numbers DESIGN.md actually defines."""
    return {
        int(number)
        for number in re.findall(r"^## §(\d+)", DESIGN.read_text(), re.MULTILINE)
    }


def iter_scanned_files():
    for name in MARKDOWN_DOCS:
        yield REPO_ROOT / name
    for directory in SOURCE_DIRS:
        root = REPO_ROOT / directory
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" not in path.parts:
                yield path


def check_section_references() -> list:
    """Dangling ``§N`` citations (arabic = DESIGN reference by convention)."""
    sections = design_sections()
    errors = []
    for path in iter_scanned_files():
        text = path.read_text()
        for line_number, line in enumerate(text.splitlines(), 1):
            for match in re.finditer(r"§(\d+)\b", line):
                number = int(match.group(1))
                if number not in sections:
                    errors.append(
                        f"{path.relative_to(REPO_ROOT)}:{line_number}: "
                        f"dangling reference §{number} "
                        f"(DESIGN.md defines {sorted(sections)})"
                    )
    return errors


def check_local_links() -> list:
    """Relative markdown link targets that do not exist."""
    errors = []
    for name in MARKDOWN_DOCS:
        path = REPO_ROOT / name
        for line_number, line in enumerate(path.read_text().splitlines(), 1):
            for match in re.finditer(r"\[[^\]]+\]\(([^)]+)\)", line):
                target = match.group(1)
                if "://" in target or target.startswith("#") or target.startswith("mailto:"):
                    continue
                resolved = (path.parent / target.split("#")[0]).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{name}:{line_number}: dead local link {target!r}"
                    )
    return errors


def extract_runnable_commands(markdown: pathlib.Path) -> list:
    """Runnable command lines from the fenced bash blocks, continuations
    joined."""
    commands = []
    in_bash = False
    pending = ""
    for line in markdown.read_text().splitlines():
        stripped = line.strip()
        if stripped.startswith("```"):
            in_bash = stripped == "```bash"
            pending = ""
            continue
        if not in_bash:
            continue
        if pending:
            pending += " " + stripped.rstrip("\\").strip()
        elif stripped.endswith("\\"):
            pending = stripped.rstrip("\\").strip()
        else:
            pending = stripped
        if stripped.endswith("\\"):
            continue
        command, pending = pending, ""
        command = command.split(" #")[0].strip()  # drop inline comments
        if command and RUNNABLE.search(command) and not EXCLUDE.search(command):
            commands.append(command)
    return commands


def run_blocks() -> list:
    """Execute every runnable README command; return failures."""
    errors = []
    commands = extract_runnable_commands(REPO_ROOT / "README.md")
    if not commands:
        return ["README.md: no runnable commands found (extraction broken?)"]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    for command in commands:
        # The PYTHONPATH prefix is baked into env; strip it off the line.
        argv = command.split()[1:]
        print(f"$ {command}", flush=True)
        result = subprocess.run(argv, cwd=REPO_ROOT, env=env)
        if result.returncode != 0:
            errors.append(f"README.md command failed ({result.returncode}): {command}")
    # Artifacts some quickstart commands write in the working tree.
    corpus = REPO_ROOT / "corpus.npz"
    if corpus.exists():
        corpus.unlink()
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--run-blocks",
        action="store_true",
        help="also execute the runnable README command lines (slow)",
    )
    args = parser.parse_args()

    errors = check_section_references() + check_local_links()
    if args.run_blocks and not errors:
        errors += run_blocks()
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"\ndocs check FAILED: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    scope = "static + code blocks" if args.run_blocks else "static"
    print(f"docs check OK ({scope})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
