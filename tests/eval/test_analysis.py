"""Unit tests for the correlation analysis."""

import numpy as np
import pytest

from repro.eval import ScatterStudy, pearson


class TestPearson:
    def test_perfect_positive(self):
        result = pearson([1, 2, 3, 4], [2, 4, 6, 8])
        assert result.coefficient == pytest.approx(1.0)
        assert result.p_value < 0.05
        assert result.is_significant()

    def test_significance_threshold(self):
        result = pearson([1, 2, 3, 4, 2], [2, 1, 4, 3, 4])
        assert not result.is_significant(alpha=0.001)

    def test_perfect_negative(self):
        result = pearson([1, 2, 3, 4], [8, 6, 4, 2])
        assert result.coefficient == pytest.approx(-1.0)

    def test_nan_pairs_dropped(self):
        result = pearson([1, 2, np.nan, 4, 5], [2, 4, 6, 8, 10])
        assert result.n == 4
        assert result.coefficient == pytest.approx(1.0)

    def test_constant_input_returns_zero(self):
        result = pearson([1, 1, 1, 1], [1, 2, 3, 4])
        assert result.coefficient == 0.0
        assert result.p_value == 1.0

    def test_too_few_points_nan(self):
        result = pearson([1, 2], [3, 4])
        assert np.isnan(result.coefficient)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson([1, 2, 3], [1, 2])


class TestScatterStudy:
    def test_correlation_from_points(self):
        study = ScatterStudy(
            covariate_name="visits",
            points={1: (10.0, 20.0), 2: (20.0, 40.0), 3: (30.0, 60.0), 4: (40.0, 80.0)},
        )
        assert study.correlation().coefficient == pytest.approx(1.0)
