"""Unit tests for text rendering of results."""

from repro.eval import (
    AttackMethodResult,
    PersonalizationRow,
    format_table,
    render_accuracy_grid,
    render_attack_methods,
    render_personalization,
    render_series,
    render_training_sweep,
)
from repro.eval.reporting import render_bar_chart


class TestFormatTable:
    def test_alignment_and_separator(self):
        out = format_table(["a", "bb"], [["x", 1.5], ["yy", 2.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "---" in lines[1]
        assert "1.50" in lines[2]

    def test_empty_rows(self):
        out = format_table(["only", "headers"], [])
        assert "only" in out


class TestRenderers:
    def test_render_series(self):
        out = render_series({1: 50.0, 3: 75.0})
        assert "50.00" in out and "75.00" in out

    def test_render_attack_methods(self):
        results = {
            "time-based": AttackMethodResult(
                name="time-based", accuracy={1: 30.0, 3: 60.0}, runtime_seconds=1.5, queries=100
            )
        }
        out = render_attack_methods(results)
        assert "time-based" in out
        assert "top-1" in out
        assert "100" in out

    def test_render_accuracy_grid(self):
        out = render_accuracy_grid({"A1": {1: 10.0, 3: 20.0}}, row_label="adversary")
        assert "adversary" in out
        assert "A1" in out

    def test_render_personalization(self):
        rows = {
            "building": [
                PersonalizationRow("tl_fe", train_top1=60.0, test_top1=55.0, test_top2=65.0, test_top3=70.0)
            ]
        }
        out = render_personalization(rows)
        assert "building" in out and "tl_fe" in out and "55.00" in out

    def test_render_bar_chart_scales_to_peak(self):
        out = render_bar_chart({"a": 50.0, "b": 25.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5
        assert "50.0%" in lines[0]

    def test_render_bar_chart_empty(self):
        assert "empty" in render_bar_chart({})

    def test_render_bar_chart_zero_values(self):
        out = render_bar_chart({"a": 0.0})
        assert "█" not in out

    def test_render_training_sweep(self):
        rows = {
            2: [PersonalizationRow("lstm", 80.0, 45.0, 55.0, 60.0)],
            4: [PersonalizationRow("lstm", 85.0, 50.0, 60.0, 66.0)],
        }
        out = render_training_sweep(rows)
        assert "weeks" in out
        assert "lstm" in out
