"""Structural tests for the experiment runners at tiny scale.

These assert result *shapes* and invariants, not the paper's numbers (the
benchmarks regenerate the numbers at a meaningful scale).
"""

import numpy as np
import pytest

from repro.eval import (
    run_adversary_comparison,
    run_attack_methods,
    run_defense_on_personalization,
    run_mobility_degree_study,
    run_personalization_comparison,
    run_prior_comparison,
    run_training_size_sweep,
)
from repro.data import SpatialLevel


class TestAttackMethods:
    @pytest.fixture(scope="class")
    def results(self, tiny_pipeline):
        return run_attack_methods(tiny_pipeline, ks=(1, 3))

    def test_all_three_methods_present(self, results):
        assert set(results) == {"brute force", "gradient descent", "time-based"}

    def test_accuracy_in_percent_range(self, results):
        for result in results.values():
            for accuracy in result.accuracy.values():
                assert 0.0 <= accuracy <= 100.0

    def test_accuracy_monotone_in_k(self, results):
        for result in results.values():
            assert result.accuracy[3] >= result.accuracy[1]

    def test_time_based_queries_fewer_than_brute(self, results):
        assert results["time-based"].queries < results["brute force"].queries

    def test_runtimes_positive(self, results):
        for result in results.values():
            assert result.runtime_seconds > 0


class TestAdversaries:
    def test_all_adversaries_reported(self, tiny_pipeline):
        results = run_adversary_comparison(tiny_pipeline, ks=(1, 3))
        assert set(results) == {"A1", "A2", "A3"}
        for series in results.values():
            assert series[3] >= series[1]


class TestPriors:
    def test_all_prior_modes_reported(self, tiny_pipeline):
        results = run_prior_comparison(tiny_pipeline, ks=(1, 3))
        assert set(results) == {"true", "none", "predict", "estimate"}


class TestPersonalizationTable:
    def test_rows_and_levels(self, tiny_pipeline):
        results = run_personalization_comparison(
            tiny_pipeline, levels=[SpatialLevel.BUILDING]
        )
        rows = results["building"]
        assert [r.method for r in rows] == ["reuse", "lstm", "tl_fe", "tl_ft"]
        for row in rows:
            assert 0 <= row.test_top1 <= row.test_top2 <= row.test_top3 <= 100.0


class TestTrainingSweep:
    def test_weeks_and_methods(self, tiny_pipeline):
        results = run_training_size_sweep(tiny_pipeline, weeks=(1, 2))
        assert set(results) == {1, 2}
        for rows in results.values():
            assert {r.method for r in rows} == {"lstm", "tl_fe", "tl_ft"}


class TestDefense:
    def test_reduction_bounded(self, tiny_pipeline):
        results = run_defense_on_personalization(tiny_pipeline, ks=(1, 3))
        for series in results.values():
            for reduction in series.values():
                assert 0.0 <= reduction <= 100.0


class TestMobilityStudy:
    def test_points_per_user(self, tiny_pipeline):
        studies = run_mobility_degree_study(tiny_pipeline)
        assert set(studies) == {"building", "ap"}
        for study in studies.values():
            assert len(study.points) == len(tiny_pipeline.attack_users())
