"""Tests for the fleet-throughput experiment runner."""

from repro.eval import ExperimentScale, render_fleet, run_fleet_throughput


class TestFleetThroughput:
    def test_tiny_fast_setup_run(self):
        result = run_fleet_throughput(
            ExperimentScale.tiny(), queries_per_user=4, fast_setup=True
        )
        assert result.scale == "tiny"
        assert result.parity
        assert result.num_queries == 4 * result.num_users
        # One fused dispatch per user: requests interleave users but group per model.
        assert result.batches == result.num_users
        assert result.batched_seconds > 0 and result.looped_seconds > 0
        assert result.report.queries == result.num_queries
        # Mixed local/cloud deployment exercises both sides.
        assert result.report.cloud_compute.macs > 0
        assert result.report.device_compute.macs > 0

    def test_render_fleet(self):
        result = run_fleet_throughput(
            ExperimentScale.tiny(), queries_per_user=2, fast_setup=True
        )
        text = render_fleet(result)
        assert "parity: identical outputs" in text
        assert "per-side attribution" in text
        assert "registry" in text

    def test_sharded_run_matches_single_cloud(self):
        """The --shards axis: same workload, same totals, sharded books."""
        single = run_fleet_throughput(
            ExperimentScale.tiny(), queries_per_user=4, fast_setup=True
        )
        sharded = run_fleet_throughput(
            ExperimentScale.tiny(), queries_per_user=4, fast_setup=True, num_shards=2
        )
        assert sharded.parity
        assert sharded.num_shards == 2
        assert sharded.num_queries == single.num_queries
        assert sharded.report.queries == single.report.queries
        # The per-shard books sum to the same serving totals.
        assert sharded.report.cloud_compute.macs == single.report.cloud_compute.macs
        text = render_fleet(sharded)
        assert "on 2 shards" in text
        assert "per-shard breakdown" in text
