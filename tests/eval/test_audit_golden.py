"""Golden-signature regression test for one canonical audit run.

Same pattern as ``tests/pelican/test_golden_signature.py``: replay one
small canonical audit suite and compare :meth:`AuditReport.signature`
*exactly* against the committed JSON.  Every field is deterministic —
leakage rates are functions of seeded models and tie-broken rankings,
accounting is fixed-order arithmetic over integer MAC counts — so any
drift means the audit measurement changed, intended or not.

If a change is intentional (e.g. probe traffic now carries a new cost),
regenerate the golden and commit it together with the change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src pytest tests/eval/test_audit_golden.py
"""

import json
import os
from pathlib import Path

from repro.eval import ExperimentScale, run_audit_suite

GOLDEN_PATH = Path(__file__).parent / "golden_audit_signature.json"


def compute_golden():
    report = run_audit_suite(
        ExperimentScale.tiny(),
        regimes=("campus",),
        defenses=("none", "temperature"),
        adversaries=("A1",),
        queries_per_user=1,
        max_instances=3,
    )
    # tuples -> lists, exact floats — byte-comparable after a JSON trip.
    return json.loads(json.dumps(report.signature()))


class TestGoldenAuditSignature:
    def test_signature_matches_committed_golden(self):
        current = compute_golden()
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            GOLDEN_PATH.write_text(json.dumps(current, indent=2) + "\n")
        golden = json.loads(GOLDEN_PATH.read_text())
        assert set(current) == set(golden), "signature fields changed"
        assert set(current["cells"]) == set(golden["cells"]), "audit cells changed"
        for cell_key, cell in golden["cells"].items():
            for field in cell:
                assert current["cells"][cell_key][field] == cell[field], (
                    f"audit drift in {cell_key}/{field!r}: "
                    f"golden {cell[field]!r} != current "
                    f"{current['cells'][cell_key][field]!r} "
                    "(if intentional, regenerate with REPRO_UPDATE_GOLDEN=1)"
                )

    def test_golden_run_exercises_the_audit_path(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        for cell in golden["cells"].values():
            assert cell["adversary_queries"] > 0
            assert cell["benign_queries"] > 0
            assert cell["signature"]["adversary_cloud_macs"] > 0
            assert cell["signature"]["adversary_device_macs"] > 0
        undefended = golden["cells"]["campus/none/A1"]["leakage"]
        defended = golden["cells"]["campus/temperature/A1"]["leakage"]
        assert all(defended[k] <= undefended[k] for k in undefended)
