"""Tests for the scenario matrix runner (DESIGN.md §8)."""

import pytest

from repro.eval import (
    ExperimentScale,
    build_scenario_schedule,
    render_scenarios,
    run_scenario_suite,
)

REGIMES = ("campus", "commuter", "tourist")
POLICIES = ("none", "lossy_network", "churn")


@pytest.fixture(scope="module")
def tiny_suite():
    """The acceptance matrix: >= 3 regimes x >= 2 chaos policies, tiny scale."""
    return run_scenario_suite(
        ExperimentScale.tiny(),
        regimes=REGIMES,
        policies=POLICIES,
        queries_per_user=3,
        fast_setup=True,
    )


class TestScenarioSuite:
    def test_full_matrix_covered(self, tiny_suite):
        assert len(tiny_suite.results) == len(REGIMES) * len(POLICIES)
        cells = {(r.regime, r.policy) for r in tiny_suite.results}
        assert cells == {(r, p) for r in REGIMES for p in POLICIES}
        for cell in tiny_suite.results:
            assert 0.0 <= cell.hit_rate <= 1.0
            assert cell.num_queries == 3 * cell.num_users
            assert cell.signature["queries"] == cell.num_queries

    def test_deterministic(self, tiny_suite):
        """Same seed ⇒ identical signatures across a full re-run."""
        rerun = run_scenario_suite(
            ExperimentScale.tiny(),
            regimes=REGIMES,
            policies=POLICIES,
            queries_per_user=3,
            fast_setup=True,
        )
        for cell, again in zip(tiny_suite.results, rerun.results):
            assert (cell.regime, cell.policy) == (again.regime, again.policy)
            assert cell.signature == again.signature
            assert cell.chaos == again.chaos
            assert cell.hit_rate == again.hit_rate

    def test_clean_baseline_has_zero_deltas(self, tiny_suite):
        for regime in REGIMES:
            baseline = tiny_suite.cell(regime, "none")
            assert baseline.hit_rate_delta == 0.0
            assert baseline.network_seconds_delta == 0.0
            assert baseline.chaos["transfer_retries"] == 0
            assert baseline.chaos["deferred_events"] == 0

    def test_faults_cost_never_lose_queries(self, tiny_suite):
        for regime in REGIMES:
            baseline = tiny_suite.cell(regime, "none")
            lossy = tiny_suite.cell(regime, "lossy_network")
            assert lossy.num_queries == baseline.num_queries
            # Retried packets make the network strictly more expensive.
            assert lossy.chaos["transfer_retries"] > 0
            assert lossy.network_seconds_delta > 0
            # Transport faults never touch the compute books.
            assert lossy.signature["cloud_macs"] == baseline.signature["cloud_macs"]
            assert lossy.signature["device_macs"] == baseline.signature["device_macs"]

    def test_regimes_produce_distinct_populations(self, tiny_suite):
        """Each regime serves a genuinely different corpus.  (The
        predictability *ordering* — commuters easier than tourists — is
        asserted on profile knobs and trace statistics in
        tests/data/test_regimes.py, where it is deterministic; hit rates
        in a 2-user tiny cell are too small a sample to order reliably.)"""
        baselines = [tiny_suite.cell(regime, "none") for regime in REGIMES]
        signatures = [tuple(sorted(b.signature.items(), key=lambda kv: kv[0]))
                      for b in baselines]
        assert len({str(s) for s in signatures}) == len(REGIMES)

    def test_cell_lookup_raises_on_unknown(self, tiny_suite):
        with pytest.raises(KeyError):
            tiny_suite.cell("campus", "meteor_strike")

    def test_sharded_suite_runs_and_reproduces(self):
        """The --shards axis: cluster cells cover the same matrix and the
        replay (including shard outages with failover) is deterministic."""
        kwargs = dict(
            regimes=("campus",),
            policies=("none", "shard_outage"),
            queries_per_user=2,
            fast_setup=True,
            num_shards=2,
        )
        suite = run_scenario_suite(ExperimentScale.tiny(), **kwargs)
        rerun = run_scenario_suite(ExperimentScale.tiny(), **kwargs)
        assert suite.num_shards == 2
        assert len(suite.results) == 2
        for cell, again in zip(suite.results, rerun.results):
            assert cell.signature == again.signature
            assert cell.chaos == again.chaos
            assert cell.hit_rate == again.hit_rate
        clean = suite.cell("campus", "none")
        outage = suite.cell("campus", "shard_outage")
        assert len(clean.signature["shards"]) == 2
        assert outage.num_queries == clean.num_queries
        # Outages cost time/routing, never answers or compute totals.
        assert outage.signature["cloud_macs"] == clean.signature["cloud_macs"]
        assert "scenario matrix @ tiny" in render_scenarios(suite)
        assert "2 shards" in render_scenarios(suite)

    def test_render(self, tiny_suite):
        text = render_scenarios(tiny_suite)
        assert "scenario matrix @ tiny" in text
        for regime in REGIMES:
            assert regime in text
        for policy in POLICIES:
            assert policy in text


class TestResilienceAxis:
    """The --resilience axis over the matrix (DESIGN.md §11)."""

    KWARGS = dict(
        regimes=("campus",),
        policies=("none", "blackout"),
        queries_per_user=2,
        fast_setup=True,
        num_shards=2,
    )

    @pytest.fixture(scope="class")
    def pair(self):
        """The same blackout matrix, unprotected vs default-resilient."""
        baseline = run_scenario_suite(ExperimentScale.tiny(), **self.KWARGS)
        resilient = run_scenario_suite(
            ExperimentScale.tiny(), resilience="default", **self.KWARGS
        )
        return baseline, resilient

    def test_availability_columns_populated(self, pair):
        baseline, resilient = pair
        assert baseline.resilience == "none"
        assert resilient.resilience == "default"
        assert resilient.deadline > 0
        for suite in pair:
            for cell in suite.results:
                assert 0.0 <= cell.slo_attainment <= cell.availability <= 1.0
                assert cell.shed_queries >= 0
                assert cell.degraded_queries >= 0

    def test_resilience_lifts_blackout_availability(self, pair):
        """The acceptance comparison: on the shared deadline scale the
        default policy beats the unprotected baseline under blackout."""
        baseline, resilient = pair
        assert baseline.deadline == resilient.deadline
        unprotected = baseline.cell("campus", "blackout")
        protected = resilient.cell("campus", "blackout")
        assert protected.availability > unprotected.availability
        # The lift comes from flagged degraded answers, not silent fiction.
        assert protected.degraded_queries > 0
        assert unprotected.degraded_queries == 0

    def test_clean_cell_is_not_degraded(self, pair):
        _, resilient = pair
        clean = resilient.cell("campus", "none")
        assert clean.availability == 1.0
        assert clean.slo_attainment == 1.0
        assert clean.shed_queries == 0
        assert clean.degraded_queries == 0

    def test_null_resilience_signatures_identical(self):
        """resilience="none" is byte-identical to omitting the axis."""
        kwargs = dict(
            regimes=("campus",),
            policies=("none",),
            queries_per_user=2,
            fast_setup=True,
        )
        bare = run_scenario_suite(ExperimentScale.tiny(), **kwargs)
        nulled = run_scenario_suite(
            ExperimentScale.tiny(), resilience="none", **kwargs
        )
        for cell, again in zip(bare.results, nulled.results):
            assert cell.signature == again.signature
            assert set(cell.signature) == set(again.signature)

    def test_render_shows_resilience_columns(self, pair):
        _, resilient = pair
        text = render_scenarios(resilient)
        assert "resilience default" in text
        for column in ("avail", "SLO", "shed", "degr"):
            assert column in text


class TestScenarioSchedule:
    def test_targets_keyed_by_event_seq(self):
        from repro.data import SpatialLevel, generate_regime_corpus
        from repro.eval.config import ExperimentScale

        scale = ExperimentScale.tiny()
        corpus = generate_regime_corpus(scale.corpus, "campus")
        splits = {
            uid: corpus.user_dataset(uid, SpatialLevel.BUILDING).split(0.8)
            for uid in corpus.personal_ids
        }
        schedule, targets = build_scenario_schedule(corpus, splits, queries_per_user=2)
        events = {e.seq: e for e in schedule.ordered()}
        assert len(targets) == 2 * len(corpus.personal_ids)
        for seq, target in targets.items():
            assert events[seq].kind.value == "query"
            assert 0 <= target < corpus.spec(SpatialLevel.BUILDING).num_locations
        kinds = [e.kind.value for e in schedule.ordered()]
        assert kinds.count("onboard") == len(corpus.personal_ids)
        assert kinds.count("update") == 1
