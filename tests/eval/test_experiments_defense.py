"""Structural tests for the overhead and defense-sweep runners."""

import numpy as np
import pytest

from repro.eval import (
    run_defense_on_spatial_levels,
    run_overhead_comparison,
    run_spatial_comparison,
    run_temperature_sweep,
)


class TestOverheadRunner:
    @pytest.fixture(scope="class")
    def result(self, tiny_pipeline):
        return run_overhead_comparison(tiny_pipeline, grid_search_folds=2, grid_sizes=(0,))

    def test_cloud_dominates_device(self, result):
        for method in ("tl_fe", "tl_ft"):
            assert result.ratio(method) > 1.0

    def test_reports_populated(self, result):
        assert result.cloud.macs > 0
        assert result.cloud.wall_seconds > 0
        for report in result.device_per_method.values():
            assert report.macs > 0
            assert report.estimated_billion_cycles > 0

    def test_ratio_infinite_on_zero_device(self, result):
        from repro.eval.experiments import OverheadResult
        from repro.pelican.cloud import ResourceReport

        fake = OverheadResult(
            cloud=result.cloud,
            device_per_method={"x": ResourceReport(macs=0, estimated_billion_cycles=0, wall_seconds=0)},
        )
        assert fake.ratio("x") == float("inf")


class TestTemperatureSweepRunner:
    def test_sweep_structure(self, tiny_pipeline):
        results = run_temperature_sweep(
            tiny_pipeline, temperatures=(1e-1, 1e-3), ks=(1, 3)
        )
        assert set(results) == {1e-1, 1e-3}
        for value in results.values():
            assert 0.0 <= value <= 100.0


class TestSpatialRunners:
    def test_defense_on_spatial_levels_structure(self, tiny_pipeline):
        results = run_defense_on_spatial_levels(tiny_pipeline, ks=(1, 3))
        assert set(results) == {"building", "ap"}
        for series in results.values():
            assert set(series) == {1, 3}

    def test_spatial_comparison_structure(self, tiny_pipeline):
        results = run_spatial_comparison(tiny_pipeline, ks=(1, 3))
        assert set(results) == {"building", "ap"}
        for series in results.values():
            assert series[3] >= series[1]
