"""Unit tests for the calibration metrics."""

import numpy as np
import pytest

from repro.eval import expected_calibration_error


class TestECE:
    def test_perfectly_calibrated_low_ece(self):
        rng = np.random.default_rng(0)
        n = 4000
        # Two classes; confidence p drawn uniformly; outcome correct with prob p.
        p = rng.uniform(0.5, 1.0, size=n)
        confidences = np.stack([p, 1 - p], axis=1)
        correct = rng.random(n) < p
        targets = np.where(correct, 0, 1)
        report = expected_calibration_error(confidences, targets, num_bins=10)
        assert report.ece < 0.05

    def test_overconfident_model_high_ece(self):
        n = 500
        confidences = np.tile([0.99, 0.01], (n, 1))
        targets = np.array([0] * (n // 2) + [1] * (n - n // 2))  # 50% accurate
        report = expected_calibration_error(confidences, targets)
        assert report.ece > 0.4

    def test_saturated_privacy_layer_is_maximally_miscalibrated(self):
        """The Pelican privacy layer's signature: confidence 1.0 with
        accuracy < 1 shows up as ECE = 1 - accuracy."""
        confidences = np.zeros((100, 5))
        confidences[:, 0] = 1.0
        targets = np.zeros(100, dtype=int)
        targets[70:] = 1  # 70% accurate
        report = expected_calibration_error(confidences, targets)
        assert report.ece == pytest.approx(0.3)

    def test_bins_partition_samples(self):
        rng = np.random.default_rng(1)
        confidences = rng.dirichlet(np.ones(4), size=200)
        targets = rng.integers(0, 4, size=200)
        report = expected_calibration_error(confidences, targets, num_bins=8)
        assert report.bin_counts.sum() == 200

    def test_empty_input(self):
        report = expected_calibration_error(np.zeros((0, 3)), np.zeros(0))
        assert np.isnan(report.ece)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            expected_calibration_error(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            expected_calibration_error(np.zeros((5, 2)), np.zeros(4))
