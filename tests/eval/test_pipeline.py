"""Unit tests for the memoizing evaluation pipeline."""

import numpy as np
import pytest

from repro.data import SpatialLevel
from repro.eval import ExperimentScale, Pipeline
from repro.models import PersonalizationMethod


class TestScales:
    def test_tiers_exist_and_order(self):
        tiny = ExperimentScale.tiny()
        small = ExperimentScale.small()
        paper = ExperimentScale.paper()
        assert tiny.corpus.num_contributors < small.corpus.num_contributors
        assert small.corpus.num_contributors < paper.corpus.num_contributors
        assert paper.corpus.num_buildings == 150

    def test_with_corpus_override(self):
        scale = ExperimentScale.tiny().with_corpus(num_days=99)
        assert scale.corpus.num_days == 99
        assert scale.general == ExperimentScale.tiny().general


class TestPipelineCaching:
    def test_corpus_cached(self, tiny_pipeline):
        assert tiny_pipeline.corpus is tiny_pipeline.corpus

    def test_general_model_cached(self, tiny_pipeline):
        a = tiny_pipeline.general(SpatialLevel.BUILDING)
        b = tiny_pipeline.general(SpatialLevel.BUILDING)
        assert a[0] is b[0]

    def test_personal_cached_by_key(self, tiny_pipeline):
        uid = tiny_pipeline.attack_users()[0]
        a = tiny_pipeline.personal(uid, SpatialLevel.BUILDING)
        b = tiny_pipeline.personal(uid, SpatialLevel.BUILDING)
        assert a is b
        c = tiny_pipeline.personal(uid, SpatialLevel.BUILDING, PersonalizationMethod.TL_FT)
        assert c is not a

    def test_attack_users_limited(self, tiny_pipeline):
        users = tiny_pipeline.attack_users()
        assert len(users) <= tiny_pipeline.scale.max_attack_users
        assert set(users) <= set(tiny_pipeline.corpus.personal_ids)


class TestAttackTargets:
    def test_target_bundle_shapes(self, tiny_pipeline):
        uid = tiny_pipeline.attack_users()[0]
        target = tiny_pipeline.attack_target(uid, SpatialLevel.BUILDING)
        spec = tiny_pipeline.spec(SpatialLevel.BUILDING)
        assert target.prior.shape == (spec.num_locations,)
        np.testing.assert_allclose(target.prior.sum(), 1.0, atol=1e-9)
        assert 0 < len(target.pruned_locations) <= spec.num_locations
        assert len(target.windows) > 0

    def test_temperature_builds_defended_predictor(self, tiny_pipeline):
        uid = tiny_pipeline.attack_users()[0]
        defended = tiny_pipeline.attack_target(uid, SpatialLevel.BUILDING, temperature=1e-4)
        undefended = tiny_pipeline.attack_target(uid, SpatialLevel.BUILDING)
        assert defended.predictor.model.privacy_temperature == 1e-4
        assert undefended.predictor.model.privacy_temperature == 1.0
        # Cached artifact itself must stay undefended.
        artifact = tiny_pipeline.personal(uid, SpatialLevel.BUILDING)
        assert artifact.model.privacy_temperature == 1.0

    def test_personal_week_limit(self, tiny_pipeline):
        uid = tiny_pipeline.attack_users()[0]
        limited = tiny_pipeline.personal(uid, SpatialLevel.BUILDING, train_weeks=1)
        full = tiny_pipeline.personal(uid, SpatialLevel.BUILDING)
        assert len(limited.train) <= len(full.train)
        # Test windows identical regardless of training size.
        assert [w.target for w in limited.test.windows] == [
            w.target for w in full.test.windows
        ]
