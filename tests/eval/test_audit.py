"""The audit-suite runner (``repro.eval.audit``, DESIGN.md §10)."""

import numpy as np
import pytest

from repro.eval import ExperimentScale, render_audit, run_audit_suite
from repro.eval.audit import AUDIT_DEFENSES


@pytest.fixture(scope="module")
def tiny_report():
    """One canonical suite at the tiny scale, shared across tests."""
    return run_audit_suite(
        ExperimentScale.tiny(),
        regimes=("campus",),
        defenses=("none", "temperature"),
        adversaries=("A1",),
        queries_per_user=1,
        max_instances=3,
    )


class TestAuditSuite:
    def test_matrix_covers_requested_cells(self, tiny_report):
        assert len(tiny_report.cells) == 2
        for defense in ("none", "temperature"):
            cell = tiny_report.cell("campus", defense, "A1")
            assert cell.num_users == 2
            assert cell.covered_users == 2
            assert cell.num_instances == 6  # 2 users x 3 instances
            assert cell.adversary_queries > 0
            assert cell.benign_queries == 2  # 2 users x 1 tick
            assert set(cell.leakage) == {1, 2, 3}

    def test_leakage_bounded_and_monotone_in_k(self, tiny_report):
        for cell in tiny_report.cells:
            values = [cell.leakage[k] for k in sorted(cell.leakage)]
            assert all(0.0 <= v <= 1.0 for v in values)
            assert values == sorted(values)  # hit@k grows with k

    def test_temperature_defense_never_increases_leakage(self, tiny_report):
        undefended = tiny_report.cell("campus", "none", "A1").leakage
        defended = tiny_report.cell("campus", "temperature", "A1").leakage
        for k in undefended:
            assert defended[k] <= undefended[k]

    def test_same_seed_signature_bit_identical(self, tiny_report):
        rerun = run_audit_suite(
            ExperimentScale.tiny(),
            regimes=("campus",),
            defenses=("none", "temperature"),
            adversaries=("A1",),
            queries_per_user=1,
            max_instances=3,
        )
        assert rerun.signature() == tiny_report.signature()

    def test_adversary_books_are_subset_of_totals(self, tiny_report):
        for cell in tiny_report.cells:
            signature = cell.signature
            assert 0 < signature["adversary_queries"] <= signature["queries"]
            assert signature["adversary_cloud_macs"] <= signature["cloud_macs"]
            assert signature["adversary_device_macs"] <= signature["device_macs"]
            assert (
                signature["adversary_network_seconds"] <= signature["network_seconds"]
            )
            # Benign = total - adversary, field by field.
            assert (
                cell.benign_queries
                == signature["queries"] - signature["adversary_queries"]
            )

    def test_chaos_policy_moves_books_not_leakage(self, tiny_report):
        chaotic = run_audit_suite(
            ExperimentScale.tiny(),
            regimes=("campus",),
            defenses=("none", "temperature"),
            adversaries=("A1",),
            queries_per_user=1,
            max_instances=3,
            policy="lossy_network",
            chaos_seed=7,
        )
        for cell, clean in zip(chaotic.cells, tiny_report.cells):
            assert cell.leakage == clean.leakage
            assert cell.signature["chaos_transfer_retries"] > 0

    def test_blackout_with_resilience_keeps_leakage_invariant(self, tiny_report):
        """Leakage-invariance under the worst preset: a blackout with the
        default resilience policy moves the chaos/resilience books but
        never the leakage curves (probes are shed-exempt and undegraded)."""
        resilient = run_audit_suite(
            ExperimentScale.tiny(),
            regimes=("campus",),
            defenses=("none", "temperature"),
            adversaries=("A1",),
            queries_per_user=1,
            max_instances=3,
            policy="blackout",
            chaos_seed=7,
            resilience="default",
        )
        for cell, clean in zip(resilient.cells, tiny_report.cells):
            assert cell.leakage == clean.leakage
        # The resilience tag joins the signature only when active — the
        # golden key set (tiny_report, no policy) must not contain it.
        assert resilient.signature()["resilience"] == "default"
        assert "resilience" not in tiny_report.signature()

    def test_cluster_audit_matches_single_cloud_leakage(self, tiny_report):
        sharded = run_audit_suite(
            ExperimentScale.tiny(),
            regimes=("campus",),
            defenses=("none", "temperature"),
            adversaries=("A1",),
            queries_per_user=1,
            max_instances=3,
            num_shards=2,
        )
        for cell, clean in zip(sharded.cells, tiny_report.cells):
            assert cell.leakage == clean.leakage
            assert cell.num_shards == 2
            assert cell.adversary_queries == clean.adversary_queries

    def test_unknown_attack_and_defense_rejected(self):
        with pytest.raises(KeyError, match="unknown audit attack"):
            run_audit_suite(ExperimentScale.tiny(), attack="gradient")
        with pytest.raises(KeyError, match="unknown defenses"):
            run_audit_suite(ExperimentScale.tiny(), defenses=("mirror",))

    def test_incompatible_matrix_rejected_before_training(self):
        # Must fail in milliseconds (validation), not after corpus
        # generation and training.
        import time

        start = time.perf_counter()
        with pytest.raises(ValueError, match="cannot plan"):
            run_audit_suite(
                ExperimentScale.tiny(), attack="brute_force", adversaries=("A1", "A3")
            )
        assert time.perf_counter() - start < 1.0

    def test_every_defense_preset_is_well_formed(self):
        for name, defense in AUDIT_DEFENSES.items():
            assert defense.name == name
            assert defense.temperature > 0


class TestRenderAudit:
    def test_render_contains_cells_and_split(self, tiny_report):
        out = render_audit(tiny_report)
        assert "privacy audit @ tiny" in out
        assert "temperature" in out
        assert "leak@1" in out and "leak@3" in out
        assert "adv queries" in out
        assert "2 cells" in out
