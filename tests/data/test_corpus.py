"""Unit tests for end-to-end corpus generation."""

import numpy as np
import pytest

from repro.data import CorpusConfig, SpatialLevel, generate_corpus


class TestCorpus:
    def test_population_partition(self, tiny_corpus):
        contributors = set(tiny_corpus.contributor_ids)
        personal = set(tiny_corpus.personal_ids)
        assert contributors.isdisjoint(personal)
        assert len(contributors) == tiny_corpus.config.num_contributors
        assert len(personal) == tiny_corpus.config.num_personal_users

    def test_spec_domains(self, tiny_corpus):
        b_spec = tiny_corpus.spec(SpatialLevel.BUILDING)
        a_spec = tiny_corpus.spec(SpatialLevel.AP)
        assert b_spec.num_locations == tiny_corpus.campus.num_buildings
        assert a_spec.num_locations == tiny_corpus.campus.num_aps
        assert a_spec.num_locations > b_spec.num_locations

    def test_trajectory_cached(self, tiny_corpus):
        first = tiny_corpus.trajectory(0, SpatialLevel.BUILDING)
        second = tiny_corpus.trajectory(0, SpatialLevel.BUILDING)
        assert first is second

    def test_user_dataset_windows_belong_to_user(self, tiny_corpus):
        uid = tiny_corpus.personal_ids[0]
        ds = tiny_corpus.user_dataset(uid, SpatialLevel.BUILDING)
        assert len(ds) > 0
        assert all(w.user_id == uid for w in ds.windows)

    def test_contributor_dataset_pools_all(self, tiny_corpus):
        pooled = tiny_corpus.contributor_dataset(SpatialLevel.BUILDING)
        users = {w.user_id for w in pooled.windows}
        assert users == set(tiny_corpus.contributor_ids)

    def test_personal_datasets_keyed_by_user(self, tiny_corpus):
        per_user = tiny_corpus.personal_datasets(SpatialLevel.BUILDING)
        assert set(per_user) == set(tiny_corpus.personal_ids)

    def test_deterministic_given_seed(self):
        config = CorpusConfig(
            num_buildings=12, num_contributors=2, num_personal_users=1, num_days=7, seed=77
        )
        a = generate_corpus(config)
        b = generate_corpus(config)
        Xa, ya = a.user_dataset(0, SpatialLevel.BUILDING).encode()
        Xb, yb = b.user_dataset(0, SpatialLevel.BUILDING).encode()
        np.testing.assert_array_equal(Xa, Xb)
        np.testing.assert_array_equal(ya, yb)

    def test_scaled_returns_modified_copy(self):
        config = CorpusConfig()
        scaled = config.scaled(num_buildings=99)
        assert scaled.num_buildings == 99
        assert config.num_buildings != 99
        assert scaled.num_days == config.num_days

    def test_locations_within_domain(self, tiny_corpus):
        for level in SpatialLevel:
            spec = tiny_corpus.spec(level)
            for uid in tiny_corpus.personal_ids:
                for sess in tiny_corpus.trajectory(uid, level):
                    assert 0 <= sess.location_id < spec.num_locations
