"""Unit tests for campus topology generation."""

import networkx as nx
import numpy as np
import pytest

from repro.data import BuildingKind, CampusTopology


@pytest.fixture(scope="module")
def campus():
    return CampusTopology.generate(np.random.default_rng(0), num_buildings=30)


class TestGeneration:
    def test_building_count(self, campus):
        assert campus.num_buildings == 30
        assert len(campus.buildings) == 30

    def test_every_kind_present(self, campus):
        kinds = {b.kind for b in campus.buildings}
        assert kinds == set(BuildingKind)

    def test_building_ids_are_list_positions(self, campus):
        for i, building in enumerate(campus.buildings):
            assert building.building_id == i

    def test_ap_mapping_consistent(self, campus):
        for building in campus.buildings:
            assert building.num_aps >= 2
            for ap in building.ap_ids:
                assert campus.ap_to_building[ap] == building.building_id

    def test_ap_ids_globally_unique_and_dense(self, campus):
        all_aps = [ap for b in campus.buildings for ap in b.ap_ids]
        assert len(all_aps) == len(set(all_aps)) == campus.num_aps
        assert sorted(all_aps) == list(range(campus.num_aps))

    def test_graph_connected(self, campus):
        assert nx.is_connected(campus.graph)
        assert campus.graph.number_of_nodes() == campus.num_buildings

    def test_walking_minutes(self, campus):
        assert campus.walking_minutes(0, 0) == 0.0
        assert campus.walking_minutes(0, 1) > 0.0
        # Symmetric (undirected graph).
        assert campus.walking_minutes(0, 5) == campus.walking_minutes(5, 0)

    def test_buildings_of_kind_filter(self, campus):
        dorms = campus.buildings_of_kind(BuildingKind.DORM)
        assert dorms
        assert all(b.kind == BuildingKind.DORM for b in dorms)

    def test_deterministic_given_seed(self):
        a = CampusTopology.generate(np.random.default_rng(42), num_buildings=12)
        b = CampusTopology.generate(np.random.default_rng(42), num_buildings=12)
        assert [x.kind for x in a.buildings] == [x.kind for x in b.buildings]
        assert a.num_aps == b.num_aps

    def test_too_few_buildings_rejected(self):
        with pytest.raises(ValueError):
            CampusTopology.generate(np.random.default_rng(0), num_buildings=3)
