"""Unit and property tests for discretization and one-hot encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DURATION_CAP_MINUTES,
    FeatureSpec,
    LocationSession,
    SessionFeatures,
    discretize_duration,
    discretize_entry,
    duration_bin_to_minute,
    entry_bin_to_minute,
    location_marginals,
)


def make_session(entry=480, duration=50, location=3, dow=2):
    return LocationSession(
        user_id=0,
        day_index=0,
        day_of_week=dow,
        entry_minute=entry,
        duration_minute=duration,
        location_id=location,
    )


class TestDiscretization:
    def test_entry_bins(self):
        assert discretize_entry(0) == 0
        assert discretize_entry(29) == 0
        assert discretize_entry(30) == 1
        assert discretize_entry(23 * 60 + 59) == 47

    def test_entry_out_of_range(self):
        with pytest.raises(ValueError):
            discretize_entry(-1)
        with pytest.raises(ValueError):
            discretize_entry(24 * 60)

    def test_duration_bins_capped_at_4_hours(self):
        assert discretize_duration(0) == 0
        assert discretize_duration(9) == 0
        assert discretize_duration(10) == 1
        assert discretize_duration(DURATION_CAP_MINUTES) == 23
        assert discretize_duration(10_000) == 23

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            discretize_duration(-5)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 24 * 60 - 1))
    def test_entry_bin_representative_round_trips(self, minute):
        bin_idx = discretize_entry(minute)
        assert discretize_entry(entry_bin_to_minute(bin_idx)) == bin_idx

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 500))
    def test_duration_bin_representative_round_trips(self, minutes):
        bin_idx = discretize_duration(minutes)
        assert discretize_duration(duration_bin_to_minute(bin_idx)) == bin_idx


class TestFeatureSpec:
    def test_layout_offsets(self):
        spec = FeatureSpec(num_locations=10)
        assert spec.entry_offset == 0
        assert spec.duration_offset == 48
        assert spec.location_offset == 48 + 24
        assert spec.day_offset == 48 + 24 + 10
        assert spec.width == 48 + 24 + 10 + 7

    def test_blocks_cover_width_exactly(self):
        spec = FeatureSpec(num_locations=33)
        blocks = spec.blocks()
        covered = sorted(
            (offset, offset + size) for offset, size in blocks.values()
        )
        assert covered[0][0] == 0
        for (a, b), (c, d) in zip(covered, covered[1:]):
            assert b == c
        assert covered[-1][1] == spec.width

    def test_encode_is_one_hot_per_block(self):
        spec = FeatureSpec(num_locations=5)
        features = SessionFeatures(entry_bin=2, duration_bin=4, location=1, day_of_week=6)
        vec = spec.encode(features)
        assert vec.sum() == 4.0
        for offset, size in spec.blocks().values():
            assert vec[offset : offset + size].sum() == 1.0

    def test_featurize_encode_decode_roundtrip(self):
        spec = FeatureSpec(num_locations=8)
        session = make_session(entry=615, duration=95, location=7, dow=4)
        features = spec.featurize(session)
        decoded = spec.decode(spec.encode(features))
        assert decoded == features

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(0, 47), st.integers(0, 23), st.integers(0, 11), st.integers(0, 6)
    )
    def test_roundtrip_property(self, entry_bin, duration_bin, location, dow):
        spec = FeatureSpec(num_locations=12)
        features = SessionFeatures(entry_bin, duration_bin, location, dow)
        assert spec.decode(spec.encode(features)) == features

    def test_location_outside_domain_rejected(self):
        spec = FeatureSpec(num_locations=5)
        with pytest.raises(ValueError):
            spec.featurize(make_session(location=5))

    def test_decode_wrong_width_rejected(self):
        spec = FeatureSpec(num_locations=5)
        with pytest.raises(ValueError):
            spec.decode(np.zeros(3))

    def test_encode_sequence_stacks(self):
        spec = FeatureSpec(num_locations=5)
        f = SessionFeatures(0, 0, 0, 0)
        g = SessionFeatures(1, 1, 1, 1)
        out = spec.encode_sequence([f, g])
        assert out.shape == (2, spec.width)


class TestMarginals:
    def test_sums_to_one(self):
        features = [SessionFeatures(0, 0, i % 3, 0) for i in range(30)]
        p = location_marginals(features, num_locations=5)
        np.testing.assert_allclose(p.sum(), 1.0)

    def test_reflects_frequencies(self):
        features = [SessionFeatures(0, 0, 0, 0)] * 9 + [SessionFeatures(0, 0, 1, 0)]
        p = location_marginals(features, num_locations=2)
        np.testing.assert_allclose(p, [0.9, 0.1])

    def test_smoothing_gives_unseen_mass(self):
        features = [SessionFeatures(0, 0, 0, 0)] * 10
        p = location_marginals(features, num_locations=3, smoothing=1.0)
        assert p[1] > 0
        assert p[2] > 0
        np.testing.assert_allclose(p.sum(), 1.0)

    def test_empty_is_uniform(self):
        p = location_marginals([], num_locations=4)
        np.testing.assert_allclose(p, [0.25] * 4)
