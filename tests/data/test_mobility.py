"""Unit tests for the routine mobility simulator."""

import numpy as np
import pytest

from repro.data import CampusTopology, RoutineMobilityModel, simulate_population
from repro.data.mobility import MINUTES_PER_DAY


@pytest.fixture(scope="module")
def campus():
    return CampusTopology.generate(np.random.default_rng(1), num_buildings=25)


@pytest.fixture(scope="module")
def model(campus):
    return RoutineMobilityModel(campus, np.random.default_rng(2))


class TestProfiles:
    def test_profile_fields_valid(self, model, campus):
        profile = model.make_profile(0)
        assert 0 <= profile.home_dorm < campus.num_buildings
        assert profile.dining_halls
        assert 0 < profile.routine_strength <= 1
        assert 0 <= profile.sociability <= 1
        assert set(profile.class_slots) == {0, 1, 2, 3, 4}

    def test_class_slots_sorted_and_non_overlapping_starts(self, model):
        profile = model.make_profile(1)
        for slots in profile.class_slots.values():
            starts = [s for s, _, _ in slots]
            assert starts == sorted(starts)
            assert len(starts) == len(set(starts))

    def test_scheduled_buildings_cover_routine(self, model):
        profile = model.make_profile(2)
        scheduled = profile.scheduled_buildings()
        assert profile.home_dorm in scheduled
        for slots in profile.class_slots.values():
            for _, _, building in slots:
                assert building in scheduled

    def test_knobs_overridable(self, model):
        profile = model.make_profile(3, routine_strength=0.95, sociability=0.2)
        assert profile.routine_strength == 0.95
        assert profile.sociability == 0.2


class TestTraces:
    def test_each_day_covers_24_hours_contiguously(self, model):
        profile = model.make_profile(10)
        visits = model.simulate(profile, num_days=7)
        by_day = {}
        for visit in visits:
            by_day.setdefault(visit.day_index, []).append(visit)
        assert set(by_day) == set(range(7))
        for day_visits in by_day.values():
            assert day_visits[0].entry_minute == 0
            for prev, nxt in zip(day_visits, day_visits[1:]):
                assert prev.exit_minute == nxt.entry_minute
            assert day_visits[-1].exit_minute == MINUTES_PER_DAY

    def test_no_consecutive_same_building(self, model):
        profile = model.make_profile(11)
        visits = model.simulate(profile, num_days=10)
        by_day = {}
        for visit in visits:
            by_day.setdefault(visit.day_index, []).append(visit)
        for day_visits in by_day.values():
            for prev, nxt in zip(day_visits, day_visits[1:]):
                assert prev.building_id != nxt.building_id

    def test_day_of_week_cycles(self, model):
        profile = model.make_profile(12)
        visits = model.simulate(profile, num_days=14, start_weekday=3)
        for visit in visits:
            assert visit.day_of_week == (3 + visit.day_index) % 7

    def test_routine_user_more_predictable_than_chaotic(self, campus):
        """High routine strength should concentrate weekday visits on the
        scheduled buildings more than low routine strength."""
        rng = np.random.default_rng(5)
        model = RoutineMobilityModel(campus, rng)

        def schedule_adherence(strength):
            profile = model.make_profile(99, routine_strength=strength, sociability=0.3)
            scheduled = set(profile.scheduled_buildings())
            visits = model.simulate(profile, num_days=28)
            weekday = [v for v in visits if v.day_of_week < 5]
            return np.mean([v.building_id in scheduled for v in weekday])

        assert schedule_adherence(0.97) > schedule_adherence(0.55)

    def test_home_dorm_dominates_time(self, model):
        profile = model.make_profile(13)
        visits = model.simulate(profile, num_days=14)
        time_by_building = {}
        for v in visits:
            time_by_building[v.building_id] = (
                time_by_building.get(v.building_id, 0) + v.duration_minute
            )
        assert max(time_by_building, key=time_by_building.get) == profile.home_dorm


class TestPopulation:
    def test_simulate_population_shapes(self, campus):
        profiles, traces = simulate_population(
            campus, np.random.default_rng(9), num_users=4, num_days=5
        )
        assert len(profiles) == 4
        assert set(traces) == {0, 1, 2, 3}
        for uid, visits in traces.items():
            assert all(v.user_id == uid for v in visits)
