"""Property-based tests for the mobility simulator's structural invariants.

These invariants are load-bearing: the time-based inversion attack derives
entry times from the continuity property, and the feature pipeline assumes
every visit fits inside its day.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import CampusTopology, RoutineMobilityModel
from repro.data.mobility import MINUTES_PER_DAY


@st.composite
def simulated_user(draw):
    seed = draw(st.integers(0, 10_000))
    num_buildings = draw(st.integers(8, 30))
    num_days = draw(st.integers(1, 12))
    campus = CampusTopology.generate(np.random.default_rng(seed), num_buildings=num_buildings)
    model = RoutineMobilityModel(campus, np.random.default_rng(seed + 1))
    profile = model.make_profile(0)
    return campus, model.simulate(profile, num_days=num_days), num_days


@settings(max_examples=25, deadline=None)
@given(simulated_user())
def test_days_are_contiguous_chains(setup):
    """Within every day: first visit at minute 0, no gaps, ends at 24:00.
    This is the continuity property the time-based attack exploits."""
    campus, visits, num_days = setup
    by_day = {}
    for visit in visits:
        by_day.setdefault(visit.day_index, []).append(visit)
    assert set(by_day) == set(range(num_days))
    for day_visits in by_day.values():
        assert day_visits[0].entry_minute == 0
        for prev, nxt in zip(day_visits, day_visits[1:]):
            assert prev.exit_minute == nxt.entry_minute
        assert day_visits[-1].exit_minute == MINUTES_PER_DAY


@settings(max_examples=25, deadline=None)
@given(simulated_user())
def test_visits_reference_real_buildings(setup):
    campus, visits, _ = setup
    for visit in visits:
        assert 0 <= visit.building_id < campus.num_buildings
        assert visit.duration_minute > 0
        assert 0 <= visit.day_of_week < 7


@settings(max_examples=25, deadline=None)
@given(simulated_user())
def test_no_zero_length_or_same_building_runs(setup):
    campus, visits, _ = setup
    by_day = {}
    for visit in visits:
        by_day.setdefault(visit.day_index, []).append(visit)
    for day_visits in by_day.values():
        for prev, nxt in zip(day_visits, day_visits[1:]):
            assert prev.building_id != nxt.building_id
