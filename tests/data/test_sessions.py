"""Unit tests for AP session expansion and trajectory extraction."""

import numpy as np
import pytest

from repro.data import (
    CampusTopology,
    RoutineMobilityModel,
    extract_trajectory,
    visits_to_ap_sessions,
)


@pytest.fixture(scope="module")
def setup():
    campus = CampusTopology.generate(np.random.default_rng(3), num_buildings=20)
    model = RoutineMobilityModel(campus, np.random.default_rng(4))
    profile = model.make_profile(0)
    visits = model.simulate(profile, num_days=7)
    rng = np.random.default_rng(5)
    ap_sessions = visits_to_ap_sessions(visits, campus, rng)
    return campus, visits, ap_sessions


class TestAPExpansion:
    def test_total_duration_preserved(self, setup):
        _, visits, ap_sessions = setup
        assert sum(v.duration_minute for v in visits) == sum(
            s.duration_minute for s in ap_sessions
        )

    def test_sessions_contiguous_within_visit(self, setup):
        campus, visits, ap_sessions = setup
        cursor = {}
        for session in ap_sessions:
            key = session.day_index
            if key in cursor:
                assert session.entry_minute == cursor[key]
            cursor[key] = session.exit_minute

    def test_ap_belongs_to_visit_building(self, setup):
        campus, _, ap_sessions = setup
        for session in ap_sessions:
            assert campus.ap_to_building[session.ap_id] == session.building_id

    def test_durations_positive(self, setup):
        _, _, ap_sessions = setup
        assert all(s.duration_minute > 0 for s in ap_sessions)


class TestTrajectoryExtraction:
    def test_building_level_recovers_visits(self, setup):
        """Merging AP sessions at building level must reproduce the original
        building visit chain exactly (same order, same durations)."""
        _, visits, ap_sessions = setup
        trajectory = extract_trajectory(ap_sessions, "building")
        assert len(trajectory) == len(visits)
        for original, extracted in zip(visits, trajectory):
            assert extracted.location_id == original.building_id
            assert extracted.entry_minute == original.entry_minute
            assert extracted.duration_minute == original.duration_minute

    def test_ap_level_merges_consecutive_same_ap(self, setup):
        _, _, ap_sessions = setup
        trajectory = extract_trajectory(ap_sessions, "ap")
        for prev, nxt in zip(trajectory, trajectory[1:]):
            same_moment = (
                prev.day_index == nxt.day_index and prev.exit_minute == nxt.entry_minute
            )
            if same_moment:
                assert prev.location_id != nxt.location_id

    def test_ap_level_finer_than_building(self, setup):
        _, _, ap_sessions = setup
        buildings = extract_trajectory(ap_sessions, "building")
        aps = extract_trajectory(ap_sessions, "ap")
        assert len(aps) >= len(buildings)

    def test_invalid_level_rejected(self, setup):
        _, _, ap_sessions = setup
        with pytest.raises(ValueError):
            extract_trajectory(ap_sessions, "city")

    def test_chronological_order(self, setup):
        _, _, ap_sessions = setup
        trajectory = extract_trajectory(ap_sessions, "building")
        keys = [(s.day_index, s.entry_minute) for s in trajectory]
        assert keys == sorted(keys)
