"""Unit tests for trace filtering (paper §IV-A) and corpus IO."""

import numpy as np
import pytest

from repro.data import (
    BuildingKind,
    CampusTopology,
    RoutineMobilityModel,
    Visit,
    export_trajectory_csv,
    extract_trajectory,
    filter_on_campus_students,
    filter_sparse_users,
    load_ap_sessions,
    observed_days,
    save_ap_sessions,
    stays_in_dorm_at_night,
    visits_to_ap_sessions,
)

MINUTES_PER_DAY = 24 * 60


@pytest.fixture(scope="module")
def campus():
    return CampusTopology.generate(np.random.default_rng(0), num_buildings=20)


def full_day(uid, day, building, weekday=None):
    return Visit(
        user_id=uid,
        day_index=day,
        day_of_week=day % 7 if weekday is None else weekday,
        entry_minute=0,
        duration_minute=MINUTES_PER_DAY,
        building_id=building,
    )


class TestDormNightFilter:
    def test_simulated_students_pass(self, campus):
        """The routine simulator produces dorm-sleeping students."""
        model = RoutineMobilityModel(campus, np.random.default_rng(1))
        profile = model.make_profile(0)
        visits = model.simulate(profile, num_days=14)
        assert stays_in_dorm_at_night(visits, campus)

    def test_commuter_filtered_out(self, campus):
        academic = campus.buildings_of_kind(BuildingKind.ACADEMIC)[0].building_id
        visits = [full_day(1, d, academic, weekday=d % 7) for d in range(10)]
        assert not stays_in_dorm_at_night(visits, campus)

    def test_weekends_ignored(self, campus):
        dorm = campus.buildings_of_kind(BuildingKind.DORM)[0].building_id
        # Only weekend days observed -> no weekday nights -> reject.
        visits = [full_day(1, d, dorm, weekday=5 + d % 2) for d in range(4)]
        assert not stays_in_dorm_at_night(visits, campus)

    def test_population_filter(self, campus):
        dorm = campus.buildings_of_kind(BuildingKind.DORM)[0].building_id
        academic = campus.buildings_of_kind(BuildingKind.ACADEMIC)[0].building_id
        traces = {
            1: [full_day(1, d, dorm, weekday=d % 7) for d in range(7)],
            2: [full_day(2, d, academic, weekday=d % 7) for d in range(7)],
        }
        kept = filter_on_campus_students(traces, campus)
        assert set(kept) == {1}


class TestSparseFilter:
    def test_threshold(self, campus):
        dorm = campus.buildings_of_kind(BuildingKind.DORM)[0].building_id
        traces = {
            1: [full_day(1, d, dorm) for d in range(5)],
            2: [full_day(2, 0, dorm)],
        }
        kept = filter_sparse_users(traces, min_visits=3)
        assert set(kept) == {1}

    def test_observed_days(self, campus):
        dorm = campus.buildings_of_kind(BuildingKind.DORM)[0].building_id
        visits = [full_day(1, d, dorm) for d in (0, 0, 2, 5)]
        assert observed_days(visits) == 3


class TestCorpusIO:
    def test_ap_sessions_roundtrip(self, campus, tmp_path):
        model = RoutineMobilityModel(campus, np.random.default_rng(2))
        rng = np.random.default_rng(3)
        sessions = {}
        for uid in range(3):
            visits = model.simulate(model.make_profile(uid), num_days=3)
            sessions[uid] = visits_to_ap_sessions(visits, campus, rng)
        path = tmp_path / "corpus" / "sessions.npz"
        size = save_ap_sessions(sessions, path)
        assert size > 0
        restored = load_ap_sessions(path)
        assert set(restored) == set(sessions)
        for uid in sessions:
            assert restored[uid] == sorted(
                sessions[uid], key=lambda s: (s.day_index, s.entry_minute)
            )

    def test_csv_export(self, campus, tmp_path):
        model = RoutineMobilityModel(campus, np.random.default_rng(4))
        visits = model.simulate(model.make_profile(0), num_days=2)
        trajectory = extract_trajectory(
            visits_to_ap_sessions(visits, campus, np.random.default_rng(5)), "building"
        )
        path = tmp_path / "traj.csv"
        rows = export_trajectory_csv(trajectory, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == rows + 1  # header
        assert lines[0].startswith("user_id,")
