"""Tests for parameterized mobility regimes (DESIGN.md §8)."""

import numpy as np
import pytest

from repro.data import (
    REGIMES,
    CorpusConfig,
    RoutineMobilityModel,
    generate_regime_corpus,
    resolve_regime,
    sample_regime_profile,
)
from repro.data.campus import CampusTopology
from repro.data.mobility import MINUTES_PER_DAY

CONFIG = CorpusConfig(
    num_buildings=14, num_contributors=3, num_personal_users=3, num_days=10, seed=9
)


def _model(seed=9, num_buildings=14):
    rng = np.random.default_rng(seed)
    campus = CampusTopology.generate(rng, num_buildings=num_buildings)
    return RoutineMobilityModel(campus, rng)


class TestRegimeProfiles:
    @pytest.mark.parametrize("name", sorted(REGIMES))
    def test_knobs_within_declared_ranges(self, name):
        regime = REGIMES[name]
        model = _model()
        for user_id in range(8):
            profile = sample_regime_profile(model, regime, user_id)
            lo, hi = regime.routine_strength
            assert lo <= profile.routine_strength <= hi
            lo, hi = regime.sociability
            assert lo <= profile.sociability <= hi
            lo, hi = regime.explore_pool_size
            assert min(lo, model.campus.num_buildings) <= len(profile.explore_pool)
            assert len(profile.explore_pool) <= min(hi, model.campus.num_buildings)
            for haunts in profile.weekday_haunts.values():
                assert set(haunts) <= set(profile.explore_pool)

    def test_shift_worker_slots_move_to_evening(self):
        """The same timetable shape, displaced by the regime's shift."""
        model = _model()
        campus_profile = sample_regime_profile(_model(), REGIMES["campus"], 0)
        shifted_profile = sample_regime_profile(_model(), REGIMES["shift_worker"], 0)
        # Same underlying draw sequence -> same slot structure per day.
        for day in range(5):
            campus_slots = campus_profile.class_slots[day]
            shifted_slots = shifted_profile.class_slots[day]
            assert len(campus_slots) == len(shifted_slots)
            for (start, duration, _), (s_start, s_duration, _) in zip(
                campus_slots, shifted_slots
            ):
                assert s_duration == duration
                assert s_start >= start  # never shifted earlier
                assert s_start + s_duration <= MINUTES_PER_DAY  # stays in-day
        all_shifted = [
            start
            for slots in shifted_profile.class_slots.values()
            for start, _, _ in slots
        ]
        assert all_shifted and min(all_shifted) >= 8 * 60 + 9 * 60 - 60

    def test_commuter_more_routine_than_tourist(self):
        model = _model()
        commuters = [
            sample_regime_profile(model, REGIMES["commuter"], uid).routine_strength
            for uid in range(6)
        ]
        tourists = [
            sample_regime_profile(model, REGIMES["tourist"], uid).routine_strength
            for uid in range(6, 12)
        ]
        assert min(commuters) > max(tourists)


class TestRegimeCorpus:
    def test_deterministic(self):
        a = generate_regime_corpus(CONFIG, "nomad")
        b = generate_regime_corpus(CONFIG, "nomad")
        for uid in a.personal_ids:
            assert a.profiles[uid].explore_pool == b.profiles[uid].explore_pool
            assert a.ap_sessions[uid] == b.ap_sessions[uid]

    def test_contributors_keep_campus_default(self):
        """The general-model population must not drift with the regime."""
        regime_corpus = generate_regime_corpus(CONFIG, "commuter")
        campus_corpus = generate_regime_corpus(CONFIG, "campus")
        for uid in regime_corpus.contributor_ids:
            assert (
                regime_corpus.profiles[uid].routine_strength
                == campus_corpus.profiles[uid].routine_strength
            )
            assert regime_corpus.ap_sessions[uid] == campus_corpus.ap_sessions[uid]

    def test_personal_users_follow_regime(self):
        corpus = generate_regime_corpus(CONFIG, "commuter")
        lo, hi = REGIMES["commuter"].routine_strength
        for uid in corpus.personal_ids:
            assert lo <= corpus.profiles[uid].routine_strength <= hi

    def test_regime_shapes_trace_statistics(self):
        """Commuters revisit few places; nomads wander over the campus."""
        commuter = generate_regime_corpus(CONFIG, "commuter")
        nomad = generate_regime_corpus(CONFIG, "nomad")

        def mean_distinct(corpus):
            return np.mean(
                [
                    len({s.building_id for s in corpus.ap_sessions[uid]})
                    for uid in corpus.personal_ids
                ]
            )

        assert mean_distinct(nomad) > mean_distinct(commuter)

    def test_resolve_regime(self):
        assert resolve_regime(None).name == "campus"
        assert resolve_regime("nomad") is REGIMES["nomad"]
        assert resolve_regime(REGIMES["tourist"]) is REGIMES["tourist"]
        with pytest.raises(KeyError, match="unknown regime"):
            resolve_regime("astronaut")
