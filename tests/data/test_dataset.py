"""Unit tests for window datasets."""

import numpy as np
import pytest

from repro.data import FeatureSpec, LocationSession, SequenceDataset, SpatialLevel


def session(day, entry, duration, location, uid=0):
    return LocationSession(
        user_id=uid,
        day_index=day,
        day_of_week=day % 7,
        entry_minute=entry,
        duration_minute=duration,
        location_id=location,
    )


@pytest.fixture
def spec():
    return FeatureSpec(num_locations=6)


@pytest.fixture
def chain(spec):
    """Five contiguous sessions in one day."""
    sessions = [
        session(0, 0, 60, 0),
        session(0, 60, 30, 1),
        session(0, 90, 45, 2),
        session(0, 135, 15, 3),
        session(0, 150, 60, 4),
    ]
    return SequenceDataset.from_trajectory(sessions, spec)


class TestConstruction:
    def test_window_count(self, chain):
        assert len(chain) == 3  # 5 sessions -> 3 windows

    def test_targets_are_next_locations(self, chain):
        assert [w.target for w in chain.windows] == [2, 3, 4]

    def test_history_order(self, chain):
        first = chain.windows[0]
        assert first.history[0].location == 0
        assert first.history[1].location == 1

    def test_contiguity_flag_true_within_day(self, chain):
        assert all(w.contiguous for w in chain.windows)

    def test_contiguity_flag_false_across_days(self, spec):
        sessions = [
            session(0, 1380, 60, 0),  # ends at midnight
            session(1, 0, 60, 1),  # next day
            session(1, 60, 60, 2),
        ]
        ds = SequenceDataset.from_trajectory(sessions, spec)
        assert not ds.windows[0].contiguous

    def test_unsorted_input_is_sorted(self, spec):
        sessions = [
            session(0, 90, 45, 2),
            session(0, 0, 60, 0),
            session(0, 60, 30, 1),
        ]
        ds = SequenceDataset.from_trajectory(sessions, spec)
        assert ds.windows[0].history[0].location == 0

    def test_too_few_sessions_gives_empty(self, spec):
        ds = SequenceDataset.from_trajectory([session(0, 0, 60, 0)], spec)
        assert len(ds) == 0


class TestEncoding:
    def test_encode_shapes(self, chain, spec):
        X, y = chain.encode()
        assert X.shape == (3, 2, spec.width)
        assert y.shape == (3,)
        assert y.dtype == np.int64

    def test_empty_encode(self, spec):
        ds = SequenceDataset(spec=spec)
        X, y = ds.encode()
        assert X.shape == (0, 2, spec.width)
        assert len(y) == 0

    def test_one_hot_rows(self, chain, spec):
        X, _ = chain.encode()
        np.testing.assert_allclose(X.sum(axis=-1), np.full((3, 2), 4.0))


class TestSplitsAndViews:
    def test_chronological_split(self, chain):
        train, test = chain.split(2 / 3)
        assert len(train) == 2
        assert len(test) == 1
        assert test.windows[0].target == 4

    def test_split_fraction_validated(self, chain):
        with pytest.raises(ValueError):
            chain.split(0.0)
        with pytest.raises(ValueError):
            chain.split(1.0)

    def test_limit_days_filters_targets(self, spec):
        sessions = [session(d, 60 * i, 60, (d + i) % 6) for d in range(4) for i in range(3)]
        ds = SequenceDataset.from_trajectory(sessions, spec)
        limited = ds.limit_days(2)
        assert all(w.day_index < 2 for w in limited.windows)
        assert len(limited) < len(ds)

    def test_limit_weeks_delegates(self, spec):
        sessions = [session(d, 60 * i, 60, (d + i) % 6) for d in range(10) for i in range(3)]
        ds = SequenceDataset.from_trajectory(sessions, spec)
        assert len(ds.limit_weeks(1)) == len(ds.limit_days(7))

    def test_per_user_partitions(self, spec):
        a = SequenceDataset.from_trajectory(
            [session(0, 60 * i, 60, i % 6, uid=1) for i in range(5)], spec
        )
        b = SequenceDataset.from_trajectory(
            [session(0, 60 * i, 60, i % 6, uid=2) for i in range(4)], spec
        )
        pooled = SequenceDataset.concatenate([a, b])
        parts = pooled.per_user()
        assert set(parts) == {1, 2}
        assert len(parts[1]) == len(a)
        assert len(parts[2]) == len(b)

    def test_split_by_user_no_user_leakage(self, spec):
        a = SequenceDataset.from_trajectory(
            [session(0, 60 * i, 60, i % 6, uid=1) for i in range(10)], spec
        )
        b = SequenceDataset.from_trajectory(
            [session(0, 60 * i, 60, i % 6, uid=2) for i in range(10)], spec
        )
        pooled = SequenceDataset.concatenate([a, b])
        train, test = pooled.split_by_user(0.75)
        assert {w.user_id for w in train.windows} == {1, 2}
        assert {w.user_id for w in test.windows} == {1, 2}

    def test_concatenate_requires_same_spec(self, spec):
        other_spec = FeatureSpec(num_locations=9)
        a = SequenceDataset(spec=spec)
        b = SequenceDataset(spec=other_spec)
        with pytest.raises(ValueError):
            SequenceDataset.concatenate([a, b])

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ValueError):
            SequenceDataset.concatenate([])


class TestStatistics:
    def test_distinct_locations(self, chain):
        assert chain.distinct_locations() == 5

    def test_location_visit_count(self, chain):
        assert chain.location_visit_count() == 5
