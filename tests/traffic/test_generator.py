"""Property tests for the open-loop traffic generator (DESIGN.md §15).

The generator's determinism contract mirrors the chaos layer's: every
draw comes from ``default_rng((seed, stream, *keys))`` with per-device
streams, so these properties must hold exactly:

* same seed + same config ⇒ the *identical* compiled schedule;
* doubling a flat Poisson rate ⇒ proportionally more arrivals (the
  exponential gaps shrink by exactly 2× on the same bit stream);
* a flash crowd adds arrivals strictly inside its window and leaves
  every base arrival bit-identical (superposition);
* one regime entry's knobs only affect the users assigned to that
  entry — other regimes' streams never see the change.
"""

import pytest

from repro.pelican import EventKind
from repro.traffic import FlashCrowd, RegimeTraffic, TrafficConfig, TrafficGenerator

#: Synthetic payload pools — the generator never inspects payloads, so
#: plain tuples stand in for history windows.
WINDOWS = {uid: [(uid, j) for j in range(4)] for uid in (3, 7, 11, 20)}
DATA = {uid: ("dataset", uid) for uid in WINDOWS}


def compile_config(config, windows=WINDOWS):
    return TrafficGenerator(config).compile(
        windows, onboard_data=DATA, update_data=DATA
    )


def events_of(schedule, kind=None, user_id=None):
    return [
        e
        for e in schedule.ordered()
        if (kind is None or e.kind is kind)
        and (user_id is None or e.user_id == user_id)
    ]


class TestDeterminism:
    def test_same_seed_compiles_identical_schedule(self):
        config = TrafficConfig(
            seed=9,
            horizon=80.0,
            regimes=(
                RegimeTraffic(regime="campus", rate=0.2),
                RegimeTraffic(
                    regime="downtown",
                    rate=0.1,
                    diurnal_amplitude=0.5,
                    diurnal_period=40.0,
                ),
            ),
            flash_crowds=(FlashCrowd(start=10.0, duration=5.0, rate=0.4),),
            devices_per_user=3,
            include_onboards=True,
            update_prob=0.5,
        )
        first = compile_config(config)
        second = compile_config(config)
        # FleetEvent is frozen: equality is bit-exact times, seqs,
        # payload identity, and options.
        assert first.ordered() == second.ordered()

    def test_different_seeds_differ(self):
        base = TrafficConfig(seed=1, horizon=120.0, regimes=(RegimeTraffic(rate=0.1),))
        other = TrafficConfig(seed=2, horizon=120.0, regimes=(RegimeTraffic(rate=0.1),))
        assert compile_config(base).ordered() != compile_config(other).ordered()

    def test_compile_is_stateless(self):
        """Two generators over the same config agree with one generator
        compiling twice — no hidden state between calls."""
        config = TrafficConfig(seed=4, horizon=60.0, regimes=(RegimeTraffic(rate=0.3),))
        gen = TrafficGenerator(config)
        assert gen.compile(WINDOWS).ordered() == (
            TrafficGenerator(config).compile(WINDOWS).ordered()
        )


class TestPoissonScaling:
    @pytest.mark.parametrize("rate", [0.25, 0.5])
    def test_doubling_rate_scales_arrivals_proportionally(self, rate):
        def count(r):
            config = TrafficConfig(
                seed=17, horizon=400.0, regimes=(RegimeTraffic(rate=r),)
            )
            return len(events_of(compile_config(config), EventKind.QUERY))

        single, double = count(rate), count(2 * rate)
        # Same seed ⇒ same exponential bit stream, gaps exactly halved:
        # the doubled-rate run contains the single-rate arrival times
        # compressed 2×, so counts scale ~2× (Poisson noise at the
        # horizon boundary only).
        assert single > 100  # enough mass for the ratio to be meaningful
        assert double / single == pytest.approx(2.0, rel=0.15)

    def test_zero_rate_generates_nothing(self):
        config = TrafficConfig(seed=3, horizon=100.0, regimes=(RegimeTraffic(rate=0.0),))
        assert events_of(compile_config(config), EventKind.QUERY) == []

    def test_arrivals_respect_horizon(self):
        config = TrafficConfig(seed=5, horizon=50.0, regimes=(RegimeTraffic(rate=0.4),))
        times = [e.time for e in events_of(compile_config(config), EventKind.QUERY)]
        assert times and all(0.0 < t < 50.0 for t in times)

    def test_diurnal_thinning_never_exceeds_flat_envelope(self):
        """Thinning only ever *removes* proposals: the diurnal schedule's
        arrivals are a subset of the flat run at the same peak rate."""
        flat = TrafficConfig(
            seed=21,
            horizon=200.0,
            regimes=(RegimeTraffic(rate=0.3, diurnal_amplitude=0.0),),
        )
        modulated = TrafficConfig(
            seed=21,
            horizon=200.0,
            regimes=(
                RegimeTraffic(
                    rate=0.2,
                    diurnal_amplitude=0.5,
                    diurnal_period=80.0,
                ),
            ),
        )
        flat_n = len(events_of(compile_config(flat), EventKind.QUERY))
        mod_n = len(events_of(compile_config(modulated), EventKind.QUERY))
        assert 0 < mod_n < flat_n


class TestFlashCrowds:
    BASE = dict(seed=31, horizon=100.0, regimes=(RegimeTraffic(rate=0.1),))

    def test_burst_strictly_inside_window_and_base_untouched(self):
        quiet = compile_config(TrafficConfig(**self.BASE))
        crowd = FlashCrowd(start=30.0, duration=10.0, rate=0.8)
        bursty = compile_config(TrafficConfig(flash_crowds=(crowd,), **self.BASE))

        quiet_queries = events_of(quiet, EventKind.QUERY)
        bursty_queries = events_of(bursty, EventKind.QUERY)
        assert len(bursty_queries) > len(quiet_queries)

        # Superposition: every base arrival survives bit-identically
        # (times and payloads; seqs shift as burst events interleave).
        base_keys = [(e.time, e.user_id, e.payload) for e in quiet_queries]
        bursty_keys = [(e.time, e.user_id, e.payload) for e in bursty_queries]
        extras = list(bursty_keys)
        for key in base_keys:
            extras.remove(key)  # raises ValueError if a base arrival vanished
        assert extras
        assert all(30.0 < t < 40.0 for t, _, _ in extras)

    def test_targeted_crowd_only_hits_named_regimes(self):
        regimes = (
            RegimeTraffic(regime="campus", rate=0.05),
            RegimeTraffic(regime="downtown", rate=0.05),
        )
        crowd = FlashCrowd(start=20.0, duration=10.0, rate=1.0, regimes=("downtown",))
        quiet = compile_config(TrafficConfig(seed=8, horizon=60.0, regimes=regimes))
        bursty = compile_config(
            TrafficConfig(seed=8, horizon=60.0, regimes=regimes, flash_crowds=(crowd,))
        )
        assigned = TrafficGenerator(
            TrafficConfig(seed=8, horizon=60.0, regimes=regimes)
        ).assignments(sorted(WINDOWS))
        campus_users = [u for u, e in assigned.items() if e.regime == "campus"]
        downtown_users = [u for u, e in assigned.items() if e.regime == "downtown"]
        assert campus_users and downtown_users

        def keyed(schedule, uid):
            return [
                (e.time, e.payload) for e in events_of(schedule, EventKind.QUERY, uid)
            ]

        for uid in campus_users:
            assert keyed(bursty, uid) == keyed(quiet, uid)
        assert any(
            len(keyed(bursty, uid)) > len(keyed(quiet, uid)) for uid in downtown_users
        )


class TestRegimeIsolation:
    def test_one_regimes_knobs_never_move_another_regimes_users(self):
        calm = (
            RegimeTraffic(regime="campus", rate=0.1),
            RegimeTraffic(regime="downtown", rate=0.1),
        )
        cranked = (
            RegimeTraffic(regime="campus", rate=0.1),
            RegimeTraffic(
                regime="downtown",
                rate=0.4,
                diurnal_amplitude=0.8,
                diurnal_period=30.0,
            ),
        )
        before = compile_config(TrafficConfig(seed=13, horizon=90.0, regimes=calm))
        after = compile_config(TrafficConfig(seed=13, horizon=90.0, regimes=cranked))
        assigned = TrafficGenerator(
            TrafficConfig(seed=13, horizon=90.0, regimes=calm)
        ).assignments(sorted(WINDOWS))

        changed = 0
        for uid, entry in assigned.items():
            keys_before = [
                (e.time, e.payload) for e in events_of(before, EventKind.QUERY, uid)
            ]
            keys_after = [
                (e.time, e.payload) for e in events_of(after, EventKind.QUERY, uid)
            ]
            if entry.regime == "campus":
                assert keys_after == keys_before
            elif keys_after != keys_before:
                changed += 1
        assert changed  # the cranked regime actually moved

    def test_assignment_is_round_robin_over_sorted_users(self):
        entries = (RegimeTraffic(regime="campus"), RegimeTraffic(regime="downtown"))
        assigned = TrafficGenerator(
            TrafficConfig(regimes=entries)
        ).assignments([20, 3, 11, 7])
        assert [assigned[uid].regime for uid in (3, 7, 11, 20)] == [
            "campus",
            "downtown",
            "campus",
            "downtown",
        ]


class TestLifecycleEvents:
    def test_onboards_precede_every_query(self):
        config = TrafficConfig(
            seed=2,
            horizon=50.0,
            regimes=(RegimeTraffic(rate=0.2),),
            include_onboards=True,
            onboard_spacing=5.0,
            update_prob=1.0,
        )
        schedule = compile_config(config)
        onboarded_at = {
            e.user_id: e.time for e in events_of(schedule, EventKind.ONBOARD)
        }
        assert set(onboarded_at) == set(WINDOWS)
        queries = events_of(schedule, EventKind.QUERY)
        updates = events_of(schedule, EventKind.UPDATE)
        assert len(updates) == len(WINDOWS)  # update_prob=1: one per user
        ramp_end = TrafficGenerator(config).horizon_start(len(WINDOWS))
        assert all(t <= ramp_end for t in onboarded_at.values())
        for e in queries + updates:
            assert e.time > onboarded_at[e.user_id]

    def test_compile_validates_inputs(self):
        with pytest.raises(ValueError, match="at least one user"):
            TrafficGenerator(TrafficConfig()).compile({})
        with pytest.raises(ValueError, match="no query payload windows"):
            TrafficGenerator(TrafficConfig()).compile({1: []})
        with pytest.raises(ValueError, match="onboard_data"):
            TrafficGenerator(
                TrafficConfig(include_onboards=True)
            ).compile({1: [(1, 0)]})
        with pytest.raises(ValueError, match="update_data"):
            TrafficGenerator(TrafficConfig(update_prob=0.5)).compile({1: [(1, 0)]})

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RegimeTraffic(rate=-0.1)
        with pytest.raises(ValueError):
            RegimeTraffic(diurnal_amplitude=1.5)
        with pytest.raises(ValueError):
            FlashCrowd(start=0.0, duration=0.0, rate=1.0)
        with pytest.raises(ValueError):
            TrafficConfig(horizon=0.0)
        with pytest.raises(ValueError):
            TrafficConfig(regimes=())
        with pytest.raises(ValueError):
            TrafficConfig(devices_per_user=0)
