"""Shared fixtures: deterministic RNGs and session-scoped tiny artifacts.

Expensive artifacts (corpus, trained general model, pipeline) are built
once per session at the ``tiny`` scale so individual tests stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import CorpusConfig, SpatialLevel, generate_corpus
from repro.eval import ExperimentScale, Pipeline
from repro.models import GeneralModelConfig, train_general_model


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_corpus():
    """A small deterministic corpus shared across the session."""
    return generate_corpus(
        CorpusConfig(
            num_buildings=15, num_contributors=5, num_personal_users=2, num_days=21, seed=11
        )
    )


@pytest.fixture(scope="session")
def tiny_pipeline() -> Pipeline:
    """A tiny evaluation pipeline (memoizes models across tests)."""
    return Pipeline(ExperimentScale.tiny())


@pytest.fixture(scope="session")
def tiny_general(tiny_corpus):
    """A trained general model + datasets at building level."""
    pooled = tiny_corpus.contributor_dataset(SpatialLevel.BUILDING)
    train, test = pooled.split_by_user(0.8)
    model, _ = train_general_model(
        train,
        GeneralModelConfig(hidden_size=24, epochs=6, patience=3),
        np.random.default_rng(0),
    )
    return model, train, test
