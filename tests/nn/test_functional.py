"""Unit tests for repro.nn.functional."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.functional import log_softmax, one_hot, softmax, softmax_np, top_k_indices


class TestSoftmax:
    def test_matches_manual(self):
        z = np.array([[1.0, 2.0, 3.0]])
        expected = np.exp(z) / np.exp(z).sum()
        np.testing.assert_allclose(softmax(Tensor(z)).numpy(), expected, atol=1e-12)

    def test_temperature_sharpens(self):
        z = np.array([[1.0, 2.0]])
        hot = softmax_np(z, temperature=1.0)
        cold = softmax_np(z, temperature=0.1)
        assert cold[0, 1] > hot[0, 1]

    def test_temperature_equation_1(self):
        """p_i = exp(z_i/T) / sum exp(z_j/T) — the paper's Equation (1)."""
        z = np.array([[0.5, -1.0, 2.0]])
        T = 0.25
        expected = np.exp(z / T) / np.exp(z / T).sum()
        np.testing.assert_allclose(softmax_np(z, temperature=T), expected, atol=1e-12)

    def test_large_logits_stable(self):
        z = np.array([[1000.0, 999.0]])
        probs = softmax_np(z)
        assert np.isfinite(probs).all()
        np.testing.assert_allclose(probs.sum(), 1.0)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_temperature_rejected(self, bad):
        with pytest.raises(ValueError):
            softmax_np(np.ones((1, 2)), temperature=bad)
        with pytest.raises(ValueError):
            softmax(Tensor(np.ones((1, 2))), temperature=bad)
        with pytest.raises(ValueError):
            log_softmax(Tensor(np.ones((1, 2))), temperature=bad)

    def test_softmax_gradient_rows_sum_to_zero(self):
        x = Tensor(np.array([[0.3, -0.7, 1.2]]), requires_grad=True)
        softmax(x)[0, 0].backward()
        np.testing.assert_allclose(x.grad.sum(), 0.0, atol=1e-12)


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_multidimensional(self):
        out = one_hot(np.array([[0, 1], [1, 0]]), 2)
        assert out.shape == (2, 2, 2)
        np.testing.assert_allclose(out.sum(axis=-1), np.ones((2, 2)))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            one_hot(np.array([-1]), 3)


class TestTopK:
    def test_orders_descending(self):
        scores = np.array([0.1, 0.5, 0.2, 0.9])
        np.testing.assert_array_equal(top_k_indices(scores, 3), [3, 1, 2])

    def test_k_larger_than_domain_clamped(self):
        scores = np.array([0.3, 0.1])
        np.testing.assert_array_equal(top_k_indices(scores, 10), [0, 1])

    def test_batched(self):
        scores = np.array([[0.1, 0.9], [0.8, 0.2]])
        np.testing.assert_array_equal(top_k_indices(scores, 1, axis=-1), [[1], [0]])
