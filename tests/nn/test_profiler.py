"""Unit tests for FLOP accounting."""

import numpy as np

from repro.nn import Tensor
from repro.nn.profiler import FlopCounter, flop_counter


class TestFlopCounter:
    def test_matrix_matrix_macs(self):
        counter = FlopCounter()
        counter.add_matmul((4, 5), (5, 6))
        assert counter.macs == 4 * 5 * 6

    def test_batched_macs(self):
        counter = FlopCounter()
        counter.add_matmul((2, 3, 4, 5), (5, 6))
        assert counter.macs == 2 * 3 * 4 * 5 * 6

    def test_vector_cases(self):
        counter = FlopCounter()
        counter.add_matmul((7,), (7,))
        assert counter.macs == 7
        counter.add_matmul((7,), (7, 3))
        counter.add_matmul((4, 7), (7,))
        assert counter.matmul_calls == 3

    def test_cycle_estimates_scale_with_macs(self):
        counter = FlopCounter()
        counter.add_matmul((10, 10), (10, 10))
        assert counter.estimated_cycles(cycles_per_mac=2.0) == 2000.0
        assert counter.estimated_billion_cycles(cycles_per_mac=2.0) == 2e-6


class TestContextManager:
    def test_counts_tensor_matmuls(self):
        with flop_counter() as counter:
            a = Tensor(np.ones((3, 4)))
            b = Tensor(np.ones((4, 5)))
            _ = a @ b
        assert counter.macs == 3 * 4 * 5
        assert counter.elapsed_seconds >= 0.0

    def test_inactive_outside_context(self):
        with flop_counter() as counter:
            pass
        before = counter.macs
        _ = Tensor(np.ones((3, 4))) @ Tensor(np.ones((4, 5)))
        assert counter.macs == before

    def test_nested_counters_both_count(self):
        with flop_counter() as outer:
            with flop_counter() as inner:
                _ = Tensor(np.ones((2, 2))) @ Tensor(np.ones((2, 2)))
            _ = Tensor(np.ones((2, 2))) @ Tensor(np.ones((2, 2)))
        assert inner.macs == 8
        assert outer.macs == 16

    def test_backward_matmuls_also_counted(self):
        with flop_counter() as counter:
            a = Tensor(np.ones((3, 4)), requires_grad=True)
            b = Tensor(np.ones((4, 5)), requires_grad=True)
            (a @ b).sum().backward()
        # forward + two backward matmuls
        assert counter.matmul_calls == 3
