"""Gradient-parity suite: fused LSTM kernel vs. reference autograd cell.

The fused path (DESIGN.md §3) must be a drop-in replacement for the
per-timestep ``LSTMCell`` graph: forward outputs, weight gradients, and —
critically for the gradient-descent inversion attack — *input-sequence*
gradients must agree within tolerance on randomized shapes and seeds, in
both float64 and float32.  A separate test pins the MAC accounting: on a
workload where nothing is skippable, both paths report identical totals.
"""

import numpy as np
import pytest

from repro.nn import LSTM, Tensor, dtype_policy, no_grad
from repro.nn.profiler import flop_counter

# (batch, seq_len, input_size, hidden_size, num_layers, seed)
SHAPES = [
    (1, 1, 3, 4, 1, 7),
    (2, 2, 5, 3, 2, 11),
    (3, 5, 6, 8, 2, 13),
    (2, 3, 4, 6, 3, 17),
    (4, 2, 94, 24, 2, 19),  # tiny-scale predictor shape
]

TOLERANCES = {"float64": dict(rtol=1e-9, atol=1e-9), "float32": dict(rtol=1e-3, atol=1e-4)}


def _run_backend(lstm, x_np, backend, state=None):
    """One forward/backward pass; returns outputs and every gradient."""
    lstm.zero_grad()
    x = Tensor(x_np, requires_grad=True)
    out = lstm.forward(x, state=state, backend=backend)
    # A non-uniform scalar loss so every output position gets a distinct
    # gradient signal.
    weights = np.linspace(-1.0, 1.0, out.size).reshape(out.shape)
    (out * Tensor(weights)).sum().backward()
    param_grads = {name: p.grad.copy() for name, p in lstm.named_parameters()}
    return out.numpy().copy(), x.grad.copy(), param_grads


def _make_states(num_layers, batch, hidden, seed, requires_grad=True):
    rs = np.random.default_rng(seed)
    return [
        (
            Tensor(rs.normal(size=(batch, hidden)), requires_grad=requires_grad),
            Tensor(rs.normal(size=(batch, hidden)), requires_grad=requires_grad),
        )
        for _ in range(num_layers)
    ]


@pytest.mark.parametrize("dtype", ["float64", "float32"])
@pytest.mark.parametrize("shape", SHAPES)
class TestFusedReferenceParity:
    def test_forward_and_gradients_match(self, shape, dtype):
        batch, seq, inp, hidden, layers, seed = shape
        tol = TOLERANCES[dtype]
        with dtype_policy(dtype):
            rng = np.random.default_rng(seed)
            lstm = LSTM(inp, hidden, layers, rng, dropout=0.0)
            x_np = np.random.default_rng(seed + 1).normal(size=(batch, seq, inp))
            out_f, xg_f, pg_f = _run_backend(lstm, x_np, "fused")
            out_r, xg_r, pg_r = _run_backend(lstm, x_np, "reference")
        np.testing.assert_allclose(out_f, out_r, **tol)
        np.testing.assert_allclose(xg_f, xg_r, **tol)
        assert pg_f.keys() == pg_r.keys()
        for name in pg_f:
            np.testing.assert_allclose(pg_f[name], pg_r[name], err_msg=name, **tol)

    def test_initial_state_gradients_match(self, shape, dtype):
        batch, seq, inp, hidden, layers, seed = shape
        tol = TOLERANCES[dtype]
        with dtype_policy(dtype):
            rng = np.random.default_rng(seed)
            lstm = LSTM(inp, hidden, layers, rng, dropout=0.0)
            x_np = np.random.default_rng(seed + 2).normal(size=(batch, seq, inp))
            results = {}
            for backend in ("fused", "reference"):
                states = _make_states(layers, batch, hidden, seed + 3)
                out, _, _ = _run_backend(lstm, x_np, backend, state=states)
                results[backend] = (
                    out,
                    [(h.grad.copy(), c.grad.copy()) for h, c in states],
                )
        np.testing.assert_allclose(results["fused"][0], results["reference"][0], **tol)
        for (hf, cf), (hr, cr) in zip(results["fused"][1], results["reference"][1]):
            np.testing.assert_allclose(hf, hr, **tol)
            np.testing.assert_allclose(cf, cr, **tol)


class TestFusedFloat64Tolerance:
    def test_acceptance_shape_within_1e6(self):
        """Parity at the acceptance microbenchmark shape, 1e-6 in float64."""
        rng = np.random.default_rng(0)
        lstm = LSTM(64, 128, 2, rng, dropout=0.0)
        x_np = np.random.default_rng(1).normal(size=(32, 2, 64))
        out_f, xg_f, pg_f = _run_backend(lstm, x_np, "fused")
        out_r, xg_r, pg_r = _run_backend(lstm, x_np, "reference")
        assert np.abs(out_f - out_r).max() < 1e-6
        assert np.abs(xg_f - xg_r).max() < 1e-6
        for name in pg_f:
            assert np.abs(pg_f[name] - pg_r[name]).max() < 1e-6, name


class TestDropoutParity:
    def test_same_rng_stream_same_outputs(self):
        """Inter-layer dropout draws masks in the same generator order on
        both backends, so seeded training runs agree across backends."""
        x_np = np.random.default_rng(3).normal(size=(4, 3, 5))
        outs = {}
        for backend in ("fused", "reference"):
            lstm = LSTM(5, 6, 2, np.random.default_rng(42), dropout=0.5, backend=backend)
            lstm.train()
            outs[backend] = lstm(Tensor(x_np)).numpy()
        np.testing.assert_allclose(outs["fused"], outs["reference"], rtol=1e-12, atol=1e-12)


class TestMacAccounting:
    """The §V-C2 overhead experiment counts MACs; the fused kernels must
    report the same totals as the reference graph for the same work."""

    def _workload(self, backend, count_forward_only=False):
        rng = np.random.default_rng(5)
        lstm = LSTM(6, 8, 2, rng, dropout=0.0)
        x_np = np.random.default_rng(6).normal(size=(3, 4, 6))
        # Nothing skippable: input, weights, and initial states all
        # require gradients, so both backends execute identical GEMMs.
        states = _make_states(2, 3, 8, 9)
        lstm.zero_grad()
        x = Tensor(x_np, requires_grad=True)
        with flop_counter() as counter:
            if count_forward_only:
                with no_grad():
                    lstm.forward(x, state=states, backend=backend)
            else:
                out = lstm.forward(x, state=states, backend=backend)
                out.sum().backward()
        return counter.macs

    def test_train_step_macs_identical(self):
        assert self._workload("fused") == self._workload("reference")

    def test_forward_macs_identical(self):
        fused = self._workload("fused", count_forward_only=True)
        ref = self._workload("reference", count_forward_only=True)
        assert fused == ref

    def test_zero_state_skip_reports_fewer_macs(self):
        """With the implicit zero initial state the fused kernel skips the
        zero-contribution t=0 recurrent GEMMs — and honestly reports the
        smaller count it actually executed."""
        rng = np.random.default_rng(5)
        lstm = LSTM(6, 8, 2, rng, dropout=0.0)
        x_np = np.random.default_rng(6).normal(size=(3, 4, 6))

        def forward_macs(backend):
            with flop_counter() as counter:
                with no_grad():
                    lstm.forward(Tensor(x_np), backend=backend)
            return counter.macs

        assert forward_macs("fused") < forward_macs("reference")


class TestBackendSelection:
    def test_fused_is_default(self, rng):
        assert LSTM(4, 4, 1, rng).backend == "fused"

    def test_rejects_unknown_backend(self, rng):
        with pytest.raises(ValueError, match="backend"):
            LSTM(4, 4, 1, rng, backend="jit")
        lstm = LSTM(4, 4, 1, rng)
        with pytest.raises(ValueError, match="backend"):
            lstm.forward(Tensor(np.ones((1, 1, 4))), backend="jit")

    def test_forward_np_matches_eval_forward(self, rng):
        lstm = LSTM(5, 7, 2, rng, dropout=0.3)
        lstm.eval()
        x_np = np.random.default_rng(8).normal(size=(3, 2, 5))
        graph = lstm(Tensor(x_np)).numpy()
        np.testing.assert_allclose(lstm.forward_np(x_np), graph, rtol=1e-12, atol=1e-12)

    def test_no_grad_forward_builds_no_node(self, rng):
        """Under no_grad the fused path skips backward caches and graph
        bookkeeping entirely but returns the same values."""
        lstm = LSTM(5, 7, 2, rng, dropout=0.0)
        x_np = np.random.default_rng(9).normal(size=(3, 2, 5))
        with no_grad():
            out = lstm(Tensor(x_np))
        assert out._backward is None and not out.requires_grad
        np.testing.assert_allclose(out.numpy(), lstm.eval().forward_np(x_np), rtol=1e-12)
