"""Unit tests for the autograd engine."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, concat, no_grad, ones, stack, zeros
from repro.nn.tensor import _unbroadcast, is_grad_enabled


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x)
    for idx in np.ndindex(*x.shape):
        xp, xm = x.copy(), x.copy()
        xp[idx] += eps
        xm[idx] -= eps
        grad[idx] = (fn(xp) - fn(xm)) / (2 * eps)
    return grad


class TestBasicOps:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_sub_and_neg(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([1.0], requires_grad=True)
        (a - b).backward()
        np.testing.assert_allclose(a.grad, [1.0])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a / b).backward()
        np.testing.assert_allclose(a.grad, [1.0 / 3.0])
        np.testing.assert_allclose(b.grad, [-6.0 / 9.0])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a**2).backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_scalar_right_ops(self):
        a = Tensor([2.0], requires_grad=True)
        (5.0 - a).backward()
        np.testing.assert_allclose(a.grad, [-1.0])
        a.zero_grad()
        (10.0 / a).backward()
        np.testing.assert_allclose(a.grad, [-10.0 / 4.0])

    def test_reuse_accumulates_gradient(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a).backward()  # d(a^2)/da = 2a
        np.testing.assert_allclose(a.grad, [4.0])

    def test_matmul_matrix_matrix(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(3, 4))
        B = rng.normal(size=(4, 2))
        a = Tensor(A, requires_grad=True)
        b = Tensor(B, requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 2)) @ B.T)
        np.testing.assert_allclose(b.grad, A.T @ np.ones((3, 2)))

    def test_matmul_vector_cases(self):
        v = Tensor([1.0, 2.0], requires_grad=True)
        m = Tensor([[1.0, 0.0], [0.0, 1.0]], requires_grad=True)
        (v @ m).sum().backward()
        np.testing.assert_allclose(v.grad, [1.0, 1.0])
        v2 = Tensor([3.0, 4.0], requires_grad=True)
        w2 = Tensor([5.0, 6.0], requires_grad=True)
        (v2 @ w2).backward()
        np.testing.assert_allclose(v2.grad, [5.0, 6.0])
        np.testing.assert_allclose(w2.grad, [3.0, 4.0])


class TestBroadcasting:
    def test_unbroadcast_prepended_axes(self):
        grad = np.ones((4, 3))
        np.testing.assert_allclose(_unbroadcast(grad, (3,)), [4.0, 4.0, 4.0])

    def test_unbroadcast_stretched_axes(self):
        grad = np.ones((4, 3))
        np.testing.assert_allclose(_unbroadcast(grad, (4, 1)), np.full((4, 1), 3.0))

    def test_broadcast_add_backward(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_broadcast_mul_backward(self):
        a = Tensor(np.full((2, 3), 2.0), requires_grad=True)
        b = Tensor(np.full((1, 3), 3.0), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 3.0))
        np.testing.assert_allclose(b.grad, np.full((1, 3), 4.0))


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["tanh", "sigmoid", "relu", "exp"])
    def test_elementwise_gradients_match_numerical(self, op):
        rng = np.random.default_rng(1)
        x0 = rng.normal(size=(3, 2))
        x = Tensor(x0, requires_grad=True)
        getattr(x, op)().sum().backward()
        numeric = numerical_grad(lambda arr: getattr(Tensor(arr), op)().sum().item(), x0)
        np.testing.assert_allclose(x.grad, numeric, atol=1e-6)

    def test_log_gradient(self):
        x0 = np.array([0.5, 2.0, 5.0])
        x = Tensor(x0, requires_grad=True)
        x.log().sum().backward()
        np.testing.assert_allclose(x.grad, 1.0 / x0)

    def test_clip_gradient_masked(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.sum(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_mean_gradient(self):
        x = Tensor(np.ones((4,)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full(4, 0.25))

    def test_max_gradient_ties_split(self):
        x = Tensor([1.0, 3.0, 3.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.5, 0.5])

    def test_reshape_roundtrip(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(6))

    def test_transpose_gradient(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        y = x.T
        assert y.shape == (3, 2)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_getitem_gradient_scatter(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[1:3].sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0, 0.0, 0.0])

    def test_getitem_fancy_indexing(self):
        x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        x[np.arange(3), np.array([0, 1, 0])].sum().backward()
        expected = np.zeros((3, 4))
        expected[0, 0] = expected[1, 1] = expected[2, 0] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_concat_gradient_splits(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        concat([a, b], axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        np.testing.assert_allclose(b.grad, np.ones((2, 3)))

    def test_stack_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        stack([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))


class TestGraphSemantics:
    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 3).detach()
        assert not y.requires_grad
        (y * 2).sum()
        assert x.grad is None

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            (x * 2).backward()

    def test_backward_explicit_grad_shape_check(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError, match="shape"):
            (x * 2).backward(np.ones(4))

    def test_diamond_graph_accumulates_once(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 2
        z = y + y  # diamond: y feeds z twice
        z.backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_item_on_non_scalar_raises(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_factories(self):
        assert zeros(2, 3).shape == (2, 3)
        assert ones(4).data.sum() == 4.0
        assert as_tensor(Tensor([1.0])) is not None
