"""Unit tests for SGD, Adam, weight decay, freezing, gradient clipping."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Tensor, clip_grad_norm
from repro.nn.module import Parameter


def quadratic_step(optimizer, param):
    """One step of minimizing ||param||^2."""
    optimizer.zero_grad()
    loss = (param * param).sum()
    loss.backward()
    optimizer.step()
    return loss.item()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = SGD([p], lr=0.1)
        losses = [quadratic_step(opt, p) for _ in range(50)]
        assert losses[-1] < 1e-3 * losses[0]

    def test_momentum_accelerates(self):
        p1 = Parameter(np.array([5.0]))
        p2 = Parameter(np.array([5.0]))
        plain = SGD([p1], lr=0.01)
        momentum = SGD([p2], lr=0.01, momentum=0.9)
        for _ in range(20):
            quadratic_step(plain, p1)
            quadratic_step(momentum, p2)
        assert abs(p2.data[0]) < abs(p1.data[0])

    def test_weight_decay_shrinks_params_without_gradient_signal(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 1.0

    def test_invalid_hyperparameters(self):
        p = Parameter(np.ones(1))
        with pytest.raises(ValueError):
            SGD([p], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, weight_decay=-0.1)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0, 2.0]))
        opt = Adam([p], lr=0.2)
        losses = [quadratic_step(opt, p) for _ in range(100)]
        assert losses[-1] < 1e-4 * losses[0]

    def test_bias_correction_first_step_magnitude(self):
        """First Adam step should be ~lr regardless of gradient scale."""
        for scale in (0.01, 100.0):
            p = Parameter(np.array([scale]))
            opt = Adam([p], lr=0.1)
            opt.zero_grad()
            p.grad = np.array([scale])
            opt.step()
            np.testing.assert_allclose(scale - p.data[0], 0.1, rtol=1e-4)

    def test_invalid_betas(self):
        p = Parameter(np.ones(1))
        with pytest.raises(ValueError):
            Adam([p], betas=(1.0, 0.999))


class TestFreezing:
    def test_frozen_parameters_not_updated(self):
        frozen = Parameter(np.array([1.0]), requires_grad=False)
        live = Parameter(np.array([1.0]))
        opt = SGD([frozen, live], lr=0.5)
        frozen.grad = np.array([1.0])
        live.grad = np.array([1.0])
        opt.step()
        assert frozen.data[0] == 1.0
        assert live.data[0] == 0.5

    def test_missing_gradient_skipped(self):
        p = Parameter(np.array([2.0]))
        opt = SGD([p], lr=0.5)
        opt.step()  # no grad accumulated: no-op
        assert p.data[0] == 2.0


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        p = Parameter(np.array([1.0, 1.0]))
        p.grad = np.array([3.0, 4.0])  # norm 5
        norm = clip_grad_norm([p], max_norm=1.0)
        assert abs(norm - 5.0) < 1e-12
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0)

    def test_leaves_small_gradients(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.5])
