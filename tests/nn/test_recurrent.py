"""Unit tests (incl. gradchecks) for RNN and GRU cells."""

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, GRUCell, Linear, RNNCell, RecurrentStack, Tensor


class TestRNNCell:
    def test_step_shapes(self, rng):
        cell = RNNCell(4, 6, rng)
        h, state = cell(Tensor(np.ones((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)
        assert state.shape == (3, 6)

    def test_output_bounded_by_tanh(self, rng):
        cell = RNNCell(4, 6, rng)
        h, _ = cell(Tensor(np.full((2, 4), 100.0)), cell.initial_state(2))
        assert np.all(np.abs(h.numpy()) <= 1.0)


class TestGRUCell:
    def test_step_shapes(self, rng):
        cell = GRUCell(4, 6, rng)
        h, state = cell(Tensor(np.ones((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)

    def test_zero_update_gate_keeps_candidate(self, rng):
        """With the update gate forced to 0 the state becomes the candidate."""
        cell = GRUCell(2, 2, rng)
        H = 2
        # Force update gate pre-activation very negative -> update ~ 0.
        cell.weight_ih.data[:, H : 2 * H] = 0.0
        cell.weight_hh.data[:, H : 2 * H] = 0.0
        cell.bias.data[H : 2 * H] = -100.0
        x = Tensor(np.ones((1, 2)))
        state = Tensor(np.full((1, 2), 0.5))
        h, _ = cell(x, state)
        # update ~= 0 -> h = candidate (tanh of something), not the old state
        assert not np.allclose(h.numpy(), 0.5)

    @pytest.mark.parametrize("cell_cls", [RNNCell, GRUCell])
    def test_gradcheck_through_two_steps(self, cell_cls, rng):
        cell = cell_cls(3, 4, rng)
        head = Linear(4, 2, rng)
        loss_fn = CrossEntropyLoss()
        x0 = rng.normal(size=(2, 2, 3))
        targets = np.array([0, 1])

        def run(arr):
            state = cell.initial_state(2)
            xs = Tensor(arr)
            for t in range(2):
                h, state = cell(xs[:, t, :], state)
            return loss_fn(head(h), targets)

        x = Tensor(x0, requires_grad=True)
        state = cell.initial_state(2)
        for t in range(2):
            h, state = cell(x[:, t, :], state)
        loss = loss_fn(head(h), targets)
        loss.backward()

        eps = 1e-6
        for idx in [(0, 0, 0), (1, 1, 2)]:
            xp, xm = x0.copy(), x0.copy()
            xp[idx] += eps
            xm[idx] -= eps
            numeric = (run(xp).item() - run(xm).item()) / (2 * eps)
            assert abs(x.grad[idx] - numeric) < 1e-7


class TestRecurrentStack:
    @pytest.mark.parametrize("cell_cls", [RNNCell, GRUCell])
    def test_output_shape(self, cell_cls, rng):
        stack = RecurrentStack(5, 7, 2, rng, cell_type=cell_cls)
        out = stack(Tensor(np.ones((3, 4, 5))))
        assert out.shape == (3, 4, 7)

    def test_rejects_wrong_rank(self, rng):
        stack = RecurrentStack(5, 7, 1, rng)
        with pytest.raises(ValueError):
            stack(Tensor(np.ones((3, 5))))

    def test_rejects_zero_layers(self, rng):
        with pytest.raises(ValueError):
            RecurrentStack(5, 7, 0, rng)

    def test_trains_on_simple_task(self, rng):
        from repro.nn import Module, fit, evaluate_accuracy

        class Net(Module):
            def __init__(self):
                super().__init__()
                self.rnn = RecurrentStack(3, 8, 1, rng, cell_type=GRUCell)
                self.head = Linear(8, 2, rng)

            def forward(self, x):
                h = self.rnn(x)
                return self.head(h[:, h.shape[1] - 1, :])

        X = rng.normal(size=(150, 2, 3))
        y = (X[:, -1, 0] > 0).astype(np.int64)
        net = Net()
        fit(net, X, y, epochs=25, batch_size=16, lr=1e-2, rng=rng)
        assert evaluate_accuracy(net, X, y) > 0.85

    def test_parameters_discovered(self, rng):
        stack = RecurrentStack(3, 4, 2, rng, cell_type=RNNCell)
        names = {name for name, _ in stack.named_parameters()}
        assert "cells.0.weight_ih" in names
        assert "cells.1.weight_hh" in names
